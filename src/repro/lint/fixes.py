"""Auto-fixes for a safe subset of lint findings (``--fix``).

Three mechanical rewrites whose correctness does not depend on intent:

- **FAIR303** — ``except:`` → ``except Exception:`` (same set of
  exceptions user code can actually mean, minus the interpreter-control
  ones a bare except wrongly swallows).
- **FAIR502** — insert a seeding preamble at the top of a function that
  draws ambient randomness: a crc32 of the function's first parameter
  (the run's parameter dict) seeds ``random`` and, if drawn from,
  ``numpy.random`` — the same derivation
  :func:`repro.savanna.realexec.seed_for_run` uses for run ids.
- **FAIR504** — qualify a run-invariant path in an ``open(path, "w")``
  or ``numpy.save``-family call with the run's directory:
  ``os.path.join(str(params.get("run_dir", ".")), <path>)``.  Only the
  call-argument form is rewritten; ``Path(...).write_text`` receivers
  are left alone because the rewrite would change the receiver's type.

The default is a **dry run**: callers get the fixed text and a unified
diff, nothing touches disk unless ``write=True``.  Fixed output re-lints
clean for the rewritten findings — the seeding preamble is exactly the
evidence FAIR502 looks for, and a joined path mentions the parameter so
it is no longer run-invariant.
"""

from __future__ import annotations

import ast
import difflib
import re
from dataclasses import dataclass
from pathlib import Path

from repro.lint import concurrency
from repro.lint import flow as _flow

_BARE_EXCEPT = re.compile(r"\bexcept(\s*):")


@dataclass(frozen=True)
class AppliedFix:
    """One rewrite the fixer performed (or would, in a dry run)."""

    rule_id: str
    line: int
    description: str


@dataclass(frozen=True)
class FileFixes:
    """The fix outcome for one file."""

    path: str
    original: str
    fixed: str
    applied: tuple

    @property
    def changed(self) -> bool:
        return bool(self.applied)

    def diff(self) -> str:
        """Unified diff of the rewrite (empty when nothing changed)."""
        if not self.changed:
            return ""
        return "".join(
            difflib.unified_diff(
                self.original.splitlines(keepends=True),
                self.fixed.splitlines(keepends=True),
                fromfile=self.path,
                tofile=f"{self.path} (fixed)",
            )
        )


def _import_insertion_line(tree: ast.Module) -> int:
    """0-based line to insert a new top-level import at."""
    line = 0
    body = tree.body
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        line = body[0].end_lineno or body[0].lineno
    for node in body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            line = node.end_lineno or node.lineno
    return line


def _module_alias(index: _flow.ModuleIndex, module: str) -> str | None:
    for alias, origin in index.imports.items():
        if origin == module:
            return alias
    return None


def _usable_alias(index: _flow.ModuleIndex, module: str, imports_to_add: set) -> str | None:
    """A name the fixed code can call ``module`` through, or ``None``.

    Prefers an existing import alias; otherwise plans a new top-level
    ``import module`` — unless the bare name is already bound to
    something else at module level (e.g. ``from random import random``),
    where a textual rewrite would silently change meaning.
    """
    alias = _module_alias(index, module)
    if alias is not None:
        return alias
    if module in index.module_names:
        return None
    imports_to_add.add(module)
    return module


def _preamble_anchor(node) -> ast.stmt:
    """First real statement of a function (docstring skipped)."""
    body = node.body
    if (
        len(body) > 1
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        return body[1]
    return body[0]


def fix_source(text: str, path: str = "<source>") -> FileFixes:
    """Compute the auto-fixed form of one Python source file."""
    try:
        tree = ast.parse(text)
    except SyntaxError:
        return FileFixes(path=path, original=text, fixed=text, applied=())

    lines = text.splitlines(keepends=True)
    applied: list[AppliedFix] = []
    # (0-based line, 0-based col or None, rewrite) — applied bottom-up so
    # earlier edits never shift later offsets.
    span_edits: list[tuple[int, int, int, str]] = []
    line_subs: list[int] = []
    inserts: list[tuple[int, list[str]]] = []
    needed_imports: set[str] = set()

    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            line_subs.append(node.lineno - 1)
            applied.append(
                AppliedFix("FAIR303", node.lineno, "bare `except:` → `except Exception:`")
            )

    index = _flow.ModuleIndex(tree, path)
    for name, fn_node in index.functions.items():
        args = fn_node.args
        positional = args.posonlyargs + args.args
        param = positional[0].arg if positional else None
        analysis = _flow.analyze_function(index, fn_node)
        entry_only = [analysis.entry]

        draws = list(concurrency.unseeded_draw_sites(analysis, entry_only))
        if draws and param is not None:
            seed_calls, imports_to_add = [], set()
            if any(r.dotted.startswith("random.") for _, _, r in draws):
                alias = _usable_alias(index, "random", imports_to_add)
                if alias:
                    seed_calls.append(f"{alias}.seed(_run_seed)\n")
            if any(r.dotted.startswith("numpy.random.") for _, _, r in draws):
                alias = _usable_alias(index, "numpy", imports_to_add)
                if alias:
                    seed_calls.append(f"{alias}.random.seed(_run_seed % (2 ** 32))\n")
            zlib_alias = _usable_alias(index, "zlib", imports_to_add)
            if seed_calls and zlib_alias is not None:
                anchor = _preamble_anchor(fn_node)
                indent = " " * anchor.col_offset
                preamble = [
                    f"{indent}_run_seed = {zlib_alias}.crc32("
                    f"repr(sorted({param}.items())).encode('utf-8')) & 0x7FFFFFFF\n"
                ] + [indent + call for call in seed_calls]
                needed_imports.update(imports_to_add)
                inserts.append((anchor.lineno - 1, preamble))
                applied.append(
                    AppliedFix(
                        "FAIR502",
                        anchor.lineno,
                        f"seed ambient RNG from {param!r} at the top of {name}()",
                    )
                )

        if param is None:
            continue
        for scope, call, target in concurrency.constant_write_sites(analysis, entry_only):
            # Only the call-argument form: rewriting a .write_text
            # receiver would hand a str where a Path is expected.
            if target not in call.args:
                continue
            if target.lineno != target.end_lineno:
                continue
            replacement = (
                f'os.path.join(str({param}.get("run_dir", ".")), '
                f"{ast.unparse(target)})"
            )
            span_edits.append(
                (target.lineno - 1, target.col_offset, target.end_col_offset, replacement)
            )
            if _module_alias(index, "os") is None:
                needed_imports.add("os")
            applied.append(
                AppliedFix(
                    "FAIR504",
                    target.lineno,
                    f"qualify run-invariant path {ast.unparse(target)} "
                    "with the per-run directory",
                )
            )

    if not applied:
        return FileFixes(path=path, original=text, fixed=text, applied=())

    for line_index, col_start, col_end, replacement in sorted(
        span_edits, key=lambda e: (e[0], e[1]), reverse=True
    ):
        line = lines[line_index]
        lines[line_index] = line[:col_start] + replacement + line[col_end:]
    for line_index in sorted(set(line_subs), reverse=True):
        lines[line_index] = _BARE_EXCEPT.sub("except Exception:", lines[line_index], count=1)
    if needed_imports:
        inserts.append(
            (
                _import_insertion_line(tree),
                [f"import {module}\n" for module in sorted(needed_imports)],
            )
        )
    for line_index, new_lines in sorted(inserts, key=lambda e: e[0], reverse=True):
        lines[line_index:line_index] = new_lines

    return FileFixes(
        path=path,
        original=text,
        fixed="".join(lines),
        applied=tuple(sorted(applied, key=lambda f: (f.line, f.rule_id))),
    )


def fix_paths(paths, write: bool = False) -> list[FileFixes]:
    """Fix every Python file under ``paths``; dry run unless ``write``."""
    files: list[Path] = []
    for path in paths:
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no such path: {path}")
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    results = []
    for file in files:
        outcome = fix_source(file.read_text(), str(file))
        if outcome.changed and write:
            file.write_text(outcome.fixed)
        results.append(outcome)
    return results


__all__ = ["AppliedFix", "FileFixes", "fix_source", "fix_paths"]
