"""``repro.lint`` — static FAIR-debt analysis (nothing is executed).

The paper's central claim is that gauge metadata is *machine-actionable*:
every manual step a workflow still needs is serviced technical debt, and
debt should surface **before** an allocation is burned.  This package is
that claim as a tool: a rule-based static analyzer over

- campaign structure (:class:`~repro.cheetah.campaign.Campaign` /
  :class:`~repro.cheetah.manifest.CampaignManifest`) — empty or duplicate
  sweep points, node oversubscription, undefined template parameters,
  retry-budget contradictions;
- dataflow graphs — cycles, unbound ports, disconnected components;
- gauge debt — declared tiers contradicted by attached metadata,
  residual manual minutes under reuse scenarios;
- Skel models and generated code (via :mod:`ast`) — unbound template
  variables, unrendered placeholders, shadowed parameters, bare except.

Findings carry stable rule ids (``FAIR001``…) and severity tiers
(ERROR/WARN/INFO); ``python -m repro.lint`` reports them as text or
SARIF-lite JSON, and :func:`~repro.savanna.drive.execute_manifest` runs
the manifest rules before execution (opt out with ``lint=False``).
Campaigns suppress individual rules via
``metadata={"lint": {"suppress": ["FAIR005"]}}``.

See ``docs/lint.md`` for the full rule catalog.
"""

from repro.lint.findings import Finding, LintReport, Severity
from repro.lint.rules import REGISTRY, FunctionRule, Rule, RuleRegistry, rule
from repro.lint.context import FunctionArtifact, LintContext, ModelArtifact, SourceArtifact
from repro.lint.engine import (
    CampaignLintError,
    lint,
    lint_app_fn,
    lint_campaign,
    lint_component,
    lint_generated,
    lint_graph,
    lint_manifest,
    lint_model,
    lint_path,
    lint_paths,
    lint_source,
    suppressions_of,
)
from repro.lint.fixes import AppliedFix, FileFixes, fix_paths, fix_source
from repro.lint.flow import FlowAnalysis, FunctionScope, ModuleIndex, analyze_callable
from repro.lint.reporters import render, render_json, render_text

__all__ = [
    "Finding",
    "LintReport",
    "Severity",
    "Rule",
    "FunctionRule",
    "RuleRegistry",
    "REGISTRY",
    "rule",
    "LintContext",
    "SourceArtifact",
    "ModelArtifact",
    "FunctionArtifact",
    "CampaignLintError",
    "lint",
    "lint_app_fn",
    "lint_campaign",
    "lint_component",
    "lint_generated",
    "lint_graph",
    "lint_manifest",
    "lint_model",
    "lint_path",
    "lint_paths",
    "lint_source",
    "suppressions_of",
    "AppliedFix",
    "FileFixes",
    "fix_paths",
    "fix_source",
    "FlowAnalysis",
    "FunctionScope",
    "ModuleIndex",
    "analyze_callable",
    "render",
    "render_json",
    "render_text",
]
