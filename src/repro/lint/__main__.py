"""Command-line entry point: ``python -m repro.lint``.

Usage::

    python -m repro.lint CAMPAIGN_DIR            # a campaign end point
    python -m repro.lint examples/               # a tree of files
    python -m repro.lint manifest.json --format json
    python -m repro.lint runs/ --fail-on warn    # stricter CI gate
    python -m repro.lint runs/ --no-cache        # bypass .cheetah/lintcache.json
    python -m repro.lint app.py --fix            # dry-run auto-fix (unified diffs)
    python -m repro.lint app.py --fix --write    # apply the fixes in place
    python -m repro.lint --list-rules            # the rule catalog

Exit status: 0 when no finding reaches the ``--fail-on`` threshold,
1 when at least one does, 2 on usage errors.  Nothing is executed or
imported from the analyzed paths — pure static analysis.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.engine import lint_paths
from repro.lint.findings import Severity
from repro.lint.fixes import fix_paths
from repro.lint.reporters import render
from repro.lint.rules import REGISTRY


def _rule_catalog_text() -> str:
    rows = REGISTRY.catalog()
    header = f"{'ID':<9}{'SEVERITY':<9}{'TARGET':<11}TITLE"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['id']:<9}{row['severity']:<9}{row['target']:<11}{row['title']}"
        )
    return "\n".join(lines)


def _parse_suppressions(parser: argparse.ArgumentParser, values) -> frozenset:
    """Comma-separated rule ids, validated against the registry.

    A typo in a suppression used to be silently ignored — the most
    dangerous possible failure mode for an opt-out flag.  Unknown ids
    are now a usage error naming the known catalog.
    """
    requested = set()
    for chunk in values:
        requested.update(s.strip() for s in chunk.split(",") if s.strip())
    unknown = sorted(rule_id for rule_id in requested if rule_id not in REGISTRY)
    if unknown:
        parser.error(
            f"unknown rule id(s) in --suppress: {', '.join(unknown)} "
            f"(known: {', '.join(REGISTRY.ids())})"
        )
    return frozenset(requested)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static FAIR-debt analyzer for campaigns, Skel models, "
        "and generated code (nothing is executed).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="campaign directories, manifest JSON files, source files, or "
        "directory trees to scan",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warn"),
        default="error",
        help="lowest severity that causes a non-zero exit (default: error)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format: human text or SARIF-lite JSON (default: text)",
    )
    parser.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="ID,ID",
        help="comma-separated rule ids to suppress (repeatable; additive "
        "with each campaign's own metadata suppressions); unknown ids "
        "are a usage error",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update per-campaign lint caches "
        "(.cheetah/lintcache.json)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the rendered report to FILE (e.g. a SARIF "
        "artifact for CI upload)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="auto-fix the safe subset (seeding preamble, bare except, "
        "run-relative paths) and print unified diffs; dry run unless "
        "--write is given",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="with --fix: apply the fixes to the files in place",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_rule_catalog_text())
        return 0
    if not args.paths:
        parser.error("no paths given (or use --list-rules)")
    if args.write and not args.fix:
        parser.error("--write only makes sense with --fix")

    suppress = _parse_suppressions(parser, args.suppress)

    if args.fix:
        try:
            outcomes = fix_paths(args.paths, write=args.write)
        except FileNotFoundError as exc:
            parser.error(str(exc))
        changed = [o for o in outcomes if o.changed]
        for outcome in changed:
            print(outcome.diff(), end="")
        verb = "fixed" if args.write else "fixable (dry run; re-run with --write)"
        print(f"{len(changed)} file(s) {verb}, {len(outcomes)} scanned")
        return 0

    try:
        report = lint_paths(args.paths, suppress=suppress, cache=not args.no_cache)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    rendered = render(report, args.format)
    print(rendered)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
    threshold = Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    return 1 if report.exceeds(threshold) else 0


if __name__ == "__main__":
    sys.exit(main())
