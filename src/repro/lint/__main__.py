"""Command-line entry point: ``python -m repro.lint``.

Usage::

    python -m repro.lint CAMPAIGN_DIR            # a campaign end point
    python -m repro.lint examples/               # a tree of files
    python -m repro.lint manifest.json --format json
    python -m repro.lint runs/ --fail-on warn    # stricter CI gate
    python -m repro.lint --list-rules            # the rule catalog

Exit status: 0 when no finding reaches the ``--fail-on`` threshold,
1 when at least one does, 2 on usage errors.  Nothing is executed or
imported from the analyzed paths — pure static analysis.
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.engine import lint_paths
from repro.lint.findings import Severity
from repro.lint.reporters import render
from repro.lint.rules import REGISTRY


def _rule_catalog_text() -> str:
    rows = REGISTRY.catalog()
    header = f"{'ID':<9}{'SEVERITY':<9}{'TARGET':<11}TITLE"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['id']:<9}{row['severity']:<9}{row['target']:<11}{row['title']}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static FAIR-debt analyzer for campaigns, Skel models, "
        "and generated code (nothing is executed).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="campaign directories, manifest JSON files, source files, or "
        "directory trees to scan",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warn"),
        default="error",
        help="lowest severity that causes a non-zero exit (default: error)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format: human text or SARIF-lite JSON (default: text)",
    )
    parser.add_argument(
        "--suppress",
        default="",
        metavar="ID,ID",
        help="comma-separated rule ids to suppress (additive with each "
        "campaign's own metadata suppressions)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_rule_catalog_text())
        return 0
    if not args.paths:
        parser.error("no paths given (or use --list-rules)")

    suppress = frozenset(s.strip() for s in args.suppress.split(",") if s.strip())
    try:
        report = lint_paths(args.paths, suppress=suppress)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    print(render(report, args.format))
    threshold = Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    return 1 if report.exceeds(threshold) else 0


if __name__ == "__main__":
    sys.exit(main())
