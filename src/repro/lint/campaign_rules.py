"""FAIR0xx — campaign-structure rules.

These run over the :class:`~repro.cheetah.manifest.CampaignManifest`
(the executor-independent interop form, so the same checks serve the
CLI, the library API, and the ``savanna.drive`` pre-run hook) plus a few
Sweep-level rules that need the live :class:`~repro.cheetah.campaign.Campaign`
object.  Misconfigurations caught here fail at *submit* time instead of
mid-allocation — unserviced debt surfaced before the node-hours burn.
"""

from __future__ import annotations

from repro.lint.findings import Severity
from repro.lint.rules import REGISTRY, rule
from repro.skel.templates import Template, TemplateError


def _template_variables(text: str) -> set | None:
    """Top-level ``${...}`` variables of ``text``; ``None`` if unparseable."""
    if "${" not in text and "{%" not in text:
        return set()
    try:
        return Template(text).variables()
    except TemplateError:
        return None


@rule(
    "FAIR001",
    Severity.ERROR,
    target="manifest",
    title="empty sweep group",
    rationale="A group that expands to zero runs burns a batch allocation "
    "on nothing; an over-aggressive sweep filter is the usual cause.",
)
def empty_group(manifest, ctx):
    for group in manifest.groups:
        if not manifest.runs_in_group(group["name"]):
            yield (
                "expands to zero runs (all sweep points pruned or no sweeps added)",
                f"group {group['name']!r}",
            )


@rule(
    "FAIR002",
    Severity.ERROR,
    target="manifest",
    title="duplicate sweep point",
    rationale="Two runs with identical parameters re-measure the same "
    "configuration: node-hours spent without new information.  Usually "
    "two overlapping sweeps in one group.",
)
def duplicate_sweep_point(manifest, ctx):
    seen: dict[tuple, object] = {}
    for run in manifest.runs:
        key = (run.group, tuple(sorted((k, repr(v)) for k, v in run.parameters.items())))
        if key in seen:
            yield (
                f"parameters {run.parameters} duplicate run {seen[key].run_id!r}",
                f"group {run.group!r}: run {run.run_id!r}",
            )
        else:
            seen[key] = run


@rule(
    "FAIR003",
    Severity.ERROR,
    target="manifest",
    title="run oversubscribes its group envelope",
    rationale="A run needing more nodes than its SweepGroup's batch "
    "envelope can never be scheduled: the allocation is granted, the run "
    "starves, the walltime burns.",
)
def run_oversubscribes_group(manifest, ctx):
    envelopes = {g["name"]: g["nodes"] for g in manifest.groups}
    for run in manifest.runs:
        envelope = envelopes.get(run.group)
        if envelope is not None and run.nodes > envelope:
            yield (
                f"needs {run.nodes} nodes but group {run.group!r} requests "
                f"only {envelope}",
                f"run {run.run_id!r}",
            )


@rule(
    "FAIR004",
    Severity.ERROR,
    target="manifest",
    title="group exceeds the cluster",
    rationale="A SweepGroup requesting more nodes than the target machine "
    "has will sit in the queue forever; the scheduler cannot grant it.",
)
def group_exceeds_cluster(manifest, ctx):
    spec = ctx.cluster_spec
    if spec is None:
        return
    for group in manifest.groups:
        if group["nodes"] > spec.nodes:
            yield (
                f"requests {group['nodes']} nodes but the cluster has "
                f"only {spec.nodes}",
                f"group {group['name']!r}",
            )


@rule(
    "FAIR005",
    Severity.WARNING,
    target="manifest",
    title="inconsistent parameter sets within a group",
    rationale="Sweeps in one group yielding different parameter names "
    "produce runs a shared duration model / template / analysis cannot "
    "treat uniformly — the classic cross-sweep composition slip.",
)
def inconsistent_parameters(manifest, ctx):
    by_group: dict[str, dict[frozenset, str]] = {}
    for run in manifest.runs:
        shapes = by_group.setdefault(run.group, {})
        shape = frozenset(run.parameters)
        if shape not in shapes:
            shapes[shape] = run.run_id
    for group, shapes in sorted(by_group.items()):
        if len(shapes) > 1:
            listed = sorted(tuple(sorted(s)) for s in shapes)
            yield (
                f"runs carry {len(shapes)} different parameter-name sets: {listed}",
                f"group {group!r}",
            )


@rule(
    "FAIR006",
    Severity.ERROR,
    target="manifest",
    title="executable references undefined parameters",
    rationale="The executable template reads ${variables} no sweep "
    "defines; rendering the launch command would fail (or worse, leave "
    "holes) after the allocation is granted.",
)
def undefined_template_parameter(manifest, ctx):
    variables = _template_variables(manifest.executable)
    if variables is None:
        yield (
            f"executable template {manifest.executable!r} does not parse",
            "executable",
        )
        return
    if not variables:
        return
    by_group: dict[str, set] = {}
    for run in manifest.runs:
        by_group.setdefault(run.group, set()).update(run.parameters)
    for group in manifest.groups:
        known = by_group.get(group["name"], set()) | {"run_id", "group"}
        missing = sorted(variables - known)
        if missing:
            yield (
                f"executable reads undefined parameters {missing} "
                f"(swept: {sorted(by_group.get(group['name'], set()))})",
                f"group {group['name']!r}",
            )


@rule(
    "FAIR007",
    Severity.ERROR,
    target="manifest",
    title="retry budget contradiction",
    rationale="A retry policy granting per-task retries under a zero "
    "allocation budget never actually retries: the resilience layer is "
    "wired but inert, and failures stay terminal.",
)
def retry_budget_contradiction(manifest, ctx):
    policy = ctx.retry_policy
    if policy is None:
        return
    budget = getattr(policy, "allocation_budget", None)
    retries = getattr(policy, "max_retries", 0)
    if retries > 0 and budget == 0:
        yield (
            f"policy allows {retries} per-task retries but the allocation "
            "budget is 0 — no retry can ever be spent",
            "retry policy",
        )


@rule(
    "FAIR008",
    Severity.WARNING,
    target="manifest",
    title="task timeout at or beyond group walltime",
    rationale="A per-attempt timeout >= the group walltime can never "
    "fire: the batch allocation kills the attempt first, so the timeout "
    "(and the retry it should trigger) is dead configuration.",
)
def timeout_exceeds_walltime(manifest, ctx):
    policy = ctx.retry_policy
    timeout = getattr(policy, "task_timeout", None) if policy is not None else None
    if timeout is None:
        return
    for group in manifest.groups:
        if timeout >= group["walltime"]:
            yield (
                f"task timeout {timeout:g}s >= walltime {group['walltime']:g}s "
                "— the walltime guillotine always falls first",
                f"group {group['name']!r}",
            )


@rule(
    "FAIR009",
    Severity.INFO,
    target="campaign",
    title="constant sweep parameter",
    rationale="A single-value sweep parameter explores nothing; a "
    "DerivedParameter or the Skel model is the right home for constants.",
)
def constant_parameter(campaign, ctx):
    for group in campaign.groups:
        for sweep in group.sweeps:
            for parameter in sweep.parameters:
                if len(parameter.values) == 1:
                    yield (
                        f"parameter {parameter.name!r} has a single value "
                        f"({parameter.values[0]!r}); nothing is swept",
                        f"group {group.name!r}: sweep {sweep.name!r}",
                    )


@rule(
    "FAIR010",
    Severity.WARNING,
    target="campaign",
    title="sweep filter prunes most of the cartesian product",
    rationale="A filter rejecting the overwhelming majority of sweep "
    "points usually means the parameter ranges encode the wrong space; "
    "expressing the constraint in the ranges keeps the campaign legible.",
)
def filter_prunes_most(campaign, ctx):
    for group in campaign.groups:
        for sweep in group.sweeps:
            if sweep.filter is None:
                continue
            full = 1
            for parameter in sweep.parameters:
                full *= len(parameter.values)
            kept = len(sweep)
            if full >= 10 and kept > 0 and kept / full < 0.1:
                yield (
                    f"filter keeps {kept}/{full} points "
                    f"({kept / full:.1%}) of the cartesian product",
                    f"group {group.name!r}: sweep {sweep.name!r}",
                )


@rule(
    "FAIR900",
    Severity.WARNING,
    target="manifest",
    title="unknown suppressed rule id",
    rationale="Suppressing an id the registry does not know is inert "
    "configuration — usually a renamed rule whose opt-out no longer "
    "protects anything.",
)
def unknown_suppression(manifest, ctx):
    for rule_id in sorted(ctx.suppress):
        if rule_id != "FAIR900" and rule_id not in REGISTRY:
            yield (
                f"suppressed rule id {rule_id!r} is not a known rule",
                "metadata lint.suppress",
            )
