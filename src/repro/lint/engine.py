"""The lint engine: subjects in, :class:`LintReport` out.

Entry points mirror the layers the analyzer understands::

    lint_campaign(campaign)       # Campaign object (structure + sweeps)
    lint_manifest(manifest)       # the Cheetah<->Savanna interop form
    lint_graph(graph)             # a DataflowGraph
    lint_component(component)     # gauge debt vs. a declared profile
    lint_model(model, library)    # Skel model vs. its templates
    lint_generated(files)         # skel GeneratedFile output
    lint_source(text, path)       # one source artifact
    lint_app_fn(fn, pool=...)     # concurrency safety of a live app_fn
    lint_paths([...])             # CLI face: campaign dirs + files

plus :func:`lint`, which dispatches on the subject's type.  Nothing is
ever executed or imported from the analyzed artifacts; every check reads
metadata, specs, or source text only.

Suppression: a campaign opts out of specific rules via its metadata —
``Campaign(..., metadata={"lint": {"suppress": ["FAIR005"]}})`` — which
travels through the manifest JSON, so suppression decisions are
themselves provenance.  Suppressed findings are not discarded: they move
to ``report.suppressed`` and stay visible to reporters.
"""

from __future__ import annotations

from pathlib import Path

from repro.cheetah.campaign import Campaign
from repro.cheetah.directory import resolve_campaign_dir
from repro.cheetah.manifest import CampaignManifest, manifest_from_json
from repro.lint import (  # noqa: F401  (rule registration)
    campaign_rules,
    code_rules,
    concurrency,
    gauge_rules,
    graph_rules,
)
from repro.lint import cache as _cache
from repro.lint import flow as _flow
from repro.lint.context import FunctionArtifact, LintContext, ModelArtifact, SourceArtifact
from repro.lint.findings import Finding, LintReport
from repro.lint.rules import REGISTRY


class CampaignLintError(RuntimeError):
    """Raised by the ``savanna.drive`` pre-run hook on ERROR findings."""

    def __init__(self, report: LintReport, campaign: str = ""):
        self.report = report
        self.campaign = campaign
        listed = "\n".join(f"  {f.format()}" for f in report.errors)
        super().__init__(
            f"campaign {campaign!r} has {len(report.errors)} lint error(s); "
            f"refusing to execute (pass lint=False to override):\n{listed}"
        )


def suppressions_of(subject) -> frozenset:
    """Rule ids suppressed via campaign/manifest ``metadata``."""
    metadata = getattr(subject, "metadata", None) or {}
    suppress = metadata.get("lint", {}).get("suppress", ())
    return frozenset(str(rule_id) for rule_id in suppress)


def _run_rules(target: str, subject, ctx: LintContext) -> list:
    findings: list[Finding] = []
    for rule in REGISTRY.for_target(target):
        findings.extend(rule.check(subject, ctx))
    return findings


def _cluster_spec(cluster):
    """Accept a SimulatedCluster or a bare ClusterSpec."""
    return getattr(cluster, "spec", cluster)


def lint_manifest(
    manifest: CampaignManifest,
    cluster=None,
    retry_policy=None,
    suppress=(),
) -> LintReport:
    """Statically analyze a campaign manifest (no execution)."""
    suppress = frozenset(suppress) | suppressions_of(manifest)
    ctx = LintContext(
        subject_name=f"campaign {manifest.campaign!r}",
        cluster_spec=_cluster_spec(cluster),
        retry_policy=retry_policy,
        suppress=suppress,
    )
    return LintReport.of(_run_rules("manifest", manifest, ctx), suppress)


def lint_campaign(
    campaign: Campaign,
    cluster=None,
    retry_policy=None,
    suppress=(),
) -> LintReport:
    """Analyze a live Campaign: sweep-level rules plus manifest rules."""
    suppress = frozenset(suppress) | suppressions_of(campaign)
    ctx = LintContext(
        subject_name=f"campaign {campaign.name!r}",
        cluster_spec=_cluster_spec(cluster),
        retry_policy=retry_policy,
        suppress=suppress,
    )
    findings = _run_rules("campaign", campaign, ctx)
    findings += _run_rules("manifest", campaign.to_manifest(), ctx)
    return LintReport.of(findings, suppress)


def lint_graph(graph, suppress=()) -> LintReport:
    """Analyze a dataflow graph without running it."""
    suppress = frozenset(suppress)
    ctx = LintContext(subject_name=f"graph {graph.name!r}", suppress=suppress)
    return LintReport.of(_run_rules("graph", graph, ctx), suppress)


def lint_component(
    component,
    declared=None,
    scenarios=(),
    suppress=(),
) -> LintReport:
    """Gauge-debt analysis: metadata vs. ``declared`` profile + scenarios."""
    suppress = frozenset(suppress)
    ctx = LintContext(
        subject_name=f"component {component.name!r}",
        declared_profile=declared,
        scenarios=tuple(scenarios),
        suppress=suppress,
    )
    return LintReport.of(_run_rules("component", component, ctx), suppress)


def lint_model(
    model,
    library,
    template_names=None,
    extra_names=(),
    suppress=(),
) -> LintReport:
    """Check a Skel model against the templates it is about to render."""
    suppress = frozenset(suppress)
    bundle = ModelArtifact(
        model=model,
        library=library,
        template_names=tuple(template_names) if template_names is not None else None,
        extra_names=frozenset(extra_names),
    )
    ctx = LintContext(
        subject_name=f"model {model.schema.name!r}",
        model=model,
        suppress=suppress,
    )
    return LintReport.of(_run_rules("model", bundle, ctx), suppress)


def lint_source(
    text: str,
    path: str = "<source>",
    generated: bool | None = None,
    parameters=(),
    model=None,
    suppress=(),
) -> LintReport:
    """AST/text analysis of one source artifact.

    ``generated=None`` auto-detects the skel fingerprint stamp; pass an
    explicit bool to force or forbid the generated-only checks.
    """
    suppress = frozenset(suppress)
    if generated is None:
        generated = code_rules.looks_generated(text)
    artifact = SourceArtifact(
        path=str(path),
        text=text,
        generated=generated,
        parameters=frozenset(parameters),
    )
    ctx = LintContext(subject_name=str(path), model=model, suppress=suppress)
    findings = _run_rules("source", artifact, ctx)
    if artifact.is_python:
        findings += _function_findings(text, str(path), ctx)
    return LintReport.of(findings, suppress)


def _function_findings(text: str, path: str, ctx: LintContext) -> list:
    """Concurrency-safety pass over each module-level function.

    Every top-level function is analyzed as its own entry point (with
    full interprocedural context for exculpatory evidence like seeding),
    but findings are reported from the entry scope only — callees are
    entries of their own pass, so nothing is missed or duplicated.
    """
    index = _flow.ModuleIndex.from_source(text, path)
    if index is None:
        return []
    findings: list[Finding] = []
    for name, node in index.functions.items():
        artifact = FunctionArtifact(
            name=name,
            path=path,
            analysis=_flow.analyze_function(index, node),
            role="unknown",
            interprocedural=False,
        )
        findings.extend(_run_rules("function", artifact, ctx))
    return findings


def lint_app_fn(app_fn, pool: str = "threads", suppress=(), subject: str = "") -> LintReport:
    """Concurrency-safety analysis of a live ``app_fn`` callable.

    This is the pre-flight gate ``savanna.drive`` and
    ``CampaignService.submit`` run before handing a function to a real
    backend: the function's module source is analyzed interprocedurally
    (entry plus reachable module-level callees) at full ``"worker"``
    severity, and under ``pool="processes"`` the callable is also
    pickle-probed — nothing from the function is ever *called*.
    """
    suppress = frozenset(suppress)
    requires_pickling = pool == "processes"
    name = getattr(app_fn, "__qualname__", None) or getattr(app_fn, "__name__", "app_fn")
    artifact = FunctionArtifact(
        name=name,
        path=getattr(getattr(app_fn, "__code__", None), "co_filename", "<function>"),
        analysis=_flow.analyze_callable(app_fn),
        role="worker",
        requires_pickling=requires_pickling,
        pickle_failure=_flow.probe_pickle(app_fn) if requires_pickling else None,
        pickle_hints=_flow.pickle_hints_for(app_fn),
        interprocedural=True,
    )
    ctx = LintContext(subject_name=subject or f"app_fn {name!r}", suppress=suppress)
    return LintReport.of(_run_rules("function", artifact, ctx), suppress)


def lint_generated(files, model=None, suppress=()) -> LintReport:
    """Analyze :class:`~repro.skel.generator.GeneratedFile` output.

    With the generating ``model``, parameter shadowing and staleness are
    checked too (the model's value names are the shadowing universe).
    """
    parameters = frozenset(model.params()) if model is not None else frozenset()
    report = LintReport()
    for generated_file in files:
        report = report.merged(
            lint_source(
                generated_file.content,
                path=generated_file.relpath,
                generated=True,
                parameters=parameters,
                model=model,
                suppress=suppress,
            )
        )
    return report


def lint(subject, **kwargs) -> LintReport:
    """Type-dispatching face: hand it what you have."""
    if isinstance(subject, Campaign):
        return lint_campaign(subject, **kwargs)
    if isinstance(subject, CampaignManifest):
        return lint_manifest(subject, **kwargs)
    # Late imports keep heavy layers out of the module import path.
    from repro.dataflow.graph import DataflowGraph
    from repro.gauges.model import WorkflowComponent
    from repro.skel.model import SkelModel

    if isinstance(subject, DataflowGraph):
        return lint_graph(subject, **kwargs)
    if isinstance(subject, WorkflowComponent):
        return lint_component(subject, **kwargs)
    if isinstance(subject, SkelModel):
        return lint_model(subject, **kwargs)
    if isinstance(subject, (str, Path)):
        return lint_paths([subject], **kwargs)
    raise TypeError(
        f"cannot lint a {type(subject).__name__}; expected a Campaign, "
        "CampaignManifest, DataflowGraph, WorkflowComponent, SkelModel, or path"
    )


# ---------------------------------------------------------------------------
# Path walking — the CLI face


_SOURCE_SUFFIXES = (".py", ".sh")


def _is_campaign_dir(path: Path) -> bool:
    return (path / ".cheetah" / "manifest.json").is_file()


def _campaign_sources(path: Path) -> list[Path]:
    return sorted(
        file
        for file in path.rglob("*")
        if file.suffix in _SOURCE_SUFFIXES and file.is_file()
    )


def _lint_campaign_dir(path: Path, suppress=(), cache: bool = True) -> LintReport:
    """Manifest rules + source rules over every run artifact on disk.

    With ``cache`` (the default) the finished report is memoized in
    ``.cheetah/lintcache.json`` keyed by a content digest of the
    manifest, the source artifacts, the rule catalog, and the caller's
    suppressions — an unchanged directory costs file reads plus one
    hash, no rule runs.  Manifest-metadata suppressions need no key of
    their own: they live inside the hashed manifest text.
    """
    sources = _campaign_sources(path)
    cache_path = _cache.cache_path_for(path)
    digest = None
    manifest_text = (path / ".cheetah" / "manifest.json").read_text()
    if cache:
        digest = _cache.campaign_digest(
            manifest_text,
            ((str(f.relative_to(path)), f.read_bytes()) for f in sources),
            suppress,
        )
        cached = _cache.load_cached_report(cache_path, digest)
        if cached is not None:
            return cached
    directory = resolve_campaign_dir(path)
    manifest = directory.manifest
    suppress = frozenset(suppress) | suppressions_of(manifest)
    report = lint_manifest(manifest, suppress=suppress)
    for file in sources:
        relative = file.relative_to(path)
        report = report.merged(
            lint_source(
                file.read_text(),
                path=f"{path}/{relative}",
                suppress=suppress,
            )
        )
    if cache and digest is not None:
        _cache.store_cached_report(cache_path, digest, report)
    return report


def _looks_like_manifest(path: Path) -> bool:
    if path.suffix != ".json":
        return False
    head = path.read_text()[:2048]
    return '"schema_version"' in head and '"runs"' in head


def lint_path(path, suppress=(), cache: bool = True) -> LintReport:
    """Lint one path: a campaign directory, a directory tree, or a file."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such path: {path}")
    if path.is_dir():
        if _is_campaign_dir(path):
            return _lint_campaign_dir(path, suppress, cache=cache)
        report = LintReport()
        campaign_roots = set()
        for candidate in sorted(p for p in path.rglob(".cheetah") if p.is_dir()):
            root = candidate.parent
            if _is_campaign_dir(root):
                campaign_roots.add(root)
                report = report.merged(_lint_campaign_dir(root, suppress, cache=cache))
        for file in sorted(path.rglob("*.py")):
            # set lookup per ancestor, not a scan over every campaign root
            if any(parent in campaign_roots for parent in file.parents):
                continue
            report = report.merged(
                lint_source(file.read_text(), path=str(file), suppress=suppress)
            )
        return report
    if _looks_like_manifest(path):
        manifest = manifest_from_json(path.read_text())
        return lint_manifest(manifest, suppress=suppress)
    return lint_source(path.read_text(), path=str(path), suppress=suppress)


def lint_paths(paths, suppress=(), cache: bool = True) -> LintReport:
    """Lint several paths into one merged report."""
    report = LintReport()
    for path in paths:
        report = report.merged(lint_path(path, suppress, cache=cache))
    return report
