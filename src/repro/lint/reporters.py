"""Reporters: render a :class:`LintReport` for humans and machines.

``render_text`` is the terminal face; ``render_json`` emits a SARIF-lite
document — the result/rule split of SARIF 2.1 without the schema bulk —
so CI systems and editors can consume findings without parsing prose.
Both renderings are deterministic for a given report (stable ordering,
sorted keys), which makes them golden-file testable and diffable.
"""

from __future__ import annotations

import json

from repro.lint.findings import LintReport, Severity
from repro.lint.rules import REGISTRY

#: SARIF level names per severity tier.
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

JSON_SCHEMA_VERSION = "repro.lint/1"


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-readable rendering: one line per finding plus a summary."""
    lines = [finding.format() for finding in report.findings]
    if verbose and report.suppressed:
        lines.append("")
        lines.extend(
            f"suppressed: {finding.format()}" for finding in report.suppressed
        )
    counts = report.counts()
    summary = ", ".join(f"{counts[s.label]} {s.label}" for s in reversed(Severity))
    if report.suppressed:
        summary += f" ({len(report.suppressed)} suppressed)"
    lines.append(("" if not lines else "\n") + f"lint: {summary}")
    return "\n".join(lines).lstrip("\n")


def _result(finding) -> dict:
    entry = {
        "ruleId": finding.rule_id,
        "level": _SARIF_LEVELS[finding.severity],
        "message": {"text": finding.message},
    }
    location = {}
    if finding.subject:
        location["subject"] = finding.subject
    if finding.location:
        location["region"] = finding.location
    if location:
        entry["locations"] = [location]
    return entry


def render_json(report: LintReport, registry=REGISTRY) -> str:
    """SARIF-lite JSON: a tool block with the rule catalog + results."""
    used = {f.rule_id for f in report.findings} | {f.rule_id for f in report.suppressed}
    document = {
        "version": JSON_SCHEMA_VERSION,
        "tool": {
            "name": "repro.lint",
            "rules": [row for row in registry.catalog() if row["id"] in used],
        },
        "results": [_result(f) for f in report.findings],
        "suppressed": [_result(f) for f in report.suppressed],
        "summary": report.counts(),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render(report: LintReport, fmt: str = "text", **kwargs) -> str:
    """Dispatch on ``fmt`` (``"text"`` or ``"json"``)."""
    if fmt == "text":
        return render_text(report, **kwargs)
    if fmt == "json":
        return render_json(report, **kwargs)
    raise ValueError(f"unknown format {fmt!r}; expected 'text' or 'json'")
