"""Interprocedural AST flow analysis backing the FAIR5xx rule pack.

This module knows nothing about concurrency rules; it answers the
questions those rules ask of a function body and its surroundings:

- **Symbol resolution** — what does this name refer to?  A parameter, a
  local, a module-level binding of the analyzed module, an imported
  module attribute (``np.random.rand`` → ``numpy.random.rand``), or an
  unbound (builtin) name.
- **Call-graph construction** — which module-level functions are
  reachable from an entry function, following direct calls *and* bare
  references (a helper passed as a callback is still worker code).
- **Constness** — is this expression provably the same value on every
  run?  Parameters and anything derived from a call are *run-varying*;
  literals, f-strings of literals, ``Path``/``os.path.join`` over
  literals, and module constants are not.  Constness is what turns "this
  function writes a file" into "every run writes the *same* file".
- **Attribute-write tracking** — stores into ``obj.attr`` / ``obj[k]``
  and mutating method calls, with the receiver resolved.

Everything here is pure :mod:`ast` analysis — nothing from the analyzed
source is ever imported or executed.
"""

from __future__ import annotations

import ast
import inspect
import pickle
from dataclasses import dataclass, field

#: Method names that mutate their receiver in place.  Used to detect
#: module-state mutation through a method call rather than a store.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)

#: Callables (by resolved dotted name) that build a constant value from
#: constant arguments — paths assembled from literals are still literals.
_CONSTANT_BUILDERS = frozenset(
    {"pathlib.Path", "pathlib.PurePath", "os.path.join", "posixpath.join", "str"}
)


class ModuleIndex:
    """Module-level bindings of one parsed module.

    Only top-level statements are indexed: the point is to resolve what
    a *function body* sees in its enclosing module namespace.
    """

    def __init__(self, tree: ast.Module, path: str = "<module>"):
        self.tree = tree
        self.path = path
        #: local alias -> dotted origin ("np" -> "numpy",
        #: "rand" -> "numpy.random.rand" for from-imports).
        self.imports: dict[str, str] = {}
        #: module-level function name -> its def node.
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        #: module-level simple assignment name -> value expression
        #: (``None`` when rebound and therefore ambiguous).
        self.constants: dict[str, ast.expr | None] = {}
        #: every name bound at module level (classes included).
        self.module_names: set[str] = set()
        for node in tree.body:
            self._index(node)

    @classmethod
    def from_source(cls, text: str, path: str = "<module>") -> "ModuleIndex | None":
        try:
            tree = ast.parse(text)
        except SyntaxError:
            return None
        return cls(tree, path)

    def _index(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                self.imports[local] = origin
                self.module_names.add(local)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self.imports[local] = f"{base}.{alias.name}" if base else alias.name
                self.module_names.add(local)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.functions[node.name] = node
            self.module_names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            self.module_names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in _bound_names(target):
                    ambiguous = name in self.constants
                    only_name = isinstance(target, ast.Name)
                    self.constants[name] = node.value if only_name and not ambiguous else None
                    self.module_names.add(name)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            self.constants[node.target.id] = node.value
            self.module_names.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional module bodies (TYPE_CHECKING guards, optional
            # imports) still bind names the functions below can see.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._index(child)


def _bound_names(target: ast.expr):
    """Names bound by an assignment target (tuple unpack included)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_names(element)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


@dataclass(frozen=True)
class Resolution:
    """Where a dotted reference points.

    ``kind`` is one of ``"local"`` (parameter or local binding — not
    resolvable past the function), ``"import"``, ``"module"`` (a
    module-level binding of the analyzed module), or ``"unknown"``
    (unbound anywhere visible: a builtin or a star-import survivor).
    ``dotted`` is the fully resolved dotted path when one exists —
    imports are followed, so ``np.random.rand`` resolves to
    ``numpy.random.rand``.
    """

    kind: str
    dotted: str = ""


@dataclass
class FunctionScope:
    """One function's names, locals, and single-assignment bindings."""

    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    name: str
    module: ModuleIndex
    params: frozenset = frozenset()
    #: every name bound inside the function (params, locals, loop vars).
    local_names: set = field(default_factory=set)
    #: local -> value expr when assigned exactly once (else ``None``).
    local_assigns: dict = field(default_factory=dict)
    #: names the function declared ``global`` (resolve to the module).
    declared_global: frozenset = frozenset()

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @classmethod
    def build(cls, module: ModuleIndex, node) -> "FunctionScope":
        name = getattr(node, "name", "<lambda>")
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        scope = cls(node=node, name=name, module=module, params=frozenset(params))
        scope.local_names = set(params)
        declared_global: set[str] = set()
        body = node.body if isinstance(node.body, list) else [node.body]
        for stmt in body:
            for child in ast.walk(stmt):
                if isinstance(child, ast.Global):
                    declared_global.update(child.names)
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        for bound in _bound_names(target):
                            scope.local_names.add(bound)
                            ambiguous = bound in scope.local_assigns
                            only = isinstance(target, ast.Name) and len(child.targets) == 1
                            scope.local_assigns[bound] = (
                                child.value if only and not ambiguous else None
                            )
                elif isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
                    scope.local_names.add(child.target.id)
                    scope.local_assigns[child.target.id] = child.value
                elif isinstance(child, (ast.AugAssign, ast.For, ast.AsyncFor)):
                    target = child.target
                    for bound in _bound_names(target):
                        scope.local_names.add(bound)
                        scope.local_assigns[bound] = None
                elif isinstance(child, (ast.With, ast.AsyncWith)):
                    for item in child.items:
                        if item.optional_vars is not None:
                            for bound in _bound_names(item.optional_vars):
                                scope.local_names.add(bound)
                                scope.local_assigns[bound] = None
                elif isinstance(child, ast.ExceptHandler) and child.name:
                    scope.local_names.add(child.name)
                elif isinstance(child, ast.comprehension):
                    for bound in _bound_names(child.target):
                        scope.local_names.add(bound)
                        scope.local_assigns[bound] = None
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)) and child is not node:
                    scope.local_names.add(child.name)
        scope.declared_global = frozenset(declared_global)
        scope.local_names -= declared_global
        return scope

    # -- resolution ---------------------------------------------------

    def resolve(self, node: ast.expr) -> Resolution:
        """Resolve a Name/Attribute chain to its origin."""
        parts = dotted_parts(node)
        if parts is None:
            return Resolution("local")
        base, rest = parts[0], parts[1:]
        if base in self.local_names and base not in self.declared_global:
            return Resolution("local")
        index = self.module
        if base in index.imports:
            return Resolution("import", ".".join([index.imports[base], *rest]))
        if base in index.module_names:
            return Resolution("module", ".".join(parts))
        return Resolution("unknown", ".".join(parts))

    def resolve_call(self, call: ast.Call) -> Resolution:
        return self.resolve(call.func)

    # -- constness ----------------------------------------------------

    def is_constant(self, node: ast.expr, _depth: int = 0) -> bool:
        """True when ``node`` provably evaluates to the same value on
        every run of the function: no parameter, local of unknown
        provenance, or arbitrary call participates."""
        if _depth > 8 or node is None:
            return False
        if isinstance(node, ast.Constant):
            return True
        if isinstance(node, (ast.Tuple, ast.List)):
            return all(self.is_constant(e, _depth + 1) for e in node.elts)
        if isinstance(node, ast.JoinedStr):
            return all(
                self.is_constant(v.value, _depth + 1) if isinstance(v, ast.FormattedValue)
                else isinstance(v, ast.Constant)
                for v in node.values
            )
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Div, ast.Mod)):
            return self.is_constant(node.left, _depth + 1) and self.is_constant(
                node.right, _depth + 1
            )
        if isinstance(node, ast.Call):
            resolved = self.resolve_call(node)
            builder = resolved.dotted in _CONSTANT_BUILDERS or (
                resolved.kind == "unknown" and resolved.dotted in ("str", "Path")
            )
            if not builder or node.keywords:
                return False
            return all(self.is_constant(a, _depth + 1) for a in node.args)
        if isinstance(node, ast.Name):
            if node.id in self.params:
                return False
            if node.id in self.local_names:
                value = self.local_assigns.get(node.id)
                return value is not None and self.is_constant(value, _depth + 1)
            value = self.module.constants.get(node.id)
            return value is not None and self.is_constant(value, _depth + 1)
        return False

    # -- traversal ----------------------------------------------------

    def walk(self):
        """Walk the function body, *excluding* nested function bodies —
        each reachable function gets its own scope."""
        body = self.node.body if isinstance(self.node.body, list) else [self.node.body]
        stack = list(body)
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                stack.append(child)

    def calls(self):
        for node in self.walk():
            if isinstance(node, ast.Call):
                yield node


def dotted_parts(node: ast.expr) -> list[str] | None:
    """``a.b.c`` → ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


@dataclass
class FlowAnalysis:
    """An entry function plus every reachable module-level callee."""

    module: ModuleIndex
    entry: FunctionScope
    #: entry first, then callees in breadth-first call-graph order.
    scopes: list = field(default_factory=list)

    @property
    def reachable_names(self) -> list[str]:
        return [s.name for s in self.scopes]


def analyze_function(module: ModuleIndex, node) -> FlowAnalysis:
    """Build the call graph rooted at ``node``.

    A module-level function is reachable when the body under analysis
    mentions its name at all — a helper handed to ``map``/``submit`` as
    a callback runs in the same worker as a direct call.
    """
    entry = FunctionScope.build(module, node)
    analysis = FlowAnalysis(module=module, entry=entry, scopes=[entry])
    visited = {entry.name}
    queue = [entry]
    while queue:
        scope = queue.pop(0)
        for walked in scope.walk():
            if not isinstance(walked, ast.Name) or not isinstance(walked.ctx, ast.Load):
                continue
            name = walked.id
            if name in visited or name in scope.local_names:
                continue
            callee = module.functions.get(name)
            if callee is None:
                continue
            visited.add(name)
            callee_scope = FunctionScope.build(module, callee)
            analysis.scopes.append(callee_scope)
            queue.append(callee_scope)
    return analysis


# ---------------------------------------------------------------------------
# Runtime face: analyzing a live callable (the drive/service app_fn gate)


def pickle_hints_for(fn) -> tuple:
    """Human explanations of *why* a callable resists pickling."""
    hints = []
    name = getattr(fn, "__name__", "")
    qualname = getattr(fn, "__qualname__", name)
    if name == "<lambda>":
        hints.append("defined as a lambda (pickle serializes functions by importable name)")
    elif "<locals>" in qualname:
        hints.append(f"nested function {qualname!r} is not importable at module scope")
    if inspect.ismethod(fn):
        hints.append("bound method: pickling it drags the whole instance along")
    code = getattr(fn, "__code__", None)
    if getattr(fn, "__closure__", None) and code is not None:
        captured = ", ".join(sorted(code.co_freevars))
        hints.append(f"closes over {captured} (captured state travels to every worker)")
    return tuple(hints)


def probe_pickle(fn) -> str | None:
    """``None`` when ``fn`` pickles; else a one-line failure description."""
    try:
        pickle.dumps(fn)
    except Exception as exc:  # noqa: B902 - pickle raises a zoo of types
        return f"{type(exc).__name__}: {exc}"
    return None


def analyze_callable(fn) -> FlowAnalysis | None:
    """Flow analysis for a live function via its module's source.

    Returns ``None`` when source is unavailable (builtins, C
    extensions, interactive definitions) — runtime pickle probing still
    applies in that case, static rules stand down.
    """
    try:
        module = inspect.getmodule(fn)
        source = inspect.getsource(module) if module is not None else None
    except (OSError, TypeError):
        source = None
    if source is None:
        return None
    index = ModuleIndex.from_source(source, getattr(module, "__file__", "") or "<module>")
    if index is None:
        return None
    code = getattr(fn, "__code__", None)
    target = None
    fn_name = getattr(fn, "__name__", "")
    if fn_name in index.functions:
        target = index.functions[fn_name]
    elif code is not None:
        # Lambdas and nested defs: locate by line number anywhere in the tree.
        for node in ast.walk(index.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                if node.lineno == code.co_firstlineno:
                    target = node
                    break
    if target is None:
        return None
    return analyze_function(index, target)


__all__ = [
    "MUTATING_METHODS",
    "ModuleIndex",
    "Resolution",
    "FunctionScope",
    "FlowAnalysis",
    "analyze_function",
    "analyze_callable",
    "dotted_parts",
    "pickle_hints_for",
    "probe_pickle",
]
