"""FAIR5xx — concurrency-safety rules for worker code.

Since real backends landed (``local-threads``/``local-processes``) and
the multi-tenant :class:`~repro.savanna.service.CampaignService`, the
dominant runtime failure mode is no longer a malformed manifest but an
``app_fn`` that is structurally unsafe to fan out: it mutates module
state every worker shares, draws from the ambient RNG so runs are not
reproducible, captures state that cannot cross a process boundary, or
writes every run's output to the same path.  These rules find that
statically, before an allocation is burned.

Rules bind to the ``"function"`` target and receive a
:class:`~repro.lint.context.FunctionArtifact` — a
:class:`~repro.lint.flow.FlowAnalysis` (entry function + reachable
module-level callees) plus execution context: whether the function is
known worker code (``role="worker"``) and whether the backend pickles
it (``local-processes``).  Outside worker context severities soften to
WARNING and the pickling/primitive rules stand down, which is what
keeps a tree scan over ordinary driver scripts quiet.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.flow import MUTATING_METHODS
from repro.lint.rules import rule

#: ``random`` module draws that consume the shared global RNG stream.
RANDOM_DRAWS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "triangular",
        "vonmisesvariate",
        "weibullvariate",
        "getrandbits",
        "randbytes",
    }
)

#: ``numpy.random`` attributes that are *not* ambient draws (seeding,
#: generator construction — the things we want people to call instead).
_NUMPY_NON_DRAWS = frozenset(
    {"seed", "default_rng", "Generator", "RandomState", "SeedSequence", "BitGenerator"}
)

_RNG_FACTORIES = frozenset(
    {"random.Random", "numpy.random.default_rng", "numpy.random.RandomState"}
)

_SYNC_PRIMITIVES = frozenset(
    {
        "threading.Thread",
        "threading.Timer",
        "threading.Lock",
        "threading.RLock",
        "threading.Event",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Barrier",
        "multiprocessing.Process",
        "multiprocessing.Pool",
        "multiprocessing.Manager",
        "multiprocessing.Queue",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "multiprocessing.Event",
        "multiprocessing.Semaphore",
        "multiprocessing.Value",
        "multiprocessing.Array",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
    }
)

#: Blocking calls that stall the event loop when awaited code runs them.
_BLOCKING_IN_ASYNC = frozenset(
    {
        "time.sleep",
        "open",
        "os.system",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)

_WRITE_MODES = frozenset("wax")


def _where(scope, node) -> str:
    return f"{scope.name}() line {node.lineno}"


def _soften(artifact, severity: Severity) -> Severity:
    """Outside known worker context an ERROR is advice, not a gate."""
    return severity if artifact.role == "worker" else min(severity, Severity.WARNING)


# ---------------------------------------------------------------------------
# FAIR501 — shared module state mutated from worker code


@rule(
    "FAIR501",
    Severity.ERROR,
    "function",
    "worker mutates shared module state",
    "Workers run the same function concurrently; a `global` write, a store "
    "into a module-level object, or an in-place mutation of one is a data "
    "race under local-threads and silently diverging copies under "
    "local-processes.",
)
def shared_state_mutation(artifact, ctx):
    for scope in artifact.iter_scopes():
        severity = _soften(artifact, Severity.ERROR)
        for node in scope.walk():
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in scope.declared_global:
                        yield (
                            f"assigns module global {target.id!r} declared with "
                            "`global`; every concurrent run races on it",
                            _where(scope, node),
                            severity,
                        )
                    elif isinstance(target, (ast.Attribute, ast.Subscript)):
                        resolved = scope.resolve(target.value)
                        if resolved.kind in ("module", "import"):
                            yield (
                                f"writes into module-level object "
                                f"{resolved.dotted or ast.unparse(target.value)!r}; "
                                "shared across every concurrent run",
                                _where(scope, node),
                                severity,
                            )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in MUTATING_METHODS:
                    continue
                resolved = scope.resolve(node.func.value)
                if resolved.kind in ("module", "import"):
                    yield (
                        f"calls {node.func.attr}() on module-level object "
                        f"{resolved.dotted!r}, mutating state every run shares",
                        _where(scope, node),
                        severity,
                    )


# ---------------------------------------------------------------------------
# FAIR502 — ambient randomness without a run-derived seed


def _is_draw(resolved) -> bool:
    dotted = resolved.dotted
    if not dotted:
        return False
    if dotted.startswith("random."):
        return dotted.split(".", 1)[1] in RANDOM_DRAWS
    if dotted.startswith("numpy.random."):
        return dotted.rsplit(".", 1)[1] not in _NUMPY_NON_DRAWS
    return False


def _mentions_seed_for_run(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and "seed_for_run" in child.id:
            return True
        if isinstance(child, ast.Attribute) and "seed_for_run" in child.attr:
            return True
    return False


def _seed_evidence(analysis) -> bool:
    """True when any reachable code seeds with a run-varying value or
    builds a seeded generator — the reproducible idioms."""
    for scope in analysis.scopes:
        for call in scope.calls():
            resolved = scope.resolve_call(call)
            dotted = resolved.dotted
            seedy = dotted.endswith(".seed") and (
                dotted.startswith("random.") or dotted.startswith("numpy.random.")
            )
            factory = dotted in _RNG_FACTORIES
            if not (seedy or factory):
                continue
            if not call.args and not call.keywords:
                continue
            args = list(call.args) + [kw.value for kw in call.keywords]
            for arg in args:
                if _mentions_seed_for_run(arg) or not scope.is_constant(arg):
                    return True
    return False


@rule(
    "FAIR502",
    Severity.WARNING,
    "function",
    "ambient randomness without a run-derived seed",
    "Drawing from the shared `random`/`numpy.random` stream without seeding "
    "it from run identity makes runs irreproducible and, under threads, "
    "interleaves one global stream across workers; derive a seed per run "
    "(`seed_for_run`) or build a local seeded Generator.",
)
def unseeded_randomness(artifact, ctx):
    analysis = artifact.analysis
    if analysis is None or _seed_evidence(analysis):
        return
    for scope, call, resolved in unseeded_draw_sites(analysis, artifact.iter_scopes()):
        yield (
            f"{resolved.dotted}() draws from the ambient RNG with no "
            "run-derived seed in sight; runs are not reproducible and "
            "threads share one stream",
            _where(scope, call),
        )


def unseeded_draw_sites(analysis, scopes=None):
    """Draw sites ``(scope, call, resolution)`` — shared with ``--fix``."""
    if _seed_evidence(analysis):
        return
    for scope in scopes if scopes is not None else analysis.scopes:
        for call in scope.calls():
            resolved = scope.resolve_call(call)
            if _is_draw(resolved):
                yield scope, call, resolved


# ---------------------------------------------------------------------------
# FAIR503 — captures that cannot pickle under local-processes


@rule(
    "FAIR503",
    Severity.ERROR,
    "function",
    "app_fn cannot pickle under local-processes",
    "local-processes ships the function to workers by pickling it; lambdas, "
    "nested functions, and closures serialize by importable name and fail "
    "at dispatch time — after the queue slot is already spent.",
)
def unpicklable_capture(artifact, ctx):
    if not artifact.requires_pickling or artifact.pickle_failure is None:
        return
    reasons = "; ".join(artifact.pickle_hints) or artifact.pickle_failure
    yield (
        f"cannot be shipped to process workers: {reasons} "
        f"(pickle says: {artifact.pickle_failure})",
    )


# ---------------------------------------------------------------------------
# FAIR504 — every run writes the same path


def _call_write_target(scope, call: ast.Call):
    """The path expression a call writes to, or ``None``."""

    def mode_of(args_index: int):
        for kw in call.keywords:
            if kw.arg == "mode":
                return kw.value
        if len(call.args) > args_index:
            return call.args[args_index]
        return None

    def writes(mode_node) -> bool:
        return isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str) and (
            bool(set(mode_node.value) & _WRITE_MODES) or "+" in mode_node.value
        )

    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr in ("write_text", "write_bytes"):
            return call.func.value
        if attr == "open" and writes(mode_of(0)):
            return call.func.value
    resolved = scope.resolve_call(call)
    if resolved.dotted == "open" and call.args and writes(mode_of(1)):
        return call.args[0]
    if resolved.dotted in ("numpy.save", "numpy.savetxt", "numpy.savez",
                           "numpy.savez_compressed") and call.args:
        return call.args[0]
    return None


def constant_write_sites(analysis, scopes=None):
    """``(scope, call, path_expr)`` where the path is run-invariant."""
    for scope in scopes if scopes is not None else analysis.scopes:
        for call in scope.calls():
            target = _call_write_target(scope, call)
            if target is not None and scope.is_constant(target):
                yield scope, call, target


@rule(
    "FAIR504",
    Severity.ERROR,
    "function",
    "cross-run write race: output path is run-invariant",
    "A write target built only from literals and module constants is the "
    "same file for every run in the sweep — concurrent runs clobber each "
    "other; derive the path from the run's parameters or per-run directory.",
)
def constant_path_write(artifact, ctx):
    analysis = artifact.analysis
    if analysis is None:
        return
    severity = _soften(artifact, Severity.ERROR)
    for scope, call, target in constant_write_sites(analysis, artifact.iter_scopes()):
        yield (
            f"writes to {ast.unparse(target)}, a path identical for every "
            "run; concurrent runs race on it",
            _where(scope, call),
            severity,
        )


# ---------------------------------------------------------------------------
# FAIR505 — synchronization primitives built inside a task


@rule(
    "FAIR505",
    Severity.WARNING,
    "function",
    "task spawns its own threads/processes",
    "A task that creates Thread/Pool/Lock primitives multiplies the "
    "backend's parallelism (oversubscription) and, under local-processes, "
    "nests process pools inside pool workers; concurrency belongs to the "
    "executor, not the task.",
)
def sync_primitive_in_task(artifact, ctx):
    if artifact.role != "worker":
        return
    for scope in artifact.iter_scopes():
        for call in scope.calls():
            resolved = scope.resolve_call(call)
            if resolved.dotted in _SYNC_PRIMITIVES:
                yield (
                    f"creates {resolved.dotted} inside a task the executor "
                    "already parallelizes",
                    _where(scope, call),
                )


# ---------------------------------------------------------------------------
# FAIR506 — blocking calls inside async code


@rule(
    "FAIR506",
    Severity.WARNING,
    "function",
    "blocking call inside async code",
    "`time.sleep`, sync file I/O, or a subprocess wait inside an `async "
    "def` stalls the whole event loop — every other campaign the service "
    "is juggling stops with it; await the async equivalent or push the "
    "work through a thread.",
)
def blocking_call_in_async(artifact, ctx):
    for scope in artifact.iter_scopes():
        if not scope.is_async:
            continue
        for call in scope.calls():
            resolved = scope.resolve_call(call)
            dotted = resolved.dotted
            if dotted in _BLOCKING_IN_ASYNC or dotted.startswith("requests."):
                yield (
                    f"calls blocking {dotted}() inside `async def "
                    f"{scope.name}`; the event loop (and every other "
                    "submission) waits with it",
                    _where(scope, call),
                )
