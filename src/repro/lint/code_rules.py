"""FAIR3xx / FAIR4xx — generated-code and Skel-model rules.

The FAIR3xx band inspects source text (generated scripts and Python
files) via :mod:`ast` without importing or executing anything; the
FAIR4xx band checks a Skel model against the template library it is
about to render, so holes are caught before a single file is stamped.
"""

from __future__ import annotations

import ast
import re

from repro.lint.findings import Severity
from repro.lint.rules import rule
from repro.skel.generator import is_stale

_PLACEHOLDER_RE = re.compile(r"\$\{[^{}]*\}")
_FINGERPRINT_MARKER = "model-fingerprint="


def looks_generated(text: str) -> bool:
    """True if ``text`` carries a skel fingerprint stamp in its header."""
    return any(_FINGERPRINT_MARKER in line for line in text.splitlines()[:3])


def _parse_python(artifact):
    """``ast.parse`` the artifact; returns ``None`` on syntax errors
    (FAIR305 reports those — other AST rules just stand down)."""
    try:
        return ast.parse(artifact.text)
    except SyntaxError:
        return None


@rule(
    "FAIR301",
    Severity.ERROR,
    target="source",
    title="unrendered template placeholder in generated file",
    rationale="A ${...} hole surviving into generated output is exactly "
    "the debt Skel exists to remove: the script will fail — or silently "
    "do the wrong thing — when executed.",
)
def unrendered_placeholder(artifact, ctx):
    if not artifact.generated:
        return
    for lineno, line in enumerate(artifact.text.splitlines(), start=1):
        for match in _PLACEHOLDER_RE.finditer(line):
            yield (
                f"unrendered placeholder {match.group(0)!r}",
                f"line {lineno}",
            )


@rule(
    "FAIR302",
    Severity.WARNING,
    target="source",
    title="model parameter shadowed in generated code",
    rationale="Generated Python rebinding a name the model provided "
    "means later statements no longer reflect the model: editing the "
    "model stops changing the behaviour — invisible drift.",
)
def shadowed_parameter(artifact, ctx):
    if not artifact.is_python or not artifact.parameters:
        return
    tree = _parse_python(artifact)
    if tree is None:
        return
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For)):
            targets = [node.target]
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *filter(None, (args.vararg, args.kwarg)),
            ):
                if arg.arg in artifact.parameters:
                    yield (
                        f"argument {arg.arg!r} of {node.name!r} shadows a "
                        "model parameter",
                        f"line {arg.lineno}",
                    )
        for target in targets:
            for name_node in ast.walk(target):
                if (
                    isinstance(name_node, ast.Name)
                    and name_node.id in artifact.parameters
                ):
                    yield (
                        f"assignment rebinds model parameter {name_node.id!r}",
                        f"line {name_node.lineno}",
                    )


@rule(
    "FAIR303",
    Severity.WARNING,
    target="source",
    title="bare except swallows everything",
    rationale="A bare `except:` hides the very failures campaign "
    "resilience is supposed to count, retry, and report; provenance "
    "records a success that never happened.",
)
def bare_except(artifact, ctx):
    if not artifact.is_python:
        return
    tree = _parse_python(artifact)
    if tree is None:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield ("bare `except:` clause", f"line {node.lineno}")


@rule(
    "FAIR304",
    Severity.WARNING,
    target="source",
    title="stale generated file",
    rationale="The fingerprint stamp disagrees with the current model: "
    "the file no longer reflects the single point of user interaction "
    "and is free to delete and regenerate.",
)
def stale_generated(artifact, ctx):
    if not artifact.generated or ctx.model is None:
        return
    if is_stale(artifact.text, ctx.model):
        yield (
            "fingerprint stamp does not match the current model; "
            "regenerate (nothing of value is lost)",
        )


@rule(
    "FAIR305",
    Severity.ERROR,
    target="source",
    title="generated Python does not parse",
    rationale="A syntax error in an analyzed Python artifact guarantees "
    "a mid-allocation crash; generated code that cannot parse means the "
    "template itself is broken.",
)
def python_syntax_error(artifact, ctx):
    if not artifact.is_python:
        return
    try:
        ast.parse(artifact.text)
    except SyntaxError as exc:
        yield (f"syntax error: {exc.msg}", f"line {exc.lineno or 0}")


@rule(
    "FAIR401",
    Severity.ERROR,
    target="model",
    title="template reads variables the model does not define",
    rationale="Rendering would raise (or leave holes) at generation "
    "time; the model schema is the contract, and the template breaks it.",
)
def unbound_template_variable(bundle, ctx):
    names = (
        bundle.template_names
        if bundle.template_names is not None
        else bundle.library.names()
    )
    provided = set(bundle.model.params()) | set(bundle.extra_names) | {"loop"}
    for template_name in names:
        path_t, body_t, _comment = bundle.library.get(template_name)
        missing = sorted((path_t.variables() | body_t.variables()) - provided)
        if missing:
            yield (
                f"reads undefined model variables {missing}",
                f"template {template_name!r}",
            )


@rule(
    "FAIR402",
    Severity.WARNING,
    target="model",
    title="model field never read by any template",
    rationale="A field no template consumes is a decision the user is "
    "asked to make that changes nothing — the model should be exactly "
    "the set of decisions that matter.",
)
def unused_model_field(bundle, ctx):
    names = (
        bundle.template_names
        if bundle.template_names is not None
        else bundle.library.names()
    )
    used = bundle.library.required_variables(names)
    for field_name in sorted(set(bundle.model.values) - used):
        yield (
            f"field {field_name!r} is never read by templates {sorted(names)}",
            f"model {bundle.model.schema.name!r}",
        )
