"""FAIR2xx — gauge-debt rules.

The paper's claim is that gauge tiers are *machine-actionable*: a
declared tier must be backed by attached metadata, or it is a promise
the tooling cannot keep.  These rules compare a component's declared
:class:`~repro.gauges.model.GaugeProfile` against the profile
:func:`~repro.gauges.model.assess` derives mechanically, and report the
residual human cost through :mod:`repro.gauges.debt`.
"""

from __future__ import annotations

from repro.gauges.levels import Gauge
from repro.gauges.model import assess
from repro.gauges.debt import score
from repro.lint.findings import Severity
from repro.lint.rules import rule

#: What evidence would actually raise each gauge — used to make FAIR201
#: findings actionable instead of merely accusatory.
_EVIDENCE_HINTS = {
    Gauge.DATA_ACCESS: "attach a DataAccessDescriptor to every port",
    Gauge.DATA_SCHEMA: "attach a DataSchema to every port",
    Gauge.DATA_SEMANTICS: "attach a DataSemanticsDescriptor to every port",
    Gauge.SOFTWARE_GRANULARITY: "declare the component kind and a config template",
    Gauge.SOFTWARE_CUSTOMIZABILITY: "expose variables / attach a generation model",
    Gauge.SOFTWARE_PROVENANCE: "wire a recorder (execution logs, campaign "
    "context, export policy)",
}


@rule(
    "FAIR201",
    Severity.ERROR,
    target="component",
    title="declared gauge tier unsupported by metadata",
    rationale="A declared tier above what the attached metadata "
    "mechanically supports is FAIR debt in its purest form: reuse "
    "tooling trusting the declaration will fail at reuse time.",
)
def declared_tier_unsupported(component, ctx):
    declared = ctx.declared_profile
    if declared is None:
        return
    assessed = assess(component).profile
    for gauge in Gauge:
        claimed = declared.tier(gauge)
        supported = assessed.tier(gauge)
        if int(claimed) > int(supported):
            yield (
                f"{gauge.value} declared {claimed.name} but metadata supports "
                f"only {supported.name}; {_EVIDENCE_HINTS[gauge]}",
                f"component {component.name!r}",
            )


@rule(
    "FAIR202",
    Severity.WARNING,
    target="component",
    title="gauge tier capped by a cross-gauge dependency",
    rationale="Assessment capped a tier because a prerequisite gauge is "
    "too low (e.g. QUERY access without a declared schema).  The "
    "metadata exists but cannot be exploited until the dependency is met.",
)
def gauge_capped(component, ctx):
    assessment = assess(component)
    for note in assessment.notes:
        yield (note.message, f"component {component.name!r}: {note.gauge.value}")


@rule(
    "FAIR203",
    Severity.INFO,
    target="component",
    title="residual reuse debt under a scenario",
    rationale="The manual minutes a reuse scenario still costs — the "
    "quantified 'red fields' the next gauge investment should target.",
)
def residual_reuse_debt(component, ctx):
    for scenario in ctx.scenarios:
        report = score(component, scenario)
        if report.manual_minutes > 0:
            steps = ", ".join(s.name for s in report.remaining_steps)
            yield (
                f"scenario {scenario.name!r} still costs "
                f"{report.manual_minutes:g} manual minutes ({steps})",
                f"component {component.name!r}",
            )
