"""Incremental lint cache: near-O(changed) re-linting of campaign trees.

A campaign directory's lint verdict is a pure function of three inputs:
the manifest JSON, the source artifacts on disk, and the rule set (plus
any CLI-level suppressions).  So the engine hashes exactly those inputs
into a content digest and memoizes the finished
:class:`~repro.lint.findings.LintReport` in
``.cheetah/lintcache.json`` — next to the manifest, so the cache travels
with the campaign and a copied tree stays warm.

Re-linting an unchanged directory then costs file reads + one SHA-256,
not manifest parsing and thirty rule evaluations; a million-entry
catalog re-lints in time proportional to what actually changed.  The
digest covers the rule catalog itself (ids, severities, titles), so
upgrading ``repro`` or registering a new rule invalidates every cached
verdict — a stale cache can never mask a new class of debt.  Writes are
best-effort: a read-only tree lints fine, it just stays cold.

``python -m repro.lint --no-cache`` (or ``cache=False`` on the engine
entry points) bypasses both lookup and store.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.lint.findings import LintReport
from repro.lint.rules import REGISTRY

#: Bump when the cached payload shape changes.
CACHE_SCHEMA = "repro.lint.cache/v1"

#: File name under the campaign's ``.cheetah`` metadata directory.
CACHE_FILENAME = "lintcache.json"


def rules_signature() -> str:
    """Digest of the registered rule catalog — part of every cache key."""
    catalog = json.dumps(REGISTRY.catalog(), sort_keys=True)
    return hashlib.sha256(catalog.encode("utf-8")).hexdigest()


def campaign_digest(manifest_text: str, sources, suppress=()) -> str:
    """Content digest of everything a campaign-directory lint reads.

    ``sources`` is an iterable of ``(relative_path, bytes)`` pairs in a
    deterministic order.
    """
    digest = hashlib.sha256()
    digest.update(CACHE_SCHEMA.encode("utf-8"))
    digest.update(rules_signature().encode("utf-8"))
    digest.update(manifest_text.encode("utf-8"))
    for relative, data in sources:
        digest.update(b"\x00")
        digest.update(str(relative).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(data)
    digest.update(repr(sorted(suppress)).encode("utf-8"))
    return digest.hexdigest()


def cache_path_for(campaign_dir) -> Path:
    return Path(campaign_dir) / ".cheetah" / CACHE_FILENAME


def load_cached_report(cache_path, digest: str) -> LintReport | None:
    """The memoized report, or ``None`` on miss/stale/corrupt cache."""
    try:
        payload = json.loads(Path(cache_path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
        return None
    if payload.get("digest") != digest:
        return None
    try:
        return LintReport.from_dict(payload.get("report", {}))
    except (KeyError, ValueError, TypeError):
        return None


def store_cached_report(cache_path, digest: str, report: LintReport) -> None:
    """Memoize ``report``; silently a no-op on unwritable trees."""
    payload = {
        "schema": CACHE_SCHEMA,
        "digest": digest,
        "report": report.to_dict(),
    }
    cache_path = Path(cache_path)
    try:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = cache_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        tmp.replace(cache_path)
    except OSError:
        pass


__all__ = [
    "CACHE_SCHEMA",
    "CACHE_FILENAME",
    "rules_signature",
    "campaign_digest",
    "cache_path_for",
    "load_cached_report",
    "store_cached_report",
]
