"""Analysis contexts: everything a rule may consult besides its subject.

The context is how cross-layer knowledge reaches a rule without the rule
importing half the package: the cluster model (for oversubscription
checks), the retry policy (for budget contradictions), the declared gauge
profile (for debt checks), the Skel model (for staleness and shadowing).
All fields are optional; rules skip checks whose inputs are absent.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LintContext:
    """Shared context threaded through every rule invocation."""

    #: Name used as the ``subject`` of findings built from plain messages.
    subject_name: str = ""
    #: :class:`~repro.cluster.cluster.ClusterSpec` the campaign targets.
    cluster_spec: object | None = None
    #: :class:`~repro.resilience.RetryPolicy` the execution will use.
    retry_policy: object | None = None
    #: :class:`~repro.gauges.model.GaugeProfile` the author *claims*.
    declared_profile: object | None = None
    #: Iterable of :class:`~repro.gauges.debt.ReuseScenario` to score.
    scenarios: tuple = ()
    #: :class:`~repro.skel.model.SkelModel` generated artifacts came from.
    model: object | None = None
    #: Rule ids suppressed for this subject (campaign metadata + CLI).
    suppress: frozenset = frozenset()


@dataclass(frozen=True)
class SourceArtifact:
    """A piece of source text under analysis.

    ``parameters`` lists model parameter names bound into the artifact at
    generation time (enables the shadowing check); ``generated`` marks
    skel output (enables the placeholder and staleness checks).
    """

    path: str
    text: str
    generated: bool = False
    parameters: frozenset = frozenset()

    @property
    def is_python(self) -> bool:
        return self.path.endswith(".py")


@dataclass(frozen=True)
class FunctionArtifact:
    """A function under concurrency-safety analysis (FAIR5xx).

    ``analysis`` is a :class:`~repro.lint.flow.FlowAnalysis` (entry
    function plus reachable module-level callees), or ``None`` when
    source was unavailable — runtime facts (``pickle_failure``) still
    apply then.  ``role`` distinguishes known worker code (``"worker"``:
    an ``app_fn`` headed for a real backend, full severity) from a
    generic tree scan (``"unknown"``: gating severities soften to
    WARNING and worker-only rules stand down).  ``interprocedural``
    controls whether findings are reported from reachable callees too
    (the app_fn gate) or only from the entry function (the file scan,
    where every module function is its own entry and callee findings
    would duplicate).
    """

    name: str
    path: str = "<function>"
    analysis: object | None = None
    role: str = "unknown"
    requires_pickling: bool = False
    pickle_failure: str | None = None
    pickle_hints: tuple = ()
    interprocedural: bool = False

    def iter_scopes(self):
        """The scopes findings may be reported from."""
        if self.analysis is None:
            return []
        if self.interprocedural:
            return list(self.analysis.scopes)
        return [self.analysis.entry]


@dataclass(frozen=True)
class ModelArtifact:
    """A Skel model bound to the template library it will render.

    ``extra_names`` are context names injected outside the model (e.g.
    the per-item key of ``generate_per_item``) and therefore not debt.
    """

    model: object
    library: object
    template_names: tuple | None = None
    extra_names: frozenset = frozenset()


__all__ = ["LintContext", "SourceArtifact", "ModelArtifact", "FunctionArtifact"]
