"""FAIR1xx — dataflow-graph rules.

:meth:`~repro.dataflow.graph.DataflowGraph.validate` already raises on a
broken graph at *run* time; these rules surface the same classes of
defect as findings at *lint* time, so a campaign whose workflow graph
cannot run is rejected before submission rather than mid-allocation.
"""

from __future__ import annotations

import networkx as nx

from repro.lint.findings import Severity
from repro.lint.rules import rule


@rule(
    "FAIR101",
    Severity.ERROR,
    target="graph",
    title="dataflow graph has a cycle",
    rationale="A cyclic graph (without allow_cycles) deadlocks the "
    "round-based run loop; every buffered item upstream of the cycle is "
    "lost work.",
)
def dataflow_cycle(graph, ctx):
    if graph.allow_cycles:
        return
    digraph = nx.DiGraph()
    digraph.add_nodes_from(c.name for c in graph.components)
    digraph.add_edges_from((s, d) for s, _sp, d, _dp in graph.edges)
    if not nx.is_directed_acyclic_graph(digraph):
        cycle = nx.find_cycle(digraph)
        path = " -> ".join([edge[0] for edge in cycle] + [cycle[0][0]])
        yield (f"cycle: {path}", f"graph {graph.name!r}")


@rule(
    "FAIR102",
    Severity.ERROR,
    target="graph",
    title="component has unbound ports",
    rationale="An unbound input starves its component forever; an "
    "unbound output drops data silently.  Either way the graph stalls "
    "or lies after the allocation is granted.",
)
def unbound_ports(graph, ctx):
    for component in graph.components:
        if component.fully_bound():
            continue
        missing_in = sorted(set(component.input_names) - set(component.in_channels))
        missing_out = sorted(set(component.output_names) - set(component.out_channels))
        yield (
            f"unbound inputs {missing_in}, outputs {missing_out}",
            f"component {component.name!r}",
        )


@rule(
    "FAIR103",
    Severity.WARNING,
    target="graph",
    title="disconnected component",
    rationale="A component with ports but no edges to the rest of the "
    "graph is either dead code or a forgotten connection; both are debt.",
)
def disconnected_component(graph, ctx):
    if len(graph.components) < 2:
        return
    touched = set()
    for src, _sp, dst, _dp in graph.edges:
        touched.add(src)
        touched.add(dst)
    for component in graph.components:
        if component.name not in touched:
            yield (
                "participates in no connection",
                f"component {component.name!r}",
            )
