"""The ``Rule`` protocol and the rule registry.

A rule is a pure static check over one analyzer *target* — a campaign
manifest, a Skel model, a dataflow graph, a described component, or a
piece of generated source.  Rules never execute anything: they read
metadata and emit :class:`~repro.lint.findings.Finding` objects.

Rule ids are stable and never reused.  The id bands group the catalog:

=========  ==============================================================
band       target
=========  ==============================================================
FAIR0xx    campaign structure (Campaign / SweepGroup / Sweep / manifest)
FAIR1xx    dataflow graphs
FAIR2xx    gauge debt (components vs. their declared tiers)
FAIR3xx    generated / analyzed source code
FAIR4xx    Skel models and template libraries
FAIR5xx    concurrency safety of worker functions
FAIR9xx    meta (suppression hygiene)
=========  ==============================================================
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.lint.findings import Finding, Severity

#: Valid analyzer targets a rule may bind to.
TARGETS = ("campaign", "manifest", "graph", "component", "source", "model", "function")


@runtime_checkable
class Rule(Protocol):
    """What the engine requires of a rule.

    Any object with these attributes and a ``check`` method participates;
    :class:`FunctionRule` is the stock implementation the ``@rule``
    decorator produces.
    """

    rule_id: str
    severity: Severity
    target: str
    title: str
    rationale: str

    def check(self, subject, ctx) -> Iterable[Finding]: ...


class FunctionRule:
    """A rule backed by a generator function.

    The wrapped function receives ``(subject, ctx)`` and yields findings
    in any convenient shape: a plain message string, a ``(message,
    location)`` pair, a ``(message, location, severity)`` triple for
    occurrences that deviate from the rule's default severity, or a
    ready-made :class:`Finding`.
    """

    def __init__(self, rule_id, severity, target, title, rationale, fn):
        self.rule_id = rule_id
        self.severity = severity
        self.target = target
        self.title = title
        self.rationale = rationale
        self._fn = fn

    def check(self, subject, ctx) -> Iterable[Finding]:
        subject_name = getattr(ctx, "subject_name", "") or ""
        for item in self._fn(subject, ctx):
            if isinstance(item, Finding):
                yield item
                continue
            location, severity = "", self.severity
            if isinstance(item, tuple):
                message = item[0]
                if len(item) > 1:
                    location = item[1]
                if len(item) > 2:
                    severity = item[2]
            else:
                message = item
            yield Finding(
                rule_id=self.rule_id,
                severity=severity,
                message=message,
                subject=subject_name,
                location=location,
            )

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"FunctionRule({self.rule_id}, {self.target}, {self.severity.label})"


class RuleRegistry:
    """Rule ids → rules, with per-target views and a documentation catalog."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.target not in TARGETS:
            raise ValueError(
                f"rule {rule.rule_id}: unknown target {rule.target!r}; "
                f"expected one of {TARGETS}"
            )
        if rule.rule_id in self._rules:
            raise ValueError(f"duplicate rule id {rule.rule_id!r}")
        self._rules[rule.rule_id] = rule
        return rule

    def rule(self, rule_id, severity, target, title, rationale=""):
        """Decorator: register a generator function as a :class:`FunctionRule`."""

        def decorate(fn):
            self.register(
                FunctionRule(
                    rule_id=rule_id,
                    severity=severity,
                    target=target,
                    title=title,
                    rationale=rationale or (fn.__doc__ or "").strip(),
                    fn=fn,
                )
            )
            return fn

        return decorate

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(
                f"unknown rule id {rule_id!r}; known: {self.ids()}"
            ) from None

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def ids(self) -> list[str]:
        return sorted(self._rules)

    def for_target(self, target: str) -> list[Rule]:
        """Rules bound to ``target``, in rule-id order."""
        if target not in TARGETS:
            raise ValueError(f"unknown target {target!r}; expected one of {TARGETS}")
        return [self._rules[i] for i in self.ids() if self._rules[i].target == target]

    def catalog(self) -> list[dict]:
        """One row per rule — feeds ``--list-rules`` and the SARIF tool block."""
        return [
            {
                "id": rule.rule_id,
                "severity": rule.severity.label,
                "target": rule.target,
                "title": rule.title,
                "rationale": rule.rationale,
            }
            for rule in (self._rules[i] for i in self.ids())
        ]


#: The default registry every shipped analyzer registers into.
REGISTRY = RuleRegistry()

#: Module-level decorator bound to the default registry.
rule = REGISTRY.rule
