"""Findings: the machine-readable output unit of ``repro.lint``.

A :class:`Finding` is one detected piece of FAIR debt — a campaign,
component, or generated file whose metadata promises something its
substance does not deliver.  Findings carry a stable rule id and a
severity tier so downstream tooling (CI gates, the ``savanna.drive``
pre-run hook, SARIF consumers) can act on them without parsing prose.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class Severity(enum.IntEnum):
    """Finding severity tiers; higher value = more severe."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse ``'error'`` / ``'warn'`` / ``'warning'`` / ``'info'``."""
        normalized = str(text).strip().upper()
        if normalized == "WARN":
            normalized = "WARNING"
        try:
            return cls[normalized]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.label for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One piece of detected FAIR debt.

    Parameters
    ----------
    rule_id:
        Stable identifier (``FAIR001``…); never reused across rules.
    severity:
        :class:`Severity` tier of this occurrence (rules may downgrade
        their default severity for borderline cases).
    message:
        Human-readable statement of what is wrong and why it matters.
    subject:
        The analyzed artifact: a campaign/component/graph name or a file
        path.
    location:
        Finer position inside the subject (``"group 'features'"``,
        ``"line 12"``); empty when the subject is the location.
    """

    rule_id: str
    severity: Severity
    message: str
    subject: str = ""
    location: str = ""

    def format(self) -> str:
        where = self.subject
        if self.location:
            where = f"{where}: {self.location}" if where else self.location
        prefix = f"{self.rule_id} [{self.severity.label}]"
        return f"{prefix} {where}: {self.message}" if where else f"{prefix} {self.message}"

    def sort_key(self) -> tuple:
        return (-int(self.severity), self.rule_id, self.subject, self.location, self.message)

    def to_dict(self) -> dict:
        """JSON-ready form (lint cache, campaign-directory persistence)."""
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.label,
            "message": self.message,
            "subject": self.subject,
            "location": self.location,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            rule_id=str(payload["rule_id"]),
            severity=Severity.parse(payload["severity"]),
            message=str(payload["message"]),
            subject=str(payload.get("subject", "")),
            location=str(payload.get("location", "")),
        )


@dataclass(frozen=True)
class LintReport:
    """An ordered collection of findings plus the suppressed remainder.

    Reports are immutable; :meth:`merged` combines reports from multiple
    analyzers or paths.  Findings are kept in deterministic order
    (severity-descending, then rule id / subject / location) so text and
    JSON output are stable across runs — a lint report is itself an
    artifact other machinery diffs.
    """

    findings: tuple = ()
    suppressed: tuple = ()

    @classmethod
    def of(cls, findings, suppress=()) -> "LintReport":
        """Build a report, routing suppressed rule ids aside."""
        kept, shelved = [], []
        for finding in findings:
            (shelved if finding.rule_id in suppress else kept).append(finding)
        kept.sort(key=Finding.sort_key)
        shelved.sort(key=Finding.sort_key)
        return cls(findings=tuple(kept), suppressed=tuple(shelved))

    def merged(self, other: "LintReport") -> "LintReport":
        return LintReport(
            findings=tuple(
                sorted(self.findings + other.findings, key=Finding.sort_key)
            ),
            suppressed=tuple(
                sorted(self.suppressed + other.suppressed, key=Finding.sort_key)
            ),
        )

    def at_severity(self, severity: Severity) -> tuple:
        return tuple(f for f in self.findings if f.severity is severity)

    @property
    def errors(self) -> tuple:
        return self.at_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple:
        return self.at_severity(Severity.WARNING)

    @property
    def infos(self) -> tuple:
        return self.at_severity(Severity.INFO)

    def rule_ids(self) -> tuple:
        return tuple(sorted({f.rule_id for f in self.findings}))

    def counts(self) -> dict:
        """``{severity label: count}`` over the kept findings."""
        out = {s.label: 0 for s in Severity}
        for finding in self.findings:
            out[finding.severity.label] += 1
        return out

    def exceeds(self, threshold: Severity) -> bool:
        """True if any kept finding is at or above ``threshold``."""
        return any(f.severity >= threshold for f in self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def __bool__(self) -> bool:
        return bool(self.findings)

    def to_dict(self) -> dict:
        """JSON-ready form; :meth:`from_dict` round-trips it exactly."""
        return {
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LintReport":
        return cls(
            findings=tuple(Finding.from_dict(f) for f in payload.get("findings", ())),
            suppressed=tuple(Finding.from_dict(f) for f in payload.get("suppressed", ())),
        )


def relocate(finding: Finding, subject: str) -> Finding:
    """A copy of ``finding`` re-anchored to ``subject`` (path prefixing)."""
    return replace(finding, subject=subject)


__all__ = ["Severity", "Finding", "LintReport", "relocate"]
