"""Parameter types for campaign sweeps.

Parameters "are scattered across the application domain ..., middleware
..., and the underlying distributed system" (§II-C); composition treats
them uniformly: a parameter is a name plus an ordered list of values.
:class:`DerivedParameter` covers values computed from other parameters in
the same run configuration (a first step toward the customizability
gauge's RELATED tier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


class ParameterError(ValueError):
    """Invalid parameter definition."""


@dataclass(frozen=True)
class SweepParameter:
    """An explicit list of values for one parameter."""

    name: str
    values: tuple

    def __init__(self, name: str, values):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", tuple(values))
        if not self.name:
            raise ParameterError("parameter name must be non-empty")
        if not self.values:
            raise ParameterError(f"parameter {name!r} has no values")

    def __len__(self) -> int:
        return len(self.values)


class RangeParameter(SweepParameter):
    """Integer range parameter, ``start <= v < stop`` stepping ``step``."""

    def __init__(self, name: str, start: int, stop: int, step: int = 1):
        if step <= 0:
            raise ParameterError(f"step must be > 0, got {step}")
        if stop <= start:
            raise ParameterError(f"empty range: start={start}, stop={stop}")
        super().__init__(name, range(start, stop, step))


class LinspaceParameter(SweepParameter):
    """``count`` evenly spaced floats over ``[lo, hi]``."""

    def __init__(self, name: str, lo: float, hi: float, count: int):
        if count < 2:
            raise ParameterError(f"count must be >= 2, got {count}")
        if hi <= lo:
            raise ParameterError(f"empty interval: lo={lo}, hi={hi}")
        super().__init__(name, (float(v) for v in np.linspace(lo, hi, count)))


class LogspaceParameter(SweepParameter):
    """``count`` log-spaced values over ``[lo, hi]`` (HPC sweeps — buffer
    sizes, process counts, message sizes — are usually log-scaled)."""

    def __init__(self, name: str, lo: float, hi: float, count: int, as_int: bool = False):
        if count < 2:
            raise ParameterError(f"count must be >= 2, got {count}")
        if lo <= 0 or hi <= lo:
            raise ParameterError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
        values = np.logspace(np.log10(lo), np.log10(hi), count)
        if as_int:
            ints = sorted({int(round(v)) for v in values})
            super().__init__(name, ints)
        else:
            super().__init__(name, (float(v) for v in values))


@dataclass(frozen=True)
class DerivedParameter:
    """A parameter computed from the other values of a run configuration.

    ``fn`` receives the partially built configuration dict and returns the
    value.  Derived parameters are evaluated after all swept parameters,
    in declaration order.
    """

    name: str
    fn: Callable[[dict], object]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("parameter name must be non-empty")
        if not callable(self.fn):
            raise ParameterError(f"derived parameter {self.name!r}: fn must be callable")
