"""The codesign campaign catalog (§II-C).

"The output of a codesign campaign is a catalog that describes the impact
of different parameters on different output metrics."  The catalog
collects per-run metrics, answers objective queries (best configuration,
Pareto front over competing objectives), and quantifies per-parameter
impact — the machine-queriable study product the paper argues for.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.cheetah.objectives import Objective


@dataclass(frozen=True)
class RunRecord:
    """One run's identity, swept parameters, and measured metrics."""

    run_id: str
    parameters: dict
    metrics: dict

    def metric(self, name: str) -> float:
        try:
            return float(self.metrics[name])
        except KeyError:
            raise KeyError(
                f"run {self.run_id!r} has no metric {name!r}; "
                f"known: {sorted(self.metrics)}"
            ) from None


class CampaignCatalog:
    """Collected results of a codesign campaign, with query interfaces."""

    def __init__(self, campaign: str):
        self.campaign = campaign
        self._records: dict[str, RunRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def add(self, run_id: str, parameters: dict, metrics: dict) -> RunRecord:
        if run_id in self._records:
            raise ValueError(f"duplicate run_id {run_id!r} in catalog")
        record = RunRecord(run_id=run_id, parameters=dict(parameters), metrics=dict(metrics))
        self._records[run_id] = record
        return record

    def records(self) -> list[RunRecord]:
        return [self._records[k] for k in sorted(self._records)]

    def metric_names(self) -> set:
        names: set[str] = set()
        for r in self._records.values():
            names |= set(r.metrics)
        return names

    # -- objective queries -----------------------------------------------------

    def best(self, objective: Objective) -> RunRecord:
        """The single best run under ``objective``."""
        records = self.records()
        if not records:
            raise ValueError("catalog is empty")
        best = records[0]
        for record in records[1:]:
            if objective.better(record.metric(objective.metric), best.metric(objective.metric)):
                best = record
        return best

    def rank(self, objective: Objective, k: int | None = None) -> list[RunRecord]:
        """Runs ordered best-first under ``objective``."""
        records = sorted(
            self.records(),
            key=lambda r: r.metric(objective.metric),
            reverse=objective.direction.value == "maximize",
        )
        return records if k is None else records[:k]

    def pareto_front(self, objectives) -> list[RunRecord]:
        """Non-dominated runs under multiple competing objectives.

        A run is dominated if some other run is at least as good on every
        objective and strictly better on one.
        """
        objectives = list(objectives)
        if not objectives:
            raise ValueError("need at least one objective")
        records = self.records()

        def dominates(a: RunRecord, b: RunRecord) -> bool:
            at_least_as_good = all(
                not o.better(b.metric(o.metric), a.metric(o.metric)) for o in objectives
            )
            strictly_better = any(
                o.better(a.metric(o.metric), b.metric(o.metric)) for o in objectives
            )
            return at_least_as_good and strictly_better

        return [
            r for r in records if not any(dominates(other, r) for other in records)
        ]

    # -- parameter impact --------------------------------------------------------

    def parameter_impact(self, parameter: str, metric: str) -> dict:
        """Impact of one swept parameter on one metric.

        Groups runs by the parameter's value and reports the per-value
        metric mean, plus ``effect``: the spread of group means divided by
        the grand mean (0 = the parameter does not matter).
        """
        groups: dict = {}
        for record in self._records.values():
            if parameter not in record.parameters or metric not in record.metrics:
                continue
            groups.setdefault(record.parameters[parameter], []).append(
                record.metric(metric)
            )
        if not groups:
            raise ValueError(
                f"no runs carry both parameter {parameter!r} and metric {metric!r}"
            )
        means = {value: float(np.mean(vals)) for value, vals in groups.items()}
        grand = float(np.mean([v for vals in groups.values() for v in vals]))
        spread = max(means.values()) - min(means.values())
        return {
            "parameter": parameter,
            "metric": metric,
            "group_means": means,
            "grand_mean": grand,
            "effect": spread / abs(grand) if grand != 0 else float("inf"),
        }

    def impact_ranking(self, metric: str) -> list[tuple[str, float]]:
        """Parameters ordered by their effect on ``metric`` (largest first)."""
        parameters: set[str] = set()
        for record in self._records.values():
            parameters |= set(record.parameters)
        rows = []
        for parameter in sorted(parameters):
            try:
                impact = self.parameter_impact(parameter, metric)
            except ValueError:
                continue
            rows.append((parameter, impact["effect"]))
        rows.sort(key=lambda pair: -pair[1])
        return rows

    def to_table(self, metrics=None) -> str:
        """Render the catalog as an aligned text table (sorted by run_id)."""
        from repro._util import format_table

        records = self.records()
        if not records:
            return f"campaign {self.campaign!r}: (empty catalog)"
        params = sorted({k for r in records for k in r.parameters})
        metrics = sorted(self.metric_names()) if metrics is None else list(metrics)
        headers = ["run_id", *params, *metrics]
        rows = []
        for r in records:
            rows.append(
                [r.run_id]
                + [r.parameters.get(p, "") for p in params]
                + [r.metrics.get(m, "") for m in metrics]
            )
        return format_table(headers, rows)

    # -- persistence -----------------------------------------------------------------

    def to_json(self) -> str:
        doc = {
            "campaign": self.campaign,
            "runs": [
                {"run_id": r.run_id, "parameters": r.parameters, "metrics": r.metrics}
                for r in self.records()
            ],
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignCatalog":
        doc = json.loads(text)
        catalog = cls(doc["campaign"])
        for run in doc["runs"]:
            catalog.add(run["run_id"], run["parameters"], run["metrics"])
        return catalog
