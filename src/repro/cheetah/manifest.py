"""The campaign manifest — Cheetah↔Savanna interoperability layer.

"Cheetah and Savanna communicate via an interoperability layer designed
to represent an abstract manifest of the campaign.  This layer implements
a JSON schema to describe the full campaign" (§IV).  The manifest is the
boundary that lets other workflow tools be imported as executors: anything
that can read this JSON can run the campaign.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro._util import check_positive

MANIFEST_SCHEMA_VERSION = "1.0"


@dataclass(frozen=True)
class RunSpec:
    """One experiment in the campaign: an id, its parameters, its resources."""

    run_id: str
    group: str
    parameters: dict
    nodes: int = 1

    def __post_init__(self) -> None:
        check_positive("nodes", self.nodes)
        if not self.run_id:
            raise ValueError("run_id must be non-empty")


@dataclass(frozen=True)
class CampaignManifest:
    """Abstract, executor-independent description of a full campaign."""

    campaign: str
    app: str
    runs: tuple  # tuple[RunSpec, ...]
    executable: str = ""
    objective: str = ""
    groups: tuple = ()  # tuple[dict, ...] with name/nodes/walltime/runs
    schema_version: str = MANIFEST_SCHEMA_VERSION
    #: Free-form campaign metadata (e.g. ``{"lint": {"suppress": [...]}}``);
    #: round-trips through the JSON interop format.
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        ids = [r.run_id for r in self.runs]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate run_ids in manifest")

    def group_meta(self, name: str) -> dict:
        for g in self.groups:
            if g["name"] == name:
                return g
        raise KeyError(name)

    def runs_in_group(self, name: str) -> tuple:
        return tuple(r for r in self.runs if r.group == name)

    def __len__(self) -> int:
        return len(self.runs)


def manifest_to_json(manifest: CampaignManifest) -> str:
    """Serialize to the JSON interop format."""
    doc = {
        "schema_version": manifest.schema_version,
        "campaign": manifest.campaign,
        "app": manifest.app,
        "executable": manifest.executable,
        "objective": manifest.objective,
        "metadata": manifest.metadata,
        "groups": list(manifest.groups),
        "runs": [
            {
                "run_id": r.run_id,
                "group": r.group,
                "parameters": r.parameters,
                "nodes": r.nodes,
            }
            for r in manifest.runs
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def manifest_from_json(text: str) -> CampaignManifest:
    """Parse the JSON interop format; validates schema version and run ids."""
    doc = json.loads(text)
    version = doc.get("schema_version")
    if version != MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported manifest schema version {version!r}; "
            f"expected {MANIFEST_SCHEMA_VERSION!r}"
        )
    runs = tuple(
        RunSpec(
            run_id=r["run_id"],
            group=r["group"],
            parameters=dict(r["parameters"]),
            nodes=int(r.get("nodes", 1)),
        )
        for r in doc["runs"]
    )
    return CampaignManifest(
        campaign=doc["campaign"],
        app=doc["app"],
        executable=doc.get("executable", ""),
        objective=doc.get("objective", ""),
        groups=tuple(dict(g) for g in doc.get("groups", ())),
        runs=runs,
        metadata=dict(doc.get("metadata", {})),
    )
