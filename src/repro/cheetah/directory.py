"""The campaign directory schema — Cheetah's on-disk end point.

"The composition engine further adopts its own directory schema to
represent a campaign end-point.  The directory hierarchy represents
simulation runs, and campaign metadata is hidden from the user" (§IV).

Layout::

    <root>/<campaign>/
      .cheetah/manifest.json        # hidden campaign metadata
      .cheetah/status.json          # per-run status (the resume record)
      .cheetah/report.json          # trace analytics (drive report=True)
      <group>/run-NNNN/params.json  # one directory per run
      <group>/run-NNNN/result.json  # real-run outcome (real backends)

Status is the machine-actionable face of "users may simply re-submit a
partially completed SweepGroup ... to continue execution" (§V-D).

**Durability.** Every ``.cheetah/`` metadata file and per-run record is
written atomically (temp file + fsync + ``os.replace`` — see
:func:`repro._util.atomic_write_text`), so a driver killed mid-write can
never leave torn JSON behind, and the read-modify-write cycles on
``status.json`` are serialized per directory (:func:`repro._util.path_lock`)
so concurrent campaign-service submissions cannot drop each other's
status transitions.  When a campaign-result store
(:mod:`repro.store`) has been materialized at ``.cheetah/store.sqlite``,
status updates and reports are mirrored into it and
:meth:`CampaignDirectory.read_run_result` falls back to it — the store
is the durable record at scale, the JSON files the human-readable face.
"""

from __future__ import annotations

import enum
import json
from pathlib import Path

from repro._util import (
    atomic_write_text,
    dumps_tagged,
    loads_tagged,
    path_lock,
    tagged_default,
)
from repro.cheetah.manifest import CampaignManifest, manifest_from_json, manifest_to_json


def _jsonable(value):
    """json.dumps ``default=`` hook: lossless tagged encoding.

    Known non-JSON types (numpy, complex, bytes, set, Path, datetime)
    are encoded with an explicit ``__repro__`` tag and round-trip
    exactly; anything else raises
    :class:`repro._util.UnserializableValueError` instead of silently
    persisting a non-round-trippable ``repr`` string into the record.
    """
    return tagged_default(value)


class RunStatus(enum.Enum):
    """Lifecycle of a run within a campaign directory."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class CampaignDirectory:
    """Create/read the campaign end-point directory for a manifest."""

    METADATA_DIR = ".cheetah"

    def __init__(self, root: Path, manifest: CampaignManifest):
        self.root = Path(root) / manifest.campaign
        self.manifest = manifest
        self._run_ids: frozenset | None = None

    # -- creation ------------------------------------------------------------

    def create(self) -> Path:
        """Materialize the directory schema; idempotent for same manifest."""
        meta = self.root / self.METADATA_DIR
        meta.mkdir(parents=True, exist_ok=True)
        manifest_path = meta / "manifest.json"
        text = manifest_to_json(self.manifest)
        if manifest_path.exists() and manifest_path.read_text() != text:
            raise RuntimeError(
                f"campaign directory {self.root} already holds a different manifest"
            )
        atomic_write_text(manifest_path, text)
        for run in self.manifest.runs:
            run_dir = self.root / run.run_id
            run_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                run_dir / "params.json",
                dumps_tagged(run.parameters, indent=2, sort_keys=True),
            )
        status_path = meta / "status.json"
        with path_lock(status_path):
            if not status_path.exists():
                self._write_status(
                    {run.run_id: RunStatus.PENDING.value for run in self.manifest.runs}
                )
        return self.root

    @classmethod
    def open(cls, campaign_root: Path) -> "CampaignDirectory":
        """Open an existing campaign end point from its root directory."""
        campaign_root = Path(campaign_root)
        manifest_path = campaign_root / cls.METADATA_DIR / "manifest.json"
        manifest = manifest_from_json(manifest_path.read_text())
        obj = cls.__new__(cls)
        obj.root = campaign_root
        obj.manifest = manifest
        obj._run_ids = None
        return obj

    # -- status --------------------------------------------------------------

    def _status_path(self) -> Path:
        return self.root / self.METADATA_DIR / "status.json"

    def _write_status(self, status: dict) -> None:
        atomic_write_text(
            self._status_path(), json.dumps(status, indent=2, sort_keys=True)
        )

    def read_status(self) -> dict:
        """``{run_id: RunStatus}`` for every run."""
        raw = json.loads(self._status_path().read_text())
        return {run_id: RunStatus(value) for run_id, value in raw.items()}

    def set_status(self, run_id: str, status: RunStatus) -> None:
        """Record one run's status (read-modify-write, locked per directory)."""
        self.update_status({run_id: status})

    def update_status(self, updates: dict) -> None:
        """Batch status update ``{run_id: RunStatus}``.

        The read-modify-write cycle runs under the per-directory lock
        (:func:`repro._util.path_lock`), so two concurrent submissions
        sharing a campaign directory serialize instead of silently
        dropping each other's transitions; the final write is atomic.
        When the campaign's result store has been materialized, the
        statuses are mirrored into it as well.
        """
        with path_lock(self._status_path()):
            current = json.loads(self._status_path().read_text())
            for run_id, status in updates.items():
                if run_id not in current:
                    raise KeyError(f"unknown run_id {run_id!r}")
                current[run_id] = status.value
            self._write_status(current)
        self._mirror_status(updates)

    def pending_runs(self, group: str | None = None) -> tuple:
        """RunSpecs not yet DONE (FAILED counts as pending for resubmission)."""
        status = self.read_status()
        out = []
        for run in self.manifest.runs:
            if group is not None and run.group != group:
                continue
            if status[run.run_id] is not RunStatus.DONE:
                out.append(run)
        return tuple(out)

    def runs_where(self, status: RunStatus | None = None, **param_filters) -> tuple:
        """Query runs by status and/or exact parameter values (§IV: "an API
        to submit a campaign and query its status").

        Example: ``directory.runs_where(status=RunStatus.FAILED, feature=7)``.
        """
        statuses = self.read_status()
        out = []
        for run in self.manifest.runs:
            if status is not None and statuses[run.run_id] is not status:
                continue
            if any(
                key not in run.parameters or run.parameters[key] != value
                for key, value in param_filters.items()
            ):
                continue
            out.append(run)
        return tuple(out)

    def summary(self) -> dict:
        """Counts by status — the campaign query API of §IV."""
        counts: dict[str, int] = {s.value: 0 for s in RunStatus}
        for status in self.read_status().values():
            counts[status.value] += 1
        return counts

    def run_dir(self, run_id: str) -> Path:
        return self.root / run_id

    @property
    def run_ids(self) -> frozenset:
        """The manifest's run ids, cached (membership checks are O(1)
        even for very large campaigns)."""
        if self._run_ids is None:
            self._run_ids = frozenset(run.run_id for run in self.manifest.runs)
        return self._run_ids

    # -- real-run outcomes ---------------------------------------------------

    def write_run_result(self, run_id: str, payload: dict) -> Path:
        """Persist one really-executed run's outcome as ``<run>/result.json``.

        ``payload`` is the run's outcome record (status, value, error +
        traceback, elapsed, seed, attempts — whatever the real executor
        reports).  The write is atomic, and values outside plain JSON
        are encoded losslessly with the tagged form (numpy, complex,
        bytes, set, Path, datetime); a value that cannot round-trip
        raises :class:`repro._util.UnserializableValueError` instead of
        corrupting the record.

        This is the *human-inspection export*: at scale the drive
        records outcomes into the campaign store
        (:meth:`record_results` / :mod:`repro.store`) and writes these
        JSON files only on request.
        """
        if run_id not in self.run_ids:
            raise KeyError(f"unknown run_id {run_id!r}")
        path = self.run_dir(run_id) / "result.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            path,
            json.dumps(payload, indent=2, sort_keys=True, default=_jsonable) + "\n",
        )
        return path

    def read_run_result(self, run_id: str) -> dict | None:
        """The persisted outcome of one run (``None`` if never recorded).

        Prefers the ``result.json`` export when present (tagged values
        decode back to their original types), and otherwise falls back
        to the campaign store at ``.cheetah/store.sqlite`` — so callers
        keep one read API whether outcomes were exported as JSON or
        recorded durably in SQL.
        """
        path = self.run_dir(run_id) / "result.json"
        if path.exists():
            return loads_tagged(path.read_text())
        if self.store_path().exists():
            with self.open_store() as store:
                return store.read_run_result(self.manifest.campaign, run_id)
        return None

    # -- result store --------------------------------------------------------

    def store_path(self) -> Path:
        """Where this campaign's SQL-backed result store lives."""
        return self.root / self.METADATA_DIR / "store.sqlite"

    def open_store(self):
        """Open (creating on first use) the campaign's result store.

        Returns a :class:`repro.store.CampaignStore` bound to
        ``.cheetah/store.sqlite`` with this campaign's manifest already
        ingested.  Use as a context manager; the store flushes its
        write-behind buffer and closes on exit.
        """
        from repro.store import CampaignStore  # lazy: repro.store imports us

        store = CampaignStore(self.store_path())
        store.ensure_campaign(self.manifest)
        return store

    def record_results(self, results: dict, json_export: bool = False) -> None:
        """Record really-executed run outcomes into the campaign store.

        ``results`` maps ``run_id`` to an outcome record (a
        :class:`~repro.savanna.realexec.LocalRunResult` or its dict
        form).  Outcomes land in ``.cheetah/store.sqlite`` via chunked
        bulk ingestion; ``json_export=True`` additionally writes the
        per-run ``result.json`` files for human inspection.  Interrupted
        runs are never recorded — they are pending, not outcomes.
        """
        with self.open_store() as store:
            store.record_run_results(self.manifest.campaign, results)
        if json_export:
            from dataclasses import asdict, is_dataclass

            for run_id, outcome in results.items():
                payload = asdict(outcome) if is_dataclass(outcome) else dict(outcome)
                if payload.get("status") != "interrupted":
                    self.write_run_result(run_id, payload)

    def _mirror_status(self, updates: dict) -> None:
        """Mirror status transitions into the store, when one exists."""
        if not self.store_path().exists():
            return
        with self.open_store() as store:
            store.set_statuses(self.manifest.campaign, updates)

    # -- performance reports -------------------------------------------------

    def _report_path(self) -> Path:
        return self.root / self.METADATA_DIR / "report.json"

    def write_report(self, reports: list) -> Path:
        """Merge campaign reports into ``.cheetah/report.json``.

        ``reports`` is a list of report dicts (or objects with
        ``to_dict()``, e.g. ``CampaignReport``) in the
        ``repro.observability.report/v1`` file format.  Reports are keyed
        by ``(campaign, group)`` — re-running a group replaces its entry,
        so the file always reflects the latest execution of each group.
        Returns the report path.
        """
        incoming = [r if isinstance(r, dict) else r.to_dict() for r in reports]
        path = self._report_path()
        with path_lock(path):
            existing: list = []
            schema = "repro.observability.report/v1"
            if path.exists():
                data = json.loads(path.read_text())
                existing = data.get("reports", [])
                schema = data.get("schema", schema)
            key = lambda r: (r.get("campaign"), r.get("group"))
            replaced = {key(r) for r in incoming}
            merged = [r for r in existing if key(r) not in replaced] + incoming
            atomic_write_text(
                path, json.dumps({"schema": schema, "reports": merged}, indent=1) + "\n"
            )
        if self.store_path().exists():
            with self.open_store() as store:
                store.record_reports(self.manifest.campaign, incoming)
        return path

    def read_report(self) -> list:
        """Report dicts from ``.cheetah/report.json`` (empty if never written)."""
        path = self._report_path()
        if not path.exists():
            return []
        return json.loads(path.read_text()).get("reports", [])

    def _lint_path(self) -> Path:
        return self.root / self.METADATA_DIR / "lint.json"

    def write_lint_report(self, report) -> Path:
        """Persist a lint verdict into ``.cheetah/lint.json``.

        ``report`` is a :class:`repro.lint.LintReport` (or its
        ``to_dict()`` form).  The drive writes the merged manifest +
        ``app_fn`` report here on every gated execution, so the campaign
        end point carries the analysis that admitted it — provenance for
        the lint gate, next to the run results it vouched for.
        """
        payload = report if isinstance(report, dict) else report.to_dict()
        path = self._lint_path()
        atomic_write_text(
            path,
            json.dumps(
                {
                    "schema": "repro.lint.report/v1",
                    "campaign": self.manifest.campaign,
                    "report": payload,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        return path

    def read_lint_report(self):
        """The persisted lint verdict as a :class:`repro.lint.LintReport`,
        or ``None`` if the campaign was never linted (or ``lint=False``)."""
        path = self._lint_path()
        if not path.exists():
            return None
        # Imported lazily: repro.lint imports this module at load time.
        from repro.lint.findings import LintReport

        data = json.loads(path.read_text())
        return LintReport.from_dict(data.get("report", {}))


def resolve_campaign_dir(
    root, manifest: CampaignManifest | None = None, create: bool = False
) -> CampaignDirectory:
    """Resolve ``root`` to a :class:`CampaignDirectory` — the single
    resolution rule shared by ``savanna.drive``, the experiment harness,
    and the ``repro.lint`` CLI (so resume and pre-run lint always look at
    the same end point).

    ``root`` may be either

    - a campaign end point itself (a directory holding
      ``.cheetah/manifest.json``), or
    - a parent directory, with ``manifest`` naming the child end point
      (``root/<manifest.campaign>``), which is opened if present and
      created when ``create=True``.

    Raises ``FileNotFoundError`` when nothing resolves, and ``ValueError``
    when an existing end point belongs to a different campaign than the
    ``manifest`` passed in.
    """
    root = Path(root)

    def _open_checked(path: Path) -> CampaignDirectory:
        directory = CampaignDirectory.open(path)
        if manifest is not None and directory.manifest.campaign != manifest.campaign:
            raise ValueError(
                f"campaign directory {path} holds campaign "
                f"{directory.manifest.campaign!r}, expected {manifest.campaign!r}"
            )
        return directory

    if (root / CampaignDirectory.METADATA_DIR / "manifest.json").is_file():
        return _open_checked(root)
    if manifest is None:
        raise FileNotFoundError(
            f"{root} is not a campaign directory (no "
            f"{CampaignDirectory.METADATA_DIR}/manifest.json) and no manifest "
            "was given to locate one beneath it"
        )
    child = root / manifest.campaign
    if (child / CampaignDirectory.METADATA_DIR / "manifest.json").is_file():
        return _open_checked(child)
    if not create:
        raise FileNotFoundError(
            f"no campaign directory at {root} or {child} "
            "(pass create=True to materialize one)"
        )
    directory = CampaignDirectory(root, manifest)
    directory.create()
    return directory
