"""The campaign directory schema — Cheetah's on-disk end point.

"The composition engine further adopts its own directory schema to
represent a campaign end-point.  The directory hierarchy represents
simulation runs, and campaign metadata is hidden from the user" (§IV).

Layout::

    <root>/<campaign>/
      .cheetah/manifest.json        # hidden campaign metadata
      .cheetah/status.json          # per-run status (the resume record)
      .cheetah/report.json          # trace analytics (drive report=True)
      <group>/run-NNNN/params.json  # one directory per run
      <group>/run-NNNN/result.json  # real-run outcome (real backends)

Status is the machine-actionable face of "users may simply re-submit a
partially completed SweepGroup ... to continue execution" (§V-D).
"""

from __future__ import annotations

import enum
import json
from pathlib import Path

from repro.cheetah.manifest import CampaignManifest, manifest_from_json, manifest_to_json


def _jsonable(value):
    """json.dumps ``default=`` hook: numpy-aware, never raises."""
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        try:
            return tolist()
        except Exception:  # noqa: BLE001 - fall through to repr
            pass
    return repr(value)


class RunStatus(enum.Enum):
    """Lifecycle of a run within a campaign directory."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class CampaignDirectory:
    """Create/read the campaign end-point directory for a manifest."""

    METADATA_DIR = ".cheetah"

    def __init__(self, root: Path, manifest: CampaignManifest):
        self.root = Path(root) / manifest.campaign
        self.manifest = manifest

    # -- creation ------------------------------------------------------------

    def create(self) -> Path:
        """Materialize the directory schema; idempotent for same manifest."""
        meta = self.root / self.METADATA_DIR
        meta.mkdir(parents=True, exist_ok=True)
        manifest_path = meta / "manifest.json"
        text = manifest_to_json(self.manifest)
        if manifest_path.exists() and manifest_path.read_text() != text:
            raise RuntimeError(
                f"campaign directory {self.root} already holds a different manifest"
            )
        manifest_path.write_text(text)
        for run in self.manifest.runs:
            run_dir = self.root / run.run_id
            run_dir.mkdir(parents=True, exist_ok=True)
            (run_dir / "params.json").write_text(
                json.dumps(run.parameters, indent=2, sort_keys=True)
            )
        status_path = meta / "status.json"
        if not status_path.exists():
            self._write_status(
                {run.run_id: RunStatus.PENDING.value for run in self.manifest.runs}
            )
        return self.root

    @classmethod
    def open(cls, campaign_root: Path) -> "CampaignDirectory":
        """Open an existing campaign end point from its root directory."""
        campaign_root = Path(campaign_root)
        manifest_path = campaign_root / cls.METADATA_DIR / "manifest.json"
        manifest = manifest_from_json(manifest_path.read_text())
        obj = cls.__new__(cls)
        obj.root = campaign_root
        obj.manifest = manifest
        return obj

    # -- status --------------------------------------------------------------

    def _status_path(self) -> Path:
        return self.root / self.METADATA_DIR / "status.json"

    def _write_status(self, status: dict) -> None:
        self._status_path().write_text(json.dumps(status, indent=2, sort_keys=True))

    def read_status(self) -> dict:
        """``{run_id: RunStatus}`` for every run."""
        raw = json.loads(self._status_path().read_text())
        return {run_id: RunStatus(value) for run_id, value in raw.items()}

    def set_status(self, run_id: str, status: RunStatus) -> None:
        current = json.loads(self._status_path().read_text())
        if run_id not in current:
            raise KeyError(f"unknown run_id {run_id!r}")
        current[run_id] = status.value
        self._write_status(current)

    def update_status(self, updates: dict) -> None:
        """Batch status update ``{run_id: RunStatus}``."""
        current = json.loads(self._status_path().read_text())
        for run_id, status in updates.items():
            if run_id not in current:
                raise KeyError(f"unknown run_id {run_id!r}")
            current[run_id] = status.value
        self._write_status(current)

    def pending_runs(self, group: str | None = None) -> tuple:
        """RunSpecs not yet DONE (FAILED counts as pending for resubmission)."""
        status = self.read_status()
        out = []
        for run in self.manifest.runs:
            if group is not None and run.group != group:
                continue
            if status[run.run_id] is not RunStatus.DONE:
                out.append(run)
        return tuple(out)

    def runs_where(self, status: RunStatus | None = None, **param_filters) -> tuple:
        """Query runs by status and/or exact parameter values (§IV: "an API
        to submit a campaign and query its status").

        Example: ``directory.runs_where(status=RunStatus.FAILED, feature=7)``.
        """
        statuses = self.read_status()
        out = []
        for run in self.manifest.runs:
            if status is not None and statuses[run.run_id] is not status:
                continue
            if any(
                key not in run.parameters or run.parameters[key] != value
                for key, value in param_filters.items()
            ):
                continue
            out.append(run)
        return tuple(out)

    def summary(self) -> dict:
        """Counts by status — the campaign query API of §IV."""
        counts: dict[str, int] = {s.value: 0 for s in RunStatus}
        for status in self.read_status().values():
            counts[status.value] += 1
        return counts

    def run_dir(self, run_id: str) -> Path:
        return self.root / run_id

    # -- real-run outcomes ---------------------------------------------------

    def write_run_result(self, run_id: str, payload: dict) -> Path:
        """Persist one really-executed run's outcome as ``<run>/result.json``.

        ``payload`` is the run's outcome record (status, value, error +
        traceback, elapsed, seed, attempts — whatever the real executor
        reports).  Values that are not JSON-serializable are coerced:
        anything with ``tolist()`` (numpy arrays/scalars) is listified,
        everything else falls back to ``repr`` — the run directory must
        always hold *some* durable record of what came back.
        """
        if run_id not in {run.run_id for run in self.manifest.runs}:
            raise KeyError(f"unknown run_id {run_id!r}")
        path = self.run_dir(run_id) / "result.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=_jsonable) + "\n"
        )
        return path

    def read_run_result(self, run_id: str) -> dict | None:
        """The persisted outcome of one run (``None`` if never written)."""
        path = self.run_dir(run_id) / "result.json"
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # -- performance reports -------------------------------------------------

    def _report_path(self) -> Path:
        return self.root / self.METADATA_DIR / "report.json"

    def write_report(self, reports: list) -> Path:
        """Merge campaign reports into ``.cheetah/report.json``.

        ``reports`` is a list of report dicts (or objects with
        ``to_dict()``, e.g. ``CampaignReport``) in the
        ``repro.observability.report/v1`` file format.  Reports are keyed
        by ``(campaign, group)`` — re-running a group replaces its entry,
        so the file always reflects the latest execution of each group.
        Returns the report path.
        """
        incoming = [r if isinstance(r, dict) else r.to_dict() for r in reports]
        path = self._report_path()
        existing: list = []
        schema = "repro.observability.report/v1"
        if path.exists():
            data = json.loads(path.read_text())
            existing = data.get("reports", [])
            schema = data.get("schema", schema)
        key = lambda r: (r.get("campaign"), r.get("group"))
        replaced = {key(r) for r in incoming}
        merged = [r for r in existing if key(r) not in replaced] + incoming
        path.write_text(json.dumps({"schema": schema, "reports": merged}, indent=1) + "\n")
        return path

    def read_report(self) -> list:
        """Report dicts from ``.cheetah/report.json`` (empty if never written)."""
        path = self._report_path()
        if not path.exists():
            return []
        return json.loads(path.read_text()).get("reports", [])

    def _lint_path(self) -> Path:
        return self.root / self.METADATA_DIR / "lint.json"

    def write_lint_report(self, report) -> Path:
        """Persist a lint verdict into ``.cheetah/lint.json``.

        ``report`` is a :class:`repro.lint.LintReport` (or its
        ``to_dict()`` form).  The drive writes the merged manifest +
        ``app_fn`` report here on every gated execution, so the campaign
        end point carries the analysis that admitted it — provenance for
        the lint gate, next to the run results it vouched for.
        """
        payload = report if isinstance(report, dict) else report.to_dict()
        path = self._lint_path()
        path.write_text(
            json.dumps(
                {
                    "schema": "repro.lint.report/v1",
                    "campaign": self.manifest.campaign,
                    "report": payload,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        return path

    def read_lint_report(self):
        """The persisted lint verdict as a :class:`repro.lint.LintReport`,
        or ``None`` if the campaign was never linted (or ``lint=False``)."""
        path = self._lint_path()
        if not path.exists():
            return None
        # Imported lazily: repro.lint imports this module at load time.
        from repro.lint.findings import LintReport

        data = json.loads(path.read_text())
        return LintReport.from_dict(data.get("report", {}))


def resolve_campaign_dir(
    root, manifest: CampaignManifest | None = None, create: bool = False
) -> CampaignDirectory:
    """Resolve ``root`` to a :class:`CampaignDirectory` — the single
    resolution rule shared by ``savanna.drive``, the experiment harness,
    and the ``repro.lint`` CLI (so resume and pre-run lint always look at
    the same end point).

    ``root`` may be either

    - a campaign end point itself (a directory holding
      ``.cheetah/manifest.json``), or
    - a parent directory, with ``manifest`` naming the child end point
      (``root/<manifest.campaign>``), which is opened if present and
      created when ``create=True``.

    Raises ``FileNotFoundError`` when nothing resolves, and ``ValueError``
    when an existing end point belongs to a different campaign than the
    ``manifest`` passed in.
    """
    root = Path(root)

    def _open_checked(path: Path) -> CampaignDirectory:
        directory = CampaignDirectory.open(path)
        if manifest is not None and directory.manifest.campaign != manifest.campaign:
            raise ValueError(
                f"campaign directory {path} holds campaign "
                f"{directory.manifest.campaign!r}, expected {manifest.campaign!r}"
            )
        return directory

    if (root / CampaignDirectory.METADATA_DIR / "manifest.json").is_file():
        return _open_checked(root)
    if manifest is None:
        raise FileNotFoundError(
            f"{root} is not a campaign directory (no "
            f"{CampaignDirectory.METADATA_DIR}/manifest.json) and no manifest "
            "was given to locate one beneath it"
        )
    child = root / manifest.campaign
    if (child / CampaignDirectory.METADATA_DIR / "manifest.json").is_file():
        return _open_checked(child)
    if not create:
        raise FileNotFoundError(
            f"no campaign directory at {root} or {child} "
            "(pass create=True to materialize one)"
        )
    directory = CampaignDirectory(root, manifest)
    directory.create()
    return directory
