"""Campaign / SweepGroup / Sweep — Cheetah's composition model (§IV, §V-D).

"The Campaign abstraction in Cheetah allows creating a large ensemble
study composed of one or more parameter 'Sweeps', which may be grouped
into 'SweepGroups'."  A Sweep is a cartesian product of parameters
(optionally filtered); a SweepGroup carries the batch-resource envelope
(nodes, walltime) its runs execute under; a Campaign names the study and
its application.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from repro._util import check_positive
from repro.cheetah.manifest import CampaignManifest, RunSpec
from repro.cheetah.parameters import DerivedParameter, ParameterError, SweepParameter
from repro.metadata.provenance import CampaignContext
from repro.observability import CAMPAIGN_COMPOSED


@dataclass(frozen=True)
class AppSpec:
    """The science application a campaign drives."""

    name: str
    executable: str = ""
    nodes_per_run: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        check_positive("nodes_per_run", self.nodes_per_run)


class Sweep:
    """A cartesian product of parameters, optionally filtered.

    ``filter`` is a predicate over the full configuration dict; rejected
    points are skipped (the paper's "high-level expression of
    application-level, middleware-level, and system-level parameters"
    routinely needs constraint pruning).
    """

    def __init__(
        self,
        parameters,
        derived=(),
        filter: Callable[[dict], bool] | None = None,
        name: str = "sweep",
    ):
        if not name or not str(name).strip():
            raise ParameterError("sweep name must be non-empty")
        self.name = name
        self.parameters = tuple(parameters)
        self.derived = tuple(derived)
        self.filter = filter
        if not self.parameters:
            raise ParameterError(f"sweep {name!r} has no parameters")
        for p in self.parameters:
            if not isinstance(p, SweepParameter):
                raise ParameterError(
                    f"sweep {name!r}: expected SweepParameter, got {type(p).__name__}"
                )
        for d in self.derived:
            if not isinstance(d, DerivedParameter):
                raise ParameterError(
                    f"sweep {name!r}: expected DerivedParameter, got {type(d).__name__}"
                )
        # Validate names here, at composition time, not during manifest
        # expansion or template rendering: a sweep that cannot express its
        # own parameters is broken regardless of how it is later executed.
        # Cross-sweep collisions (duplicate points, inconsistent parameter
        # sets across a SweepGroup) are the campaign-level backstop of
        # ``repro.lint`` (FAIR002/FAIR005).
        names = [p.name for p in self.parameters] + [d.name for d in self.derived]
        non_identifiers = sorted(n for n in names if not str(n).isidentifier())
        if non_identifiers:
            raise ParameterError(
                f"sweep {name!r}: parameter names must be valid identifiers "
                f"(template-addressable), got {non_identifiers}"
            )
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ParameterError(
                f"duplicate parameter names in sweep {name!r}: {duplicates}"
            )

    def configurations(self):
        """Yield configuration dicts in deterministic cartesian order."""
        names = [p.name for p in self.parameters]
        for combo in itertools.product(*(p.values for p in self.parameters)):
            config = dict(zip(names, combo))
            for d in self.derived:
                config[d.name] = d.fn(config)
            if self.filter is None or self.filter(config):
                yield config

    def __len__(self) -> int:
        return sum(1 for _ in self.configurations())


class SweepGroup:
    """A named group of sweeps sharing one batch-resource envelope.

    ``nodes`` and ``walltime`` describe the allocation the group's runs
    execute in; Savanna "may simply re-submit a partially completed
    SweepGroup" to continue execution, so group identity is the resume
    unit.
    """

    def __init__(self, name: str, nodes: int, walltime: float, sweeps=()):
        check_positive("nodes", nodes)
        check_positive("walltime", walltime)
        self.name = name
        self.nodes = nodes
        self.walltime = walltime
        self.sweeps: list[Sweep] = list(sweeps)

    def add(self, sweep: Sweep) -> "SweepGroup":
        self.sweeps.append(sweep)
        return self

    def configurations(self):
        for sweep in self.sweeps:
            yield from sweep.configurations()

    def __len__(self) -> int:
        return sum(len(s) for s in self.sweeps)


class Campaign:
    """A composed codesign/ensemble campaign.

    Example
    -------
    >>> from repro.cheetah.parameters import RangeParameter
    >>> camp = Campaign("irf-loop", app=AppSpec("irf"))
    >>> sg = camp.sweep_group("features", nodes=20, walltime=7200)
    >>> _ = sg.add(Sweep([RangeParameter("feature", 0, 5)]))
    >>> [r.run_id for r in camp.to_manifest().runs][:2]
    ['features/run-0000', 'features/run-0001']
    """

    def __init__(
        self,
        name: str,
        app: AppSpec,
        objective: str = "explore parameters",
        metadata: dict | None = None,
    ):
        if not name:
            raise ValueError("campaign name must be non-empty")
        self.name = name
        self.app = app
        self.objective = objective
        self.groups: list[SweepGroup] = []
        #: Free-form campaign metadata; travels through the manifest JSON.
        #: ``metadata["lint"]["suppress"]`` lists ``repro.lint`` rule ids
        #: this campaign opts out of (see ``docs/lint.md``).
        self.metadata: dict = dict(metadata or {})

    def sweep_group(self, name: str, nodes: int, walltime: float) -> SweepGroup:
        """Create, register, and return a new SweepGroup."""
        if any(g.name == name for g in self.groups):
            raise ValueError(f"duplicate sweep group name {name!r}")
        group = SweepGroup(name=name, nodes=nodes, walltime=walltime)
        self.groups.append(group)
        return group

    def add_group(self, group: SweepGroup) -> "Campaign":
        if any(g.name == group.name for g in self.groups):
            raise ValueError(f"duplicate sweep group name {group.name!r}")
        self.groups.append(group)
        return self

    def total_runs(self) -> int:
        return sum(len(g) for g in self.groups)

    def context(self) -> CampaignContext:
        """Campaign-tier provenance context for this study."""
        swept = []
        for group in self.groups:
            for sweep in group.sweeps:
                swept.extend(p.name for p in sweep.parameters)
        return CampaignContext(
            name=self.name,
            objective=self.objective,
            swept_parameters=tuple(dict.fromkeys(swept)),
        )

    def to_manifest(self, bus=None) -> CampaignManifest:
        """Build the abstract manifest — the Cheetah↔Savanna interop layer.

        With an :class:`~repro.observability.EventBus` passed, emits one
        ``campaign.composed`` instant recording the materialized shape
        (campaign name, group count, total runs) — composition is the
        first provenance-relevant act of a study, so it belongs on the
        same stream the execution layers write to.
        """
        runs: list[RunSpec] = []
        groups_meta = []
        for group in self.groups:
            count = 0
            for config in group.configurations():
                runs.append(
                    RunSpec(
                        run_id=f"{group.name}/run-{count:04d}",
                        group=group.name,
                        parameters=dict(config),
                        nodes=self.app.nodes_per_run,
                    )
                )
                count += 1
            groups_meta.append(
                {
                    "name": group.name,
                    "nodes": group.nodes,
                    "walltime": group.walltime,
                    "runs": count,
                }
            )
        if bus is not None:
            bus.emit(
                CAMPAIGN_COMPOSED,
                campaign=self.name,
                groups=len(groups_meta),
                runs=len(runs),
            )
        return CampaignManifest(
            campaign=self.name,
            app=self.app.name,
            executable=self.app.executable,
            objective=self.objective,
            groups=tuple(groups_meta),
            runs=tuple(runs),
            metadata=dict(self.metadata),
        )
