"""Codesign objectives (§II-C).

"A codesign abstraction that allows declaring an *objective* of the study
using different metrics such as searching for optimal runtime, minimizing
storage space, reducing communication overhead etc. can further help
build high-level composition and query interfaces."

An :class:`Objective` names a metric and a direction; the campaign
catalog evaluates objectives over collected run metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Direction(enum.Enum):
    """Which way an objective's metric improves."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


@dataclass(frozen=True)
class Objective:
    """A declared study objective over one run metric."""

    name: str
    metric: str
    direction: Direction = Direction.MINIMIZE
    description: str = ""

    def better(self, a: float, b: float) -> bool:
        """True if metric value ``a`` beats ``b`` under this objective."""
        if self.direction is Direction.MINIMIZE:
            return a < b
        return a > b

    def best_of(self, values) -> float:
        values = list(values)
        if not values:
            raise ValueError(f"objective {self.name!r}: no values to compare")
        return min(values) if self.direction is Direction.MINIMIZE else max(values)


def standard_objectives() -> dict:
    """The §II-C exemplar objectives, keyed by name."""
    return {
        o.name: o
        for o in (
            Objective(
                "optimal-runtime",
                metric="runtime_seconds",
                direction=Direction.MINIMIZE,
                description="search for the fastest configuration",
            ),
            Objective(
                "minimal-storage",
                metric="storage_bytes",
                direction=Direction.MINIMIZE,
                description="minimize storage footprint",
            ),
            Objective(
                "minimal-communication",
                metric="communication_seconds",
                direction=Direction.MINIMIZE,
                description="reduce communication overhead",
            ),
            Objective(
                "maximal-throughput",
                metric="throughput",
                direction=Direction.MAXIMIZE,
                description="maximize delivered throughput",
            ),
        )
    }
