"""Cheetah: workflow campaign composition (§IV).

Cheetah's composition interface "provides an API that allows focusing on
expressing parameters across the software stack, while omitting low-level
system details".  The user composes a :class:`Campaign` of parameter
:class:`Sweep`\\ s grouped into :class:`SweepGroup`\\ s; Cheetah derives
the run set, the campaign directory schema, and the JSON *manifest* — the
interoperability layer Savanna executes.

- :mod:`repro.cheetah.parameters` — parameter types (list, range, linspace,
  derived) and the cartesian-product sweep.
- :mod:`repro.cheetah.campaign` — Campaign / SweepGroup / Sweep / AppSpec.
- :mod:`repro.cheetah.manifest` — the JSON campaign manifest (round-trip).
- :mod:`repro.cheetah.directory` — the on-disk campaign end-point schema
  with hidden metadata, run directories, and status files.
"""

from repro.cheetah.parameters import (
    ParameterError,
    SweepParameter,
    RangeParameter,
    LinspaceParameter,
    LogspaceParameter,
    DerivedParameter,
)
from repro.cheetah.campaign import AppSpec, Sweep, SweepGroup, Campaign
from repro.cheetah.manifest import CampaignManifest, RunSpec, manifest_to_json, manifest_from_json
from repro.cheetah.directory import CampaignDirectory, RunStatus, resolve_campaign_dir
from repro.cheetah.objectives import Objective, Direction, standard_objectives
from repro.cheetah.catalog import CampaignCatalog, RunRecord

__all__ = [
    "ParameterError",
    "SweepParameter",
    "RangeParameter",
    "LinspaceParameter",
    "LogspaceParameter",
    "DerivedParameter",
    "AppSpec",
    "Sweep",
    "SweepGroup",
    "Campaign",
    "CampaignManifest",
    "RunSpec",
    "manifest_to_json",
    "manifest_from_json",
    "CampaignDirectory",
    "RunStatus",
    "resolve_campaign_dir",
    "Objective",
    "Direction",
    "standard_objectives",
    "CampaignCatalog",
    "RunRecord",
]
