"""fairflow — a reproduction of "Reusability First: Toward FAIR Workflows"
(Wolf, Logan, Mehta, et al., IEEE CLUSTER 2021).

The package implements the paper's primary contribution — the six-gauge
reusability abstraction — together with every substrate its evaluation
depends on:

=====================  =====================================================
:mod:`repro.gauges`     the six-gauge model, technical-debt scoring,
                        component registry, reusability trajectories
:mod:`repro.metadata`   machine-actionable descriptors (access / schema /
                        semantics / provenance) + format-conversion planner
:mod:`repro.skel`       model-driven code generation (template engine,
                        generation models, generator, template library)
:mod:`repro.cheetah`    campaign composition (Campaign / SweepGroup /
                        Sweep, JSON manifest, campaign directory schema)
:mod:`repro.savanna`    campaign execution (dynamic pilot, set-synchronized
                        baseline, local thread-pool executor, resume)
:mod:`repro.cluster`    discrete-event HPC simulator (nodes, batch
                        scheduler, parallel filesystem, failures)
:mod:`repro.resilience` fault injection, retry policies (backoff,
                        timeouts, budgets), campaign checkpoint/resume
:mod:`repro.dataflow`   streaming workflow substrate (virtual data queues,
                        runtime-installable policies, generated comms)
:mod:`repro.store`      durable campaign/result store (batched sqlite
                        ingestion, SQL catalog queries, migration CLI)
:mod:`repro.apps`       GWAS paste workflow, iRF / iRF-LOOP, reaction-
                        diffusion + checkpoint-restart
:mod:`repro.experiments` one driver per paper figure (1-7)
:mod:`repro.observability` event bus, span tracing, metrics registry,
                        Chrome-trace recorder, trace-sourced provenance
=====================  =====================================================

Quickstart::

    from repro import gauges, skel, cheetah, savanna, cluster

    # Describe a component, assess its reusability, score its debt:
    assessment = gauges.assess(component)
    report = gauges.score(component, gauges.builtin_scenarios()["new-dataset"])

    # Compose a campaign and execute it on a simulated machine:
    camp = cheetah.Campaign("study", app=cheetah.AppSpec("sim"))
    camp.sweep_group("sweep", nodes=20, walltime=7200).add(
        cheetah.Sweep([cheetah.RangeParameter("x", 0, 100)]))
    sim = cluster.SimulatedCluster(cluster.ClusterSpec(nodes=20), seed=1)
    tasks = savanna.tasks_from_manifest(camp.to_manifest(), lambda p: 60.0)
    result = savanna.PilotExecutor(sim).run(tasks, nodes=20, walltime=7200)
"""

from repro import (
    apps,
    cheetah,
    cluster,
    dataflow,
    experiments,
    gauges,
    metadata,
    observability,
    research,
    resilience,
    savanna,
    skel,
    store,
)
from repro.research import export_research_object, load_research_object

__version__ = "1.0.0"

__all__ = [
    "gauges",
    "metadata",
    "skel",
    "cheetah",
    "savanna",
    "cluster",
    "resilience",
    "store",
    "dataflow",
    "apps",
    "experiments",
    "observability",
    "research",
    "export_research_object",
    "load_research_object",
    "__version__",
]
