"""Retry policies: how a campaign spends its failure budget.

The paper frames manual babysitting of failed runs as *serviced* technical
debt (§IV–V): every hand-resubmitted run is a payment on debt the workflow
system should have absorbed.  A :class:`RetryPolicy` is the machine-
actionable version of that absorption — it decides, per task, whether a
failed attempt gets another try, how long to wait before the retry
(backoff), how long any single attempt may run (timeout), and how many
retries one batch allocation may spend in total (the allocation budget).

Everything is deterministic: backoff jitter derives from an explicit seed
and the retry index, never from wall-clock entropy, so a campaign executed
twice under the same fault seed produces identical traces.

The legacy ``max_retries`` integer on the executors remains as a shim —
:func:`as_policy` converts it to a :class:`RetryPolicy` (and rejects the
negative values that previously disabled tasks silently).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_nonnegative, check_positive


class RetryPolicy:
    """Base policy: up to ``max_retries`` immediate retries, no backoff.

    Parameters
    ----------
    max_retries:
        Per-task retry budget (attempts beyond the first).  ``0`` disables
        retries entirely.
    task_timeout:
        Wall-second cap on any single attempt; an attempt that would run
        longer is cut at the timeout, emits ``task.timeout``, and counts
        as a failure (so it re-enters the retry path).  ``None`` = no cap.
    allocation_budget:
        Total retries one batch allocation may spend across *all* its
        tasks; once exhausted, further failures in that allocation are
        terminal.  ``None`` = unbounded.
    """

    def __init__(
        self,
        max_retries: int = 0,
        task_timeout: float | None = None,
        allocation_budget: int | None = None,
    ):
        if not isinstance(max_retries, int) or isinstance(max_retries, bool):
            raise ValueError(
                f"max_retries must be a non-negative int, got {max_retries!r}"
            )
        if max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {max_retries} "
                "(negative values would silently disable retries)"
            )
        if task_timeout is not None:
            check_positive("task_timeout", task_timeout)
        if allocation_budget is not None:
            if not isinstance(allocation_budget, int) or allocation_budget < 0:
                raise ValueError(
                    f"allocation_budget must be a non-negative int, got {allocation_budget!r}"
                )
        self.max_retries = max_retries
        self.task_timeout = task_timeout
        self.allocation_budget = allocation_budget

    # -- decisions -----------------------------------------------------------

    def allows(self, retries_so_far: int) -> bool:
        """May a task that already retried ``retries_so_far`` times retry again?"""
        return retries_so_far < self.max_retries

    def delay(self, retry_index: int) -> float:
        """Seconds to wait before retry number ``retry_index`` (1-based)."""
        return 0.0

    def timeout_for(self, task) -> float | None:
        """Per-attempt wall-second cap for ``task`` (``None`` = uncapped)."""
        return self.task_timeout

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"{type(self).__name__}(max_retries={self.max_retries}, "
            f"task_timeout={self.task_timeout}, "
            f"allocation_budget={self.allocation_budget})"
        )


class FixedDelayPolicy(RetryPolicy):
    """Retry after a constant delay — the simplest debt-absorbing policy."""

    def __init__(
        self,
        max_retries: int = 2,
        delay_seconds: float = 0.0,
        task_timeout: float | None = None,
        allocation_budget: int | None = None,
    ):
        super().__init__(
            max_retries=max_retries,
            task_timeout=task_timeout,
            allocation_budget=allocation_budget,
        )
        check_nonnegative("delay_seconds", delay_seconds)
        self.delay_seconds = float(delay_seconds)

    def delay(self, retry_index: int) -> float:
        return self.delay_seconds


class ExponentialBackoffPolicy(RetryPolicy):
    """Exponential backoff with deterministic jitter.

    Retry ``k`` (1-based) waits ``base * factor**(k-1)`` seconds, clipped
    to ``max_delay``, plus a jitter term in ``[0, jitter * delay)``.  The
    jitter derives from ``seed`` and ``k`` alone — *not* from a shared
    mutable RNG stream — so two identically-seeded campaigns back off
    identically regardless of how their failure interleavings differ.
    """

    def __init__(
        self,
        max_retries: int = 3,
        base: float = 30.0,
        factor: float = 2.0,
        max_delay: float = 3600.0,
        jitter: float = 0.0,
        seed: int = 0,
        task_timeout: float | None = None,
        allocation_budget: int | None = None,
    ):
        super().__init__(
            max_retries=max_retries,
            task_timeout=task_timeout,
            allocation_budget=allocation_budget,
        )
        check_positive("base", base)
        check_positive("factor", factor)
        check_positive("max_delay", max_delay)
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.base = float(base)
        self.factor = float(factor)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = int(seed)

    def delay(self, retry_index: int) -> float:
        if retry_index < 1:
            raise ValueError(f"retry_index is 1-based, got {retry_index}")
        raw = min(self.base * self.factor ** (retry_index - 1), self.max_delay)
        if self.jitter == 0.0:
            return raw
        # Keyed, stateless jitter: a fresh draw from (seed, k), not a
        # shared stream, so delays are independent of failure interleaving.
        u = float(np.random.default_rng([self.seed, retry_index]).uniform())
        return raw * (1.0 + self.jitter * u)


def no_retry(task_timeout: float | None = None) -> RetryPolicy:
    """A policy that never retries (the original workflow's behaviour)."""
    return RetryPolicy(max_retries=0, task_timeout=task_timeout)


def as_policy(value) -> RetryPolicy:
    """Normalize a policy argument: a :class:`RetryPolicy` passes through,
    a legacy ``max_retries`` integer becomes an immediate-retry policy,
    and ``None`` means "no retries" (the :func:`no_retry` default the
    real-execution engine assumes when no policy is given).

    Raises ``ValueError`` for negative integers — before the policy layer,
    a negative ``max_retries`` silently disabled every retry.
    """
    if value is None:
        return no_retry()
    if isinstance(value, RetryPolicy):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return RetryPolicy(max_retries=value)
    raise ValueError(
        f"expected a RetryPolicy, a non-negative int, or None, "
        f"got {type(value).__name__}"
    )
