"""Deterministic fault injection for simulated campaign runs.

The paper's iRF-LOOP account (§II-B) and the resilience argument of §V
both hinge on campaigns surviving *real* machines: nodes that die at
launch, jobs that crash mid-flight, stragglers that hold a barrier
hostage, and I/O blips that vanish on the next try.  This module models
those four as injectable faults on top of the cluster's background MTTF
model:

- ``crash-on-start`` — the attempt dies immediately at placement (bad
  node, missing library, OOM at init).
- ``mid-run-crash`` — the attempt dies partway through its nominal
  duration (segfault, node failure).
- ``straggler`` — the attempt's nodes run slowed by a factor (thermal
  throttling, OS jitter, contended I/O); the work completes, late.
- ``transient-io`` — the attempt fails, but only for the first
  ``max_attempts`` tries of the task; later attempts sail through
  (the canonical retry-able failure).

Determinism is the design center: every decision is a pure function of
``(seed, task name, attempt index)`` — a *keyed* draw, not a shared
stream — so an experiment reproduces exactly under resume, under
re-execution, and regardless of how concurrent attempts interleave.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro._util import check_fraction, check_positive

# -- fault kinds -------------------------------------------------------------

CRASH_ON_START = "crash-on-start"
MID_RUN_CRASH = "mid-run-crash"
STRAGGLER = "straggler"
TRANSIENT_IO = "transient-io"

FAULT_KINDS = (CRASH_ON_START, MID_RUN_CRASH, STRAGGLER, TRANSIENT_IO)


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault: a kind, a per-attempt probability, parameters.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    probability:
        Chance this fault strikes any given attempt, in ``[0, 1]``.
    slowdown:
        Straggler speed divisor (a 4.0 straggler takes 4x nominal time).
    max_attempts:
        ``transient-io`` only: attempts (1-based) up to and including this
        index may be struck; later attempts are immune.
    """

    kind: str
    probability: float
    slowdown: float = 4.0
    max_attempts: int = 2

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        check_fraction("probability", self.probability)
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1.0, got {self.slowdown}")
        check_positive("max_attempts", self.max_attempts)


@dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one attempt.

    ``fail_at`` is seconds into the attempt at which it dies (``None``
    for non-fatal faults); ``slowdown`` > 1 stretches the attempt's
    wall time (straggler).
    """

    kind: str
    fail_at: float | None = None
    slowdown: float = 1.0


class FaultInjector:
    """Seeded, per-attempt fault decisions for a campaign execution.

    Attach one to a :class:`~repro.cluster.cluster.SimulatedCluster` via
    its ``faults=`` argument; the within-allocation engines consult it at
    every task launch.  Specs are evaluated in declaration order and the
    first one that strikes wins, so put the rarest/most-severe fault
    first when composing plans.

    Example
    -------
    >>> injector = FaultInjector(
    ...     [FaultSpec(CRASH_ON_START, 0.5)], seed=7)
    >>> d1 = injector.decide("run-0001", attempt=1, duration=100.0)
    >>> d2 = injector.decide("run-0001", attempt=1, duration=100.0)
    >>> d1 == d2  # pure function of (seed, name, attempt)
    True
    """

    def __init__(self, specs, seed: int = 0):
        self.specs = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"expected FaultSpec, got {type(spec).__name__}")
        self.seed = int(seed)
        self.injected_count = 0

    def _rng(self, task_name: str, attempt: int) -> np.random.Generator:
        """Keyed generator: identical for identical (seed, name, attempt)."""
        key = zlib.crc32(task_name.encode("utf-8"))
        return np.random.default_rng([self.seed, key, attempt])

    def decide(self, task_name: str, attempt: int, duration: float) -> FaultDecision | None:
        """The fault (if any) striking attempt ``attempt`` (1-based) of
        ``task_name``, whose nominal wall time is ``duration`` seconds."""
        check_positive("attempt", attempt)
        rng = self._rng(task_name, attempt)
        for spec in self.specs:
            struck = rng.uniform() < spec.probability
            if not struck:
                continue
            if spec.kind == CRASH_ON_START:
                decision = FaultDecision(kind=spec.kind, fail_at=0.0)
            elif spec.kind == MID_RUN_CRASH:
                frac = float(rng.uniform(0.05, 0.95))
                decision = FaultDecision(kind=spec.kind, fail_at=frac * duration)
            elif spec.kind == STRAGGLER:
                decision = FaultDecision(kind=spec.kind, slowdown=spec.slowdown)
            else:  # TRANSIENT_IO — clears after max_attempts tries
                if attempt > spec.max_attempts:
                    continue
                frac = float(rng.uniform(0.05, 0.95))
                decision = FaultDecision(kind=spec.kind, fail_at=frac * duration)
            self.injected_count += 1
            return decision
        return None


def parse_fault_specs(text: str, slowdown: float = 4.0) -> list[FaultSpec]:
    """Parse a ``kind=rate[,kind=rate...]`` plan string (the ``--faults``
    CLI syntax), e.g. ``"crash-on-start=0.1,straggler=0.2"``."""
    specs: list[FaultSpec] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad fault spec {part!r}; expected kind=rate with kind in {FAULT_KINDS}"
            )
        kind, _, rate = part.partition("=")
        specs.append(
            FaultSpec(kind=kind.strip(), probability=float(rate), slowdown=slowdown)
        )
    if not specs:
        raise ValueError(f"no fault specs in {text!r}")
    return specs
