"""repro.resilience — fault injection, retry policies, resumable campaigns.

The paper's Savanna contribution only matters on machines that misbehave:
nodes crash, runs straggle, I/O blips, walltimes kill half-finished
SweepGroups.  This package makes that misbehaviour *injectable* (so
experiments can measure recovery) and the recovery *mechanical* (so no
human services the debt):

- :mod:`repro.resilience.faults` — seeded, deterministic fault injection
  (crash-on-start, mid-run crash, straggler slowdown, transient I/O),
  pluggable into a :class:`~repro.cluster.cluster.SimulatedCluster`;
- :mod:`repro.resilience.policy` — the :class:`RetryPolicy` family
  (fixed delay, exponential backoff with deterministic jitter, per-task
  timeouts, per-allocation retry budgets) consumed by both Savanna
  executors;
- :mod:`repro.resilience.checkpoint` — write-ahead journaling of per-run
  status into the Cheetah campaign directory, so a killed campaign
  resumes exactly its pending runs.

Every retry/timeout/fault/resume decision is narrated on the cluster's
event bus (``task.retry``, ``task.timeout``, ``task.fault_injected``,
``group.resumed``); see ``docs/resilience.md`` for the contract and a
worked trace.
"""

from repro.resilience.checkpoint import CampaignCheckpoint
from repro.resilience.faults import (
    CRASH_ON_START,
    FAULT_KINDS,
    MID_RUN_CRASH,
    STRAGGLER,
    TRANSIENT_IO,
    FaultDecision,
    FaultInjector,
    FaultSpec,
    parse_fault_specs,
)
from repro.resilience.policy import (
    ExponentialBackoffPolicy,
    FixedDelayPolicy,
    RetryPolicy,
    as_policy,
    no_retry,
)

__all__ = [
    "RetryPolicy",
    "FixedDelayPolicy",
    "ExponentialBackoffPolicy",
    "as_policy",
    "no_retry",
    "FaultSpec",
    "FaultDecision",
    "FaultInjector",
    "parse_fault_specs",
    "FAULT_KINDS",
    "CRASH_ON_START",
    "MID_RUN_CRASH",
    "STRAGGLER",
    "TRANSIENT_IO",
    "CampaignCheckpoint",
]
