"""Campaign progress checkpointing — the resume contract made durable.

"If all runs in the SweepGroup cannot be run in the allotted time, the
SweepGroup is simply re-submitted, and Savanna resumes execution of the
experiments" (§V-D).  Resumption is only as good as the on-disk record:
before this layer, run statuses were written once, *after* the campaign
loop drained — a killed driver process left ``status.json`` claiming
nothing ran.

A :class:`CampaignCheckpoint` closes that gap with a write-ahead journal
inside the Cheetah campaign directory::

    <root>/<campaign>/.cheetah/status.json     # compacted base record
    <root>/<campaign>/.cheetah/journal.jsonl   # one line per transition

Every task transition observed on the cluster's event bus appends one
JSON line (O(1) per event — no rewrite of the full status map), and
:meth:`CampaignCheckpoint.compact` folds the journal back into
``status.json`` when a group finishes.  Reading overlays the journal on
the base record, so a driver killed mid-campaign still resumes exactly
the pending set.

**Per-submission scoping**: with the campaign service
(:mod:`repro.savanna.service`) many drive pipelines run concurrently in
one process, each attaching its own checkpoint.  The journal format is
append-per-line and therefore safe for *distinct* directories, but two
live writers on the *same* campaign directory would interleave
transitions from unrelated attempts — so :meth:`CampaignCheckpoint.attach`
enforces one attached writer per journal path process-wide and raises
``RuntimeError`` on the second.  A concurrent re-submission of a
still-running campaign fails loudly at attach time instead of silently
corrupting the resume record.
"""

from __future__ import annotations

import json
import threading

from repro.cheetah.directory import CampaignDirectory, RunStatus
from repro.observability import BEGIN, END, TASK

#: Task-span ``outcome`` field -> durable run status.  A walltime-killed
#: run is retryable, so it checkpoints as PENDING (same rule the drive
#: layer applies to final task states); an attempt cut short by Ctrl-C in
#: a real driver (``"interrupted"``) is likewise retryable.
_OUTCOME_TO_STATUS = {
    "done": RunStatus.DONE,
    "failed": RunStatus.FAILED,
    "killed": RunStatus.PENDING,
    "interrupted": RunStatus.PENDING,
}


class CampaignCheckpoint:
    """Incremental per-run status records inside a campaign directory.

    Parameters
    ----------
    directory:
        The :class:`~repro.cheetah.directory.CampaignDirectory` holding
        the campaign end point (must have been ``create()``-d, so
        ``status.json`` exists).
    """

    JOURNAL_NAME = "journal.jsonl"

    #: Process-wide registry of journal paths with a live attached writer
    #: (per-submission scoping: one writer per campaign directory).
    _ATTACHED: dict = {}
    _ATTACHED_LOCK = threading.Lock()

    def __init__(self, directory: CampaignDirectory):
        self.directory = directory
        self._journal_path = (
            directory.root / CampaignDirectory.METADATA_DIR / self.JOURNAL_NAME
        )
        self._known = {run.run_id for run in directory.manifest.runs}
        self._unsubscribe = None

    # -- journal -------------------------------------------------------------

    def record(self, run_id: str, status: RunStatus, time: float | None = None) -> None:
        """Append one status transition to the journal (O(1))."""
        if run_id not in self._known:
            raise KeyError(f"unknown run_id {run_id!r}")
        line = json.dumps({"run": run_id, "status": status.value, "time": time})
        with self._journal_path.open("a") as fh:
            fh.write(line + "\n")

    def journal_entries(self) -> list[dict]:
        """Parsed journal lines, in append order (empty if no journal).

        A driver killed hard (SIGKILL, OOM) can die *mid-write*, leaving
        the final line truncated; that line is dropped rather than
        poisoning resume — every complete line before it is still
        trusted.  A malformed line anywhere *else* is a real corruption
        and raises.
        """
        if not self._journal_path.exists():
            return []
        entries = []
        lines = [ln.strip() for ln in self._journal_path.read_text().splitlines()]
        lines = [ln for ln in lines if ln]
        for i, line in enumerate(lines):
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn final write from a killed driver
                raise
        return entries

    # -- reading -------------------------------------------------------------

    def effective_status(self) -> dict:
        """``{run_id: RunStatus}``: the base record overlaid with the
        journal (later lines win).  This is what resume must trust."""
        status = self.directory.read_status()
        for entry in self.journal_entries():
            status[entry["run"]] = RunStatus(entry["status"])
        return status

    def completed(self) -> set:
        """Run ids durably recorded DONE (base record or journal)."""
        return {
            run_id
            for run_id, st in self.effective_status().items()
            if st is RunStatus.DONE
        }

    def pending(self) -> set:
        """Run ids a resumed driver must re-queue: everything not DONE.

        An in-flight attempt whose outcome was never journaled reads as
        RUNNING and therefore counts as pending — same rule
        :meth:`compact` applies."""
        return {
            run_id
            for run_id, st in self.effective_status().items()
            if st is not RunStatus.DONE
        }

    # -- compaction ----------------------------------------------------------

    def compact(self) -> None:
        """Fold the journal into ``status.json`` and truncate it.

        A run interrupted while RUNNING compacts to PENDING — an
        in-flight attempt whose outcome was never journaled must be
        re-queued, not trusted.
        """
        entries = self.journal_entries()
        if not entries:
            return
        updates: dict[str, RunStatus] = {}
        for entry in entries:
            status = RunStatus(entry["status"])
            if status is RunStatus.RUNNING:
                status = RunStatus.PENDING
            updates[entry["run"]] = status
        self.directory.update_status(updates)
        self._journal_path.unlink()

    # -- bus wiring ----------------------------------------------------------

    def attach(self, bus, owner: str | None = None) -> None:
        """Subscribe to ``bus`` and journal every task transition.

        ``task`` span begins journal RUNNING; ends journal the mapped
        outcome.  Events about tasks that are not runs of this campaign
        (names outside the manifest) are ignored, so a shared bus is safe.

        One live writer per campaign directory, process-wide: attaching
        while another checkpoint is already attached to the same journal
        raises ``RuntimeError`` naming the current holder — this is the
        per-submission scope guard that keeps concurrent campaign-service
        submissions from interleaving transitions into one journal.
        ``owner`` labels this writer (e.g. a submission id) for that
        error message.
        """
        if self._unsubscribe is not None:
            raise RuntimeError("checkpoint already attached to a bus")
        key = str(self._journal_path)
        with self._ATTACHED_LOCK:
            holder = self._ATTACHED.get(key)
            if holder is not None:
                raise RuntimeError(
                    f"campaign directory {self.directory.root} already has a "
                    f"live checkpoint writer ({holder}); a campaign must "
                    "finish (or be cancelled) before it is re-submitted "
                    "against the same directory"
                )
            self._ATTACHED[key] = owner or f"checkpoint@{id(self):#x}"

        def observe(event) -> None:
            if event.name != TASK:
                return
            run_id = event.fields.get("task")
            if run_id not in self._known:
                return
            if event.phase == BEGIN:
                self.record(run_id, RunStatus.RUNNING, time=event.time)
            elif event.phase == END:
                status = _OUTCOME_TO_STATUS.get(event.fields.get("outcome"))
                if status is not None:
                    self.record(run_id, status, time=event.time)

        self._unsubscribe = bus.subscribe(observe)

    def detach(self) -> None:
        """Stop observing the bus and release the writer slot (idempotent)."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
            with self._ATTACHED_LOCK:
                self._ATTACHED.pop(str(self._journal_path), None)
