"""``python -m repro.store`` — migrate, query, and export campaign stores.

Commands::

    migrate DIR [DIR ...] [--db PATH]     ingest campaign directories
    query  TARGET best    --metric M [--direction minimize|maximize]
    query  TARGET rank    --metric M [--direction ...] [--k N]
    query  TARGET pareto  --objective M:DIR [--objective M:DIR ...]
    query  TARGET impact  --metric M [--parameter P]
    status TARGET [--campaign NAME]       status counts from SQL
    export DIR [--db PATH]                store -> per-run result.json files
    info   TARGET                         campaigns, run counts, engine

``TARGET`` (and ``--db``) accept a campaign directory (the store at
``.cheetah/store.sqlite`` is used), a sqlite file path, or an engine URL
(``sqlite:///...``).  With a single-campaign store ``--campaign`` may be
omitted.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.cheetah.directory import CampaignDirectory
from repro.cheetah.objectives import Direction, Objective
from repro.store import CampaignStore, StoreError, ingest_directory, export_directory


def _store_target(target: str) -> str:
    """Resolve a CLI target to an engine path/URL (campaign dirs point
    at their ``.cheetah/store.sqlite``)."""
    path = Path(target)
    if (path / CampaignDirectory.METADATA_DIR).is_dir():
        return str(path / CampaignDirectory.METADATA_DIR / "store.sqlite")
    return target


def _pick_campaign(store: CampaignStore, requested: str | None) -> str:
    campaigns = store.campaigns()
    if requested is not None:
        if requested not in campaigns:
            raise StoreError(
                f"campaign {requested!r} not in store (has: {campaigns})"
            )
        return requested
    if len(campaigns) == 1:
        return campaigns[0]
    raise StoreError(
        f"store holds {len(campaigns)} campaigns {campaigns}; pass --campaign"
    )


def _objective(metric: str, direction: str) -> Objective:
    return Objective(
        name=f"cli-{metric}",
        metric=metric,
        direction=Direction(direction),
    )


def _cmd_migrate(args) -> int:
    db = args.db
    for root in args.directories:
        target = _store_target(db if db is not None else root)
        with CampaignStore(target) as store:
            summary = ingest_directory(store, root)
        print(
            f"migrated {root}: campaign {summary['campaign']!r} "
            f"({summary['runs']} runs, {summary['results']} results, "
            f"{summary['reports']} reports) -> {target}"
        )
    return 0


def _cmd_export(args) -> int:
    for root in args.directories:
        target = _store_target(args.db if args.db is not None else root)
        with CampaignStore(target) as store:
            written = export_directory(store, root)
        print(f"exported {written} result.json files into {root}")
    return 0


def _cmd_status(args) -> int:
    with CampaignStore(_store_target(args.target)) as store:
        campaign = _pick_campaign(store, args.campaign)
        counts = store.summary(campaign)
    total = sum(counts.values())
    print(f"campaign {campaign!r}: {total} runs")
    for status in sorted(counts):
        print(f"  {status:10s} {counts[status]}")
    return 0


def _cmd_info(args) -> int:
    with CampaignStore(_store_target(args.target)) as store:
        print(f"engine: {store.engine.describe()} (schema v{store.version})")
        for campaign in store.campaigns():
            counts = store.summary(campaign)
            catalog = store.catalog(campaign)
            print(
                f"  {campaign}: {sum(counts.values())} runs, "
                f"{len(catalog)} results, metrics {sorted(catalog.metric_names())}"
            )
    return 0


def _cmd_query(args) -> int:
    with CampaignStore(_store_target(args.target)) as store:
        campaign = _pick_campaign(store, args.campaign)
        catalog = store.catalog(campaign)
        if args.what in ("best", "rank") and not args.metric:
            print("query: --metric is required", file=sys.stderr)
            return 2
        if args.what == "best":
            record = catalog.best(_objective(args.metric, args.direction))
            print(f"{record.run_id}  {record.parameters}  "
                  f"{args.metric}={record.metric(args.metric)}")
        elif args.what == "rank":
            for record in catalog.rank(_objective(args.metric, args.direction), k=args.k):
                print(f"{record.run_id}  {args.metric}={record.metric(args.metric)}")
        elif args.what == "pareto":
            if not args.objective:
                print("query pareto: pass --objective METRIC:DIRECTION", file=sys.stderr)
                return 2
            objectives = []
            for spec in args.objective:
                metric, _, direction = spec.partition(":")
                objectives.append(_objective(metric, direction or "minimize"))
            for record in catalog.pareto_front(objectives):
                values = {o.metric: record.metric(o.metric) for o in objectives}
                print(f"{record.run_id}  {values}")
        elif args.what == "impact":
            if not args.metric:
                print("query impact: --metric is required", file=sys.stderr)
                return 2
            if args.parameter:
                impact = catalog.parameter_impact(args.parameter, args.metric)
                print(f"{args.parameter} -> {args.metric}: effect {impact['effect']:.4f} "
                      f"(grand mean {impact['grand_mean']:.4f})")
                for value in sorted(impact["group_means"], key=repr):
                    print(f"  {value!r}: mean {impact['group_means'][value]:.4f}")
            else:
                for parameter, effect in catalog.impact_ranking(args.metric):
                    print(f"{parameter:24s} effect {effect:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Durable campaign/result store: migrate, query, export.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    migrate = sub.add_parser("migrate", help="ingest campaign directories")
    migrate.add_argument("directories", nargs="+")
    migrate.add_argument("--db", default=None, help="store target (default: in-place)")
    migrate.set_defaults(fn=_cmd_migrate)

    export = sub.add_parser("export", help="store -> per-run result.json files")
    export.add_argument("directories", nargs="+")
    export.add_argument("--db", default=None)
    export.set_defaults(fn=_cmd_export)

    status = sub.add_parser("status", help="status counts from the store")
    status.add_argument("target")
    status.add_argument("--campaign", default=None)
    status.set_defaults(fn=_cmd_status)

    info = sub.add_parser("info", help="engine, campaigns, result counts")
    info.add_argument("target")
    info.set_defaults(fn=_cmd_info)

    query = sub.add_parser("query", help="catalog queries pushed down to SQL")
    query.add_argument("target")
    query.add_argument("what", choices=["best", "rank", "pareto", "impact"])
    query.add_argument("--campaign", default=None)
    query.add_argument("--metric", default=None)
    query.add_argument("--direction", default="minimize",
                       choices=["minimize", "maximize"])
    query.add_argument("--objective", action="append", default=[],
                       metavar="METRIC:DIRECTION")
    query.add_argument("--k", type=int, default=None)
    query.add_argument("--parameter", default=None)
    query.set_defaults(fn=_cmd_query)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (StoreError, FileNotFoundError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
