"""repro.store — the durable, SQL-backed campaign/result store.

The paper's §II-C argues the product of a codesign campaign is a
*machine-queriable catalog*.  This package is that catalog made durable
at scale: a batched, sqlite-backed (pluggable — see
:mod:`repro.store.engine`) store for campaigns, sweep groups, runs,
parameters, and metrics, with chunked write-behind bulk ingestion,
catalog queries pushed down to SQL, migration from file-based campaign
directories, and an opt-in per-run JSON export for human inspection.

- :mod:`repro.store.engine`  — the pluggable storage-engine contract +
  the in-tree sqlite engine.
- :mod:`repro.store.schema`  — the relational schema and its indexes.
- :mod:`repro.store.store`   — :class:`CampaignStore`: ingestion,
  status, outcomes, reports.
- :mod:`repro.store.catalog` — :class:`StoreCatalog`: the §II-C query
  face (``best`` / ``rank`` / Pareto / impact) evaluated in SQL.
- :mod:`repro.store.migrate` — campaign-directory ingestion and export.

CLI: ``python -m repro.store migrate|query|status|export|info``.
"""

from repro.store.catalog import StoreCatalog
from repro.store.engine import (
    SqliteEngine,
    StorageEngine,
    engine_for,
    register_engine,
    registered_engines,
)
from repro.store.migrate import export_directory, ingest_directory
from repro.store.schema import SCHEMA_VERSION
from repro.store.store import CampaignStore, StoreError, metrics_from_value

__all__ = [
    "CampaignStore",
    "StoreCatalog",
    "StoreError",
    "StorageEngine",
    "SqliteEngine",
    "SCHEMA_VERSION",
    "engine_for",
    "register_engine",
    "registered_engines",
    "ingest_directory",
    "export_directory",
    "metrics_from_value",
]
