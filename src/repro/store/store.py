"""The batched, SQL-backed campaign/result store.

Per-run ``result.json`` files and an in-memory catalog do not survive
millions of runs; this store does.  One :class:`CampaignStore` holds any
number of campaigns in one database (sqlite by default — see
:mod:`repro.store.engine` for pluggability) and is the durable system of
record behind :class:`~repro.cheetah.directory.CampaignDirectory`, the
drive pipeline, and the §II-C catalog queries.

**Ingestion** is write-behind and chunked: :meth:`CampaignStore.add_result`
appends to an in-memory buffer and the store lands whole chunks with
``executemany`` inside one transaction (default 500 rows per chunk) —
the pattern of batched bulk loaders, not one-INSERT-per-run.  Every
query flushes the buffer first, so reads are always consistent with
writes.

**Queries** are pushed down to SQL: ``best``/``rank`` are ``ORDER BY``
scans over the ``metrics(name, value)`` index, the Pareto front is a
dominance anti-join, and per-parameter impact is a ``GROUP BY`` over the
parameters table — see :class:`repro.store.StoreCatalog` for the
catalog-compatible face.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro._util import dumps_tagged, loads_tagged
from repro.cheetah.manifest import CampaignManifest, manifest_from_json, manifest_to_json
from repro.store.engine import StorageEngine, engine_for
from repro.store.schema import create_schema, schema_version


def metrics_from_value(value) -> dict:
    """Extract catalog metrics from a run's returned value.

    A run whose ``app_fn`` returns a dict of numbers *is* reporting
    metrics (the codesign-campaign idiom — see
    ``examples/codesign_campaign.py``); every numeric, non-bool entry
    becomes a catalog metric.  Any other return shape contributes no
    metrics (the value itself is still stored and round-trips).
    """
    if not isinstance(value, dict):
        return {}
    out = {}
    for name, item in value.items():
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            continue
        out[str(name)] = float(item)
    return out


class StoreError(RuntimeError):
    """A campaign store operation failed (unknown campaign, bad input)."""


class CampaignStore:
    """Durable campaign/result store over a pluggable SQL engine.

    Parameters
    ----------
    engine:
        A :class:`~repro.store.engine.StorageEngine`, a path to a sqlite
        file, ``":memory:"``, or an engine URL (``"sqlite:///..."``).
    chunk_size:
        Write-behind buffer depth: results are bulk-inserted in chunks
        of this many rows inside one transaction.
    """

    def __init__(self, engine: StorageEngine | str | Path = ":memory:", chunk_size: int = 500):
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.engine = engine_for(engine)
        self.chunk_size = chunk_size
        self._lock = threading.RLock()
        self._conn = self.engine.connect()
        self._buffer: list[tuple] = []
        self._campaign_ids: dict[str, int] = {}
        create_schema(self._conn)

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Flush the write-behind buffer and close the connection."""
        with self._lock:
            if self._conn is None:
                return
            self.flush()
            self._conn.close()
            self._conn = None

    @property
    def version(self) -> int:
        """The schema version of the opened database."""
        with self._lock:
            return schema_version(self._conn)

    # -- campaign registration -----------------------------------------------

    def ensure_campaign(self, manifest: CampaignManifest) -> int:
        """Idempotently register a manifest: campaign, groups, runs, parameters.

        Every run lands with status ``pending`` (``INSERT OR IGNORE`` —
        re-registering an already-ingested manifest touches nothing), in
        bulk chunks.  Returns the campaign's store id.
        """
        with self._lock:
            cid = self._campaign_id(manifest.campaign)
            if cid is None:
                cur = self._conn.execute(
                    "INSERT INTO campaigns (name, app, objective, manifest_json) "
                    "VALUES (?, ?, ?, ?)",
                    (manifest.campaign, manifest.app, manifest.objective,
                     manifest_to_json(manifest)),
                )
                cid = cur.lastrowid
                self._campaign_ids[manifest.campaign] = cid
            n_runs = self._conn.execute(
                "SELECT COUNT(*) FROM runs WHERE campaign_id = ?", (cid,)
            ).fetchone()[0]
            if n_runs >= len(manifest.runs):
                self._conn.commit()
                return cid
            self._conn.executemany(
                "INSERT OR IGNORE INTO sweep_groups (campaign_id, name, nodes, walltime) "
                "VALUES (?, ?, ?, ?)",
                [
                    (cid, g["name"], g.get("nodes"), g.get("walltime"))
                    for g in manifest.groups
                ],
            )
            groups = {
                name: gid
                for gid, name in self._conn.execute(
                    "SELECT id, name FROM sweep_groups WHERE campaign_id = ?", (cid,)
                )
            }
            runs = list(manifest.runs)
            for start in range(0, len(runs), self.chunk_size):
                chunk = runs[start : start + self.chunk_size]
                self._conn.executemany(
                    "INSERT OR IGNORE INTO runs (campaign_id, group_id, run_id) "
                    "VALUES (?, ?, ?)",
                    [(cid, groups.get(r.group), r.run_id) for r in chunk],
                )
                self._conn.executemany(
                    "INSERT OR IGNORE INTO parameters (run_key, name, value_json, value_num) "
                    "SELECT r.id, ?, ?, ? FROM runs r "
                    "WHERE r.campaign_id = ? AND r.run_id = ?",
                    [
                        (name, dumps_tagged(value, sort_keys=True),
                         self._numeric(value), cid, r.run_id)
                        for r in chunk
                        for name, value in r.parameters.items()
                    ],
                )
            self._conn.commit()
            return cid

    def manifest(self, campaign: str) -> CampaignManifest:
        """The manifest a campaign was registered with (round-trips)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT manifest_json FROM campaigns WHERE name = ?", (campaign,)
            ).fetchone()
        if row is None or not row[0]:
            raise StoreError(f"store holds no manifest for campaign {campaign!r}")
        return manifest_from_json(row[0])

    def campaigns(self) -> list[str]:
        """Names of every campaign in the store, sorted."""
        with self._lock:
            self.flush()
            rows = self._conn.execute("SELECT name FROM campaigns ORDER BY name")
            return [name for (name,) in rows]

    # -- write-behind ingestion ----------------------------------------------

    def add_result(
        self,
        campaign: str,
        run_id: str,
        *,
        parameters: dict | None = None,
        metrics: dict | None = None,
        status: str = "done",
        value=None,
        error: str | None = None,
        traceback: str | None = None,
        elapsed: float | None = None,
        attempts: int = 1,
        seed: int | None = None,
        group: str | None = None,
    ) -> None:
        """Buffer one run outcome; flushed in chunks of ``chunk_size``.

        ``metrics`` defaults to :func:`metrics_from_value` of ``value``.
        The run row is upserted, so results may arrive for runs the
        manifest pre-registered *or* for free-standing runs (``parameters``
        then supplies the sweep point).  Values are encoded with the
        lossless tagged codec — an unencodable value raises here, at the
        write, never corrupting the record.
        """
        cid = self._campaign_id_checked(campaign)
        value_json = None if value is None else dumps_tagged(value, sort_keys=True)
        metric_rows = metrics_from_value(value) if metrics is None else {
            str(k): float(v) for k, v in metrics.items()
        }
        param_rows = {} if parameters is None else {
            str(k): (dumps_tagged(v, sort_keys=True), self._numeric(v))
            for k, v in parameters.items()
        }
        with self._lock:
            self._buffer.append(
                (cid, run_id, group, status, value_json, error, traceback,
                 elapsed, attempts, seed, param_rows, metric_rows)
            )
            if len(self._buffer) >= self.chunk_size:
                self.flush()

    def record_run_results(self, campaign: str, results: dict) -> None:
        """Bulk-record really-executed outcomes ``{run_id: outcome}``.

        ``outcome`` is a :class:`~repro.savanna.realexec.LocalRunResult`
        or its dict form.  Interrupted runs are skipped — an interrupted
        attempt is pending work, not an outcome.  The batch is flushed
        before returning: after this call the outcomes are durable.
        """
        from dataclasses import asdict, is_dataclass

        for run_id, outcome in results.items():
            payload = asdict(outcome) if is_dataclass(outcome) else dict(outcome)
            if payload.get("status") == "interrupted":
                continue
            self.add_result(
                campaign,
                run_id,
                status=payload.get("status", "done"),
                value=payload.get("value"),
                error=payload.get("error"),
                traceback=payload.get("traceback"),
                elapsed=payload.get("elapsed"),
                attempts=payload.get("attempts", 1),
                seed=payload.get("seed"),
            )
        self.flush()

    def flush(self) -> None:
        """Land the write-behind buffer: one transaction per flush."""
        with self._lock:
            if not self._buffer:
                return
            buffered, self._buffer = self._buffer, []
            run_rows = [row[:10] for row in buffered]
            self._conn.executemany(
                "INSERT INTO runs (campaign_id, run_id, group_id, status, value_json,"
                " error, traceback, elapsed, attempts, seed) "
                "VALUES (?1, ?2, (SELECT g.id FROM sweep_groups g WHERE g.campaign_id = ?1"
                " AND g.name = ?3), ?4, ?5, ?6, ?7, ?8, ?9, ?10) "
                "ON CONFLICT (campaign_id, run_id) DO UPDATE SET "
                "status = excluded.status, value_json = excluded.value_json, "
                "error = excluded.error, traceback = excluded.traceback, "
                "elapsed = excluded.elapsed, attempts = excluded.attempts, "
                "seed = excluded.seed",
                run_rows,
            )
            param_rows = [
                (name, value_json, value_num, row[0], row[1])
                for row in buffered
                for name, (value_json, value_num) in row[10].items()
            ]
            if param_rows:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO parameters (run_key, name, value_json, value_num) "
                    "SELECT r.id, ?, ?, ? FROM runs r "
                    "WHERE r.campaign_id = ? AND r.run_id = ?",
                    param_rows,
                )
            metric_rows = [
                (name, value, row[0], row[1])
                for row in buffered
                for name, value in row[11].items()
            ]
            if metric_rows:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO metrics (run_key, name, value) "
                    "SELECT r.id, ?, ? FROM runs r "
                    "WHERE r.campaign_id = ? AND r.run_id = ?",
                    metric_rows,
                )
            self._conn.commit()

    # -- status --------------------------------------------------------------

    def set_statuses(self, campaign: str, updates: dict) -> None:
        """Record status transitions ``{run_id: RunStatus | str}`` in bulk."""
        cid = self._campaign_id_checked(campaign)
        rows = [
            (getattr(status, "value", status), cid, run_id)
            for run_id, status in updates.items()
        ]
        with self._lock:
            self.flush()
            self._conn.executemany(
                "UPDATE runs SET status = ? WHERE campaign_id = ? AND run_id = ?",
                rows,
            )
            self._conn.commit()

    def statuses(self, campaign: str) -> dict:
        """``{run_id: status string}`` for every run of a campaign."""
        cid = self._campaign_id_checked(campaign)
        with self._lock:
            self.flush()
            rows = self._conn.execute(
                "SELECT run_id, status FROM runs WHERE campaign_id = ? ORDER BY run_id",
                (cid,),
            )
            return dict(rows.fetchall())

    def summary(self, campaign: str) -> dict:
        """Counts by status — the campaign query API of §IV, in SQL."""
        cid = self._campaign_id_checked(campaign)
        with self._lock:
            self.flush()
            rows = self._conn.execute(
                "SELECT status, COUNT(*) FROM runs WHERE campaign_id = ? GROUP BY status",
                (cid,),
            ).fetchall()
        counts = {"pending": 0, "running": 0, "done": 0, "failed": 0}
        for status, count in rows:
            counts[status] = counts.get(status, 0) + count
        return counts

    # -- reading outcomes ------------------------------------------------------

    def read_run_result(self, campaign: str, run_id: str) -> dict | None:
        """One run's recorded outcome, shaped like the ``result.json``
        export (``None`` when no outcome was ever recorded)."""
        cid = self._campaign_id_checked(campaign)
        with self._lock:
            self.flush()
            row = self._conn.execute(
                "SELECT status, value_json, error, traceback, elapsed, attempts, seed "
                "FROM runs WHERE campaign_id = ? AND run_id = ?",
                (cid, run_id),
            ).fetchone()
        if row is None or row[5] is None:  # attempts NULL <=> never executed
            return None
        status, value_json, error, traceback, elapsed, attempts, seed = row
        return {
            "run_id": run_id,
            "status": status,
            "value": None if value_json is None else loads_tagged(value_json),
            "error": error,
            "traceback": traceback,
            "elapsed": elapsed,
            "attempts": attempts,
            "seed": seed,
        }

    def run_count(self, campaign: str) -> int:
        """Number of runs registered for a campaign."""
        cid = self._campaign_id_checked(campaign)
        with self._lock:
            self.flush()
            return self._conn.execute(
                "SELECT COUNT(*) FROM runs WHERE campaign_id = ?", (cid,)
            ).fetchone()[0]

    # -- reports ---------------------------------------------------------------

    def record_reports(self, campaign: str, reports: list) -> None:
        """Merge trace-analytics reports, keyed by group (last write wins)."""
        cid = self._campaign_id_checked(campaign)
        rows = []
        for report in reports:
            payload = report if isinstance(report, dict) else report.to_dict()
            rows.append((cid, payload.get("group") or "", dumps_tagged(payload)))
        with self._lock:
            self._conn.executemany(
                "INSERT OR REPLACE INTO reports (campaign_id, group_name, report_json) "
                "VALUES (?, ?, ?)",
                rows,
            )
            self._conn.commit()

    def reports(self, campaign: str) -> list:
        """Stored reports for a campaign, ordered by group name."""
        cid = self._campaign_id_checked(campaign)
        with self._lock:
            rows = self._conn.execute(
                "SELECT report_json FROM reports WHERE campaign_id = ? ORDER BY group_name",
                (cid,),
            ).fetchall()
        return [loads_tagged(text) for (text,) in rows]

    # -- catalog ---------------------------------------------------------------

    def catalog(self, campaign: str):
        """The SQL-pushdown catalog face for one campaign (§II-C)."""
        from repro.store.catalog import StoreCatalog

        return StoreCatalog(self, campaign)

    # -- internals -------------------------------------------------------------

    def query(self, sql: str, params: tuple = ()) -> list:
        """Run one read query against the store (flushes the buffer first)."""
        with self._lock:
            self.flush()
            return self._conn.execute(sql, params).fetchall()

    def campaign_id(self, campaign: str) -> int:
        """The store id of a campaign (raises :class:`StoreError` if absent)."""
        return self._campaign_id_checked(campaign)

    def _campaign_id_checked(self, campaign: str) -> int:
        cid = self._campaign_id(campaign)
        if cid is None:
            raise StoreError(
                f"campaign {campaign!r} is not in the store; "
                "register it first (ensure_campaign) or migrate its directory"
            )
        return cid

    def _campaign_id(self, campaign: str) -> int | None:
        with self._lock:
            cid = self._campaign_ids.get(campaign)
            if cid is not None:
                return cid
            row = self._conn.execute(
                "SELECT id FROM campaigns WHERE name = ?", (campaign,)
            ).fetchone()
            if row is not None:
                self._campaign_ids[campaign] = row[0]
                return row[0]
            return None

    @staticmethod
    def _numeric(value) -> float | None:
        """The numeric projection stored beside a parameter value."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return float(value)
