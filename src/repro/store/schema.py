"""The campaign store's relational schema.

One normalized schema serves every §II-C catalog query:

- ``campaigns``     — one row per campaign (manifest kept for round-trip)
- ``sweep_groups``  — one row per SweepGroup (resource envelope)
- ``runs``          — one row per run: status + really-executed outcome
- ``parameters``    — tall table: (run, name, tagged JSON value, numeric
  projection) — the numeric column lets per-parameter impact aggregate
  entirely inside SQL
- ``metrics``       — tall table: (run, name, REAL value) — ``best`` /
  ``rank`` / Pareto queries are ``ORDER BY``/anti-join pushdowns over
  its ``(name, value)`` index
- ``reports``       — merged trace-analytics reports keyed by group

The indexes exist for the catalog's access paths: rank scans
``metrics(name, value)``, resume scans ``runs(campaign_id, status)``,
impact groups ``parameters(name, value_json)``.
"""

from __future__ import annotations

SCHEMA_VERSION = 1

DDL = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS campaigns (
    id            INTEGER PRIMARY KEY,
    name          TEXT NOT NULL UNIQUE,
    app           TEXT NOT NULL DEFAULT '',
    objective     TEXT NOT NULL DEFAULT '',
    manifest_json TEXT
);

CREATE TABLE IF NOT EXISTS sweep_groups (
    id          INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    name        TEXT NOT NULL,
    nodes       INTEGER,
    walltime    REAL,
    UNIQUE (campaign_id, name)
);

CREATE TABLE IF NOT EXISTS runs (
    id          INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    group_id    INTEGER REFERENCES sweep_groups(id) ON DELETE SET NULL,
    run_id      TEXT NOT NULL,
    status      TEXT NOT NULL DEFAULT 'pending',
    value_json  TEXT,
    error       TEXT,
    traceback   TEXT,
    elapsed     REAL,
    attempts    INTEGER,
    seed        INTEGER,
    UNIQUE (campaign_id, run_id)
);

CREATE TABLE IF NOT EXISTS parameters (
    run_key    INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    name       TEXT NOT NULL,
    value_json TEXT NOT NULL,
    value_num  REAL,
    PRIMARY KEY (run_key, name)
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS metrics (
    run_key INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    name    TEXT NOT NULL,
    value   REAL NOT NULL,
    PRIMARY KEY (run_key, name)
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS reports (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    group_name  TEXT NOT NULL,
    report_json TEXT NOT NULL,
    PRIMARY KEY (campaign_id, group_name)
);

CREATE INDEX IF NOT EXISTS idx_runs_campaign_status
    ON runs(campaign_id, status);
CREATE INDEX IF NOT EXISTS idx_metrics_name_value
    ON metrics(name, value);
CREATE INDEX IF NOT EXISTS idx_parameters_name_value
    ON parameters(name, value_json);
"""


def create_schema(conn) -> None:
    """Create (idempotently) every table and index, and stamp the version."""
    if hasattr(conn, "executescript"):
        conn.executescript(DDL)
    else:  # pragma: no cover - non-sqlite engines take statements one by one
        for statement in DDL.split(";"):
            if statement.strip():
                conn.execute(statement)
    conn.execute(
        "INSERT OR IGNORE INTO store_meta (key, value) VALUES ('schema_version', ?)",
        (str(SCHEMA_VERSION),),
    )
    conn.commit()


def schema_version(conn) -> int:
    """The schema version stamped into an opened store."""
    row = conn.execute(
        "SELECT value FROM store_meta WHERE key = 'schema_version'"
    ).fetchone()
    return int(row[0]) if row else 0
