"""The SQL-pushdown face of the §II-C codesign catalog.

:class:`StoreCatalog` answers the same queries as the in-memory
:class:`repro.cheetah.CampaignCatalog` — ``best``, ``rank``, the Pareto
front, per-parameter impact — but evaluates them *inside* the store's
SQL engine instead of materializing every record in Python:

- ``best``/``rank`` are ``ORDER BY`` scans over the ``metrics(name,
  value)`` index (ties broken by ``run_id``, exactly the in-memory
  rule);
- the Pareto front is a dominance anti-join (``NOT EXISTS`` over the
  metric pivot) generated for the requested objectives;
- ``parameter_impact`` is a ``GROUP BY`` over the parameters table with
  the grand mean folded from the same aggregate pass.

The answers are equivalent by construction and pinned by
``tests/test_store_catalog_equivalence.py``: identical run ids in
identical order for ``best``/``rank``/``pareto_front``, and the same
``KeyError``/``ValueError`` contracts on missing metrics and empty
catalogs.  One deliberate strictness difference: every objective query
here validates the metric on *every* run up front (first missing run in
run-id order names itself), where the in-memory catalog only discovers
a missing metric lazily while comparing (and not at all for a
single-record ``best``).
"""

from __future__ import annotations

from repro._util import loads_tagged
from repro.cheetah.catalog import RunRecord
from repro.cheetah.objectives import Direction, Objective


class StoreCatalog:
    """Campaign catalog queries pushed down to the campaign store."""

    def __init__(self, store, campaign: str):
        self.store = store
        self.campaign = campaign
        self._cid = store.campaign_id(campaign)

    def __len__(self) -> int:
        return self.store.query(
            "SELECT COUNT(*) FROM runs r WHERE r.campaign_id = ? AND r.status = 'done' AND r.attempts IS NOT NULL", (self._cid,)
        )[0][0]

    # -- record access ---------------------------------------------------------

    def records(self) -> list[RunRecord]:
        """Every run as a :class:`RunRecord`, ordered by run id."""
        params: dict[str, dict] = {}
        for run_id, name, value_json in self.store.query(
            "SELECT r.run_id, p.name, p.value_json FROM parameters p "
            "JOIN runs r ON r.id = p.run_key WHERE r.campaign_id = ? AND r.status = 'done' AND r.attempts IS NOT NULL",
            (self._cid,),
        ):
            params.setdefault(run_id, {})[name] = loads_tagged(value_json)
        metrics: dict[str, dict] = {}
        for run_id, name, value in self.store.query(
            "SELECT r.run_id, m.name, m.value FROM metrics m "
            "JOIN runs r ON r.id = m.run_key WHERE r.campaign_id = ? AND r.status = 'done' AND r.attempts IS NOT NULL",
            (self._cid,),
        ):
            metrics.setdefault(run_id, {})[name] = value
        run_ids = [
            row[0]
            for row in self.store.query(
                "SELECT run_id FROM runs r WHERE r.campaign_id = ? AND r.status = 'done' AND r.attempts IS NOT NULL ORDER BY run_id",
                (self._cid,),
            )
        ]
        return [
            RunRecord(
                run_id=run_id,
                parameters=params.get(run_id, {}),
                metrics=metrics.get(run_id, {}),
            )
            for run_id in run_ids
        ]

    def metric_names(self) -> set:
        """Every metric name any run of the campaign reports."""
        return {
            name
            for (name,) in self.store.query(
                "SELECT DISTINCT m.name FROM metrics m "
                "JOIN runs r ON r.id = m.run_key WHERE r.campaign_id = ? AND r.status = 'done' AND r.attempts IS NOT NULL",
                (self._cid,),
            )
        }

    def record(self, run_id: str) -> RunRecord:
        """One run's record (KeyError if the run is unknown)."""
        for rec in self.records():
            if rec.run_id == run_id:
                return rec
        raise KeyError(f"unknown run_id {run_id!r}")

    # -- objective queries -----------------------------------------------------

    def best(self, objective: Objective) -> RunRecord:
        """The single best run under ``objective`` (SQL ``ORDER BY ... LIMIT 1``)."""
        if len(self) == 0:
            raise ValueError("catalog is empty")
        self._require_metric_everywhere(objective.metric)
        order = "DESC" if objective.direction is Direction.MAXIMIZE else "ASC"
        rows = self.store.query(
            "SELECT r.run_id FROM runs r "
            "JOIN metrics m ON m.run_key = r.id AND m.name = ? "
            f"WHERE r.campaign_id = ? AND r.status = 'done' AND r.attempts IS NOT NULL ORDER BY m.value {order}, r.run_id ASC LIMIT 1",
            (objective.metric, self._cid),
        )
        return self.record(rows[0][0])

    def rank(self, objective: Objective, k: int | None = None) -> list[RunRecord]:
        """Runs ordered best-first under ``objective`` (index-order scan)."""
        self._require_metric_everywhere(objective.metric)
        order = "DESC" if objective.direction is Direction.MAXIMIZE else "ASC"
        limit = "" if k is None else f" LIMIT {int(k)}"
        rows = self.store.query(
            "SELECT r.run_id FROM runs r "
            "JOIN metrics m ON m.run_key = r.id AND m.name = ? "
            f"WHERE r.campaign_id = ? AND r.status = 'done' AND r.attempts IS NOT NULL ORDER BY m.value {order}, r.run_id ASC{limit}",
            (objective.metric, self._cid),
        )
        by_id = {rec.run_id: rec for rec in self.records()}
        return [by_id[run_id] for (run_id,) in rows]

    def pareto_front(self, objectives) -> list[RunRecord]:
        """Non-dominated runs under competing objectives (dominance anti-join).

        The query pivots the requested metrics into one row per run and
        keeps the rows for which no other row is at least as good on
        every objective and strictly better on one — the §II-C dominance
        rule evaluated entirely inside the engine.
        """
        objectives = list(objectives)
        if not objectives:
            raise ValueError("need at least one objective")
        for objective in objectives:
            self._require_metric_everywhere(objective.metric)
        joins = []
        for i, _ in enumerate(objectives):
            joins.append(
                f"JOIN metrics m{i} ON m{i}.run_key = r.id AND m{i}.name = ?"
            )
        at_least_as_good = []
        strictly_better = []
        for i, objective in enumerate(objectives):
            better, worse = ("<", ">") if objective.direction is Direction.MINIMIZE else (">", "<")
            at_least_as_good.append(f"NOT (b.v{i} {worse} a.v{i})")
            strictly_better.append(f"b.v{i} {better} a.v{i}")
        pivot = (
            "SELECT r.id AS id, r.run_id AS run_id, "
            + ", ".join(f"m{i}.value AS v{i}" for i in range(len(objectives)))
            + " FROM runs r "
            + " ".join(joins)
            + " WHERE r.campaign_id = ? AND r.status = 'done' AND r.attempts IS NOT NULL"
        )
        sql = (
            f"WITH v AS ({pivot}) SELECT a.run_id FROM v a "
            "WHERE NOT EXISTS (SELECT 1 FROM v b WHERE b.id != a.id AND "
            f"{' AND '.join(at_least_as_good)} AND ({' OR '.join(strictly_better)})) "
            "ORDER BY a.run_id"
        )
        params = tuple(o.metric for o in objectives) + (self._cid,)
        rows = self.store.query(sql, params)
        by_id = {rec.run_id: rec for rec in self.records()}
        return [by_id[run_id] for (run_id,) in rows]

    # -- parameter impact ------------------------------------------------------

    def parameter_impact(self, parameter: str, metric: str) -> dict:
        """Impact of one swept parameter on one metric (SQL ``GROUP BY``).

        Same report shape as the in-memory catalog: per-value metric
        means, the grand mean over every included run, and ``effect`` =
        spread of group means / |grand mean|.
        """
        rows = self.store.query(
            "SELECT p.value_json, AVG(m.value), SUM(m.value), COUNT(*) "
            "FROM runs r "
            "JOIN parameters p ON p.run_key = r.id AND p.name = ? "
            "JOIN metrics m ON m.run_key = r.id AND m.name = ? "
            "WHERE r.campaign_id = ? AND r.status = 'done' AND r.attempts IS NOT NULL GROUP BY p.value_json",
            (parameter, metric, self._cid),
        )
        if not rows:
            raise ValueError(
                f"no runs carry both parameter {parameter!r} and metric {metric!r}"
            )
        means = {}
        total = 0.0
        count = 0
        for value_json, mean, group_sum, group_count in rows:
            key = loads_tagged(value_json)
            means[key] = float(mean)
            total += group_sum
            count += group_count
        grand = total / count
        spread = max(means.values()) - min(means.values())
        return {
            "parameter": parameter,
            "metric": metric,
            "group_means": means,
            "grand_mean": grand,
            "effect": spread / abs(grand) if grand != 0 else float("inf"),
        }

    def impact_ranking(self, metric: str) -> list[tuple[str, float]]:
        """Parameters ordered by their effect on ``metric`` (largest first)."""
        names = [
            name
            for (name,) in self.store.query(
                "SELECT DISTINCT p.name FROM parameters p "
                "JOIN runs r ON r.id = p.run_key "
                "WHERE r.campaign_id = ? AND r.status = 'done' AND r.attempts IS NOT NULL ORDER BY p.name",
                (self._cid,),
            )
        ]
        rows = []
        for name in names:
            try:
                impact = self.parameter_impact(name, metric)
            except ValueError:
                continue
            rows.append((name, impact["effect"]))
        rows.sort(key=lambda pair: -pair[1])
        return rows

    def to_table(self, metrics=None) -> str:
        """Render the catalog as an aligned text table (sorted by run_id)."""
        from repro._util import format_table

        records = self.records()
        if not records:
            return f"campaign {self.campaign!r}: (empty catalog)"
        params = sorted({k for r in records for k in r.parameters})
        metrics = sorted(self.metric_names()) if metrics is None else list(metrics)
        headers = ["run_id", *params, *metrics]
        rows = []
        for r in records:
            rows.append(
                [r.run_id]
                + [r.parameters.get(p, "") for p in params]
                + [r.metrics.get(m, "") for m in metrics]
            )
        return format_table(headers, rows)

    # -- guards ----------------------------------------------------------------

    def _require_metric_everywhere(self, metric: str) -> None:
        """KeyError parity with the in-memory catalog: every run must
        carry ``metric`` (the first missing one, in run-id order, names
        itself and its known metrics)."""
        rows = self.store.query(
            "SELECT r.run_id FROM runs r WHERE r.campaign_id = ? AND r.status = 'done' AND r.attempts IS NOT NULL AND NOT EXISTS "
            "(SELECT 1 FROM metrics m WHERE m.run_key = r.id AND m.name = ?) "
            "ORDER BY r.run_id LIMIT 1",
            (self._cid, metric),
        )
        if not rows:
            return
        run_id = rows[0][0]
        known = sorted(
            name
            for (name,) in self.store.query(
                "SELECT m.name FROM metrics m JOIN runs r ON r.id = m.run_key "
                "WHERE r.campaign_id = ? AND r.status = 'done' AND r.attempts IS NOT NULL AND r.run_id = ?",
                (self._cid, run_id),
            )
        )
        raise KeyError(
            f"run {run_id!r} has no metric {metric!r}; known: {known}"
        )
