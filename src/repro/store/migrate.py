"""Migration: existing campaign directories -> the campaign store.

A campaign that ran before the store existed left its state as files —
``.cheetah/manifest.json``, ``status.json`` (+ an uncompacted
``journal.jsonl`` if the driver died), ``.cheetah/report.json``, and one
``result.json`` per really-executed run.  :func:`ingest_directory`
folds all of it into the store so the §II-C catalog queries run over
SQL, and :func:`export_directory` goes the other way, materializing the
per-run JSON files for human inspection.

The migration trusts exactly what resume trusts: run statuses are the
base ``status.json`` *overlaid with the checkpoint journal* (later
lines win), read through
:class:`repro.resilience.CampaignCheckpoint` — so migrating a
crashed-mid-campaign directory lands the same pending set a resumed
driver would compute.
"""

from __future__ import annotations

from pathlib import Path

from repro.cheetah.directory import CampaignDirectory, resolve_campaign_dir


def ingest_directory(store, root: str | Path) -> dict:
    """Ingest one campaign directory into ``store``.

    Returns a summary dict: ``campaign``, ``runs`` (registered),
    ``results`` (outcomes ingested from ``result.json`` files),
    ``statuses`` (rows recorded), ``reports`` (reports merged).
    """
    directory = resolve_campaign_dir(root)
    manifest = directory.manifest
    store.ensure_campaign(manifest)

    # Status: what resume would trust — base record + journal overlay.
    from repro.resilience.checkpoint import CampaignCheckpoint

    statuses = CampaignCheckpoint(directory).effective_status()
    store.set_statuses(manifest.campaign, statuses)

    results = 0
    for run in manifest.runs:
        payload = _read_result_file(directory, run.run_id)
        if payload is None:
            continue
        store.add_result(
            manifest.campaign,
            run.run_id,
            status=payload.get("status", "done"),
            value=payload.get("value"),
            error=payload.get("error"),
            traceback=payload.get("traceback"),
            elapsed=payload.get("elapsed"),
            attempts=payload.get("attempts", 1),
            seed=payload.get("seed"),
        )
        results += 1
    store.flush()

    reports = directory.read_report()
    if reports:
        store.record_reports(manifest.campaign, reports)

    return {
        "campaign": manifest.campaign,
        "runs": len(manifest.runs),
        "results": results,
        "statuses": len(statuses),
        "reports": len(reports),
    }


def _read_result_file(directory: CampaignDirectory, run_id: str) -> dict | None:
    """One run's ``result.json`` payload — *files only*, so migration
    never reads back what a partially-ingested store already holds."""
    from repro._util import loads_tagged

    path = directory.run_dir(run_id) / "result.json"
    if not path.exists():
        return None
    return loads_tagged(path.read_text())


def export_directory(store, root: str | Path) -> int:
    """Materialize per-run ``result.json`` files from the store.

    The inverse of :func:`ingest_directory`'s result pass — the opt-in
    human-inspection export.  Returns the number of files written.
    """
    directory = resolve_campaign_dir(root)
    campaign = directory.manifest.campaign
    written = 0
    for run in directory.manifest.runs:
        payload = store.read_run_result(campaign, run.run_id)
        if payload is None:
            continue
        directory.write_run_result(run.run_id, payload)
        written += 1
    return written
