"""Pluggable storage engines behind the campaign store.

The store speaks plain DB-API through a tiny engine contract
(:class:`StorageEngine`), so the SQL backend is swappable: sqlite ships
in-tree (zero dependencies, one file per campaign directory), and a
server-class engine (PostgreSQL, DuckDB, ...) plugs in by registering a
factory under a URL scheme — the ingestion batching and the catalog
query pushdown above this layer do not change.

Resolution rules (:func:`engine_for`)::

    ":memory:"              -> in-memory sqlite (tests, scratch queries)
    "sqlite:///path/to.db"  -> sqlite at that path
    any other path          -> sqlite at that path
    "scheme://..."          -> the engine registered for "scheme"
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path


class StorageEngine:
    """The engine contract: connect, and describe your SQL dialect.

    Subclasses provide :meth:`connect` returning a DB-API connection.
    ``placeholder`` is the parameter marker the dialect uses (sqlite and
    DuckDB use ``?``; a PostgreSQL engine would use ``%s``), and
    ``name`` labels the engine in diagnostics.
    """

    name = "abstract"
    placeholder = "?"

    def connect(self):
        """Return a new DB-API connection to the underlying database."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable location of the data (for CLI output)."""
        return self.name


class SqliteEngine(StorageEngine):
    """The in-tree engine: one sqlite file (or ``":memory:"``).

    Connections are tuned for the store's write pattern — WAL journal
    (concurrent readers during bulk ingestion), ``synchronous=NORMAL``
    (fsync at WAL checkpoints: durable against process crash, fast for
    chunked batches), and foreign keys enforced.  ``check_same_thread``
    is disabled because the store serializes access with its own lock;
    the campaign service runs drives on worker threads.
    """

    name = "sqlite"

    def __init__(self, path: str | Path = ":memory:"):
        self.path = str(path)

    def connect(self) -> sqlite3.Connection:
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.path, check_same_thread=False)
        conn.execute("PRAGMA foreign_keys = ON")
        if self.path != ":memory:":
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
        return conn

    def describe(self) -> str:
        return f"sqlite://{self.path}"


#: Registered URL scheme -> engine factory ``fn(rest_of_url) -> StorageEngine``.
_ENGINES: dict = {}
_ENGINES_LOCK = threading.Lock()


def register_engine(scheme: str, factory) -> None:
    """Register ``factory(location) -> StorageEngine`` for a URL scheme.

    Registering an already-taken scheme raises — an engine silently
    hijacking ``sqlite://`` would redirect every campaign store.
    """
    with _ENGINES_LOCK:
        if scheme in _ENGINES:
            raise ValueError(f"storage engine scheme {scheme!r} already registered")
        _ENGINES[scheme] = factory


def registered_engines() -> tuple:
    """The registered URL schemes, sorted."""
    with _ENGINES_LOCK:
        return tuple(sorted(_ENGINES))


def engine_for(url: str | Path | StorageEngine) -> StorageEngine:
    """Resolve a URL, path, or ready engine to a :class:`StorageEngine`."""
    if isinstance(url, StorageEngine):
        return url
    text = str(url)
    if text == ":memory:":
        return SqliteEngine(":memory:")
    if "://" in text:
        scheme, _, location = text.partition("://")
        with _ENGINES_LOCK:
            factory = _ENGINES.get(scheme)
        if factory is None:
            raise ValueError(
                f"no storage engine registered for scheme {scheme!r} "
                f"(registered: {sorted(_ENGINES)})"
            )
        return factory(location)
    return SqliteEngine(text)


register_engine("sqlite", lambda location: SqliteEngine(location or ":memory:"))
