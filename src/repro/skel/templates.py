"""A small text-template engine, built from scratch.

Syntax
------
- ``${name}`` — substitute a context variable; dotted lookup
  (``${machine.nodes}``) descends through mappings and attributes.
- ``${name|filter}`` — apply a named filter; available filters:
  ``upper``, ``lower``, ``int``, ``len``, ``json``, ``basename``.
- ``{% for item in items %} ... {% endfor %}`` — iterate; inside the body
  ``${item}`` (and ``${loop.index}``, 0-based) are available.
- ``{% if expr %} ... {% elif expr %} ... {% else %} ... {% endif %}`` —
  conditionals; ``expr`` is a dotted name (truthiness), optionally negated
  with ``not``, or a comparison ``name == literal`` / ``name != literal``
  where the literal is a quoted string or a number.
- ``$$`` — a literal ``$``.

Undefined variables raise :class:`TemplateError` rather than silently
rendering empty — generated scripts with holes are exactly the technical
debt Skel exists to remove.
"""

from __future__ import annotations

import json
import posixpath
import re
from dataclasses import dataclass
from typing import Any, Callable


class TemplateError(ValueError):
    """Malformed template syntax or failed variable lookup."""


FILTERS: dict[str, Callable[[Any], Any]] = {
    "upper": lambda v: str(v).upper(),
    "lower": lambda v: str(v).lower(),
    "int": lambda v: int(v),
    "len": lambda v: len(v),
    "json": lambda v: json.dumps(v, sort_keys=True),
    "basename": lambda v: posixpath.basename(str(v)),
}

_TOKEN_RE = re.compile(
    r"""
    (?P<escape>\$\$)
  | \$\{(?P<var>[^{}]+)\}
  | \{%\s*(?P<tag>.*?)\s*%\}
    """,
    re.VERBOSE,
)

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*$")


def _lookup(context: dict, dotted: str) -> Any:
    """Resolve ``a.b.c`` through mappings and attributes."""
    parts = dotted.split(".")
    if parts[0] not in context:
        raise TemplateError(f"undefined template variable: {parts[0]!r}")
    value = context[parts[0]]
    for part in parts[1:]:
        if isinstance(value, dict):
            if part not in value:
                raise TemplateError(f"undefined template variable: {dotted!r}")
            value = value[part]
        elif hasattr(value, part):
            value = getattr(value, part)
        else:
            raise TemplateError(f"undefined template variable: {dotted!r}")
    return value


# ---------------------------------------------------------------------------
# AST nodes


@dataclass
class _Text:
    text: str

    def render(self, context: dict, out: list) -> None:
        out.append(self.text)


@dataclass
class _Var:
    dotted: str
    filters: tuple

    def render(self, context: dict, out: list) -> None:
        value = _lookup(context, self.dotted)
        for name in self.filters:
            try:
                fn = FILTERS[name]
            except KeyError:
                raise TemplateError(f"unknown filter: {name!r}") from None
            value = fn(value)
        out.append(str(value))


@dataclass
class _For:
    var: str
    iterable: str
    body: list

    def render(self, context: dict, out: list) -> None:
        items = _lookup(context, self.iterable)
        try:
            iterator = iter(items)
        except TypeError:
            raise TemplateError(
                f"{self.iterable!r} is not iterable (got {type(items).__name__})"
            ) from None
        for i, item in enumerate(iterator):
            child = dict(context)
            child[self.var] = item
            child["loop"] = {"index": i, "first": i == 0}
            for node in self.body:
                node.render(child, out)


@dataclass
class _If:
    # list of (condition-or-None, body); None means 'else'
    branches: list
    condition_names: list  # root variable names read by the conditions

    def render(self, context: dict, out: list) -> None:
        for condition, body in self.branches:
            if condition is None or condition(context):
                for node in body:
                    node.render(context, out)
                return


# ---------------------------------------------------------------------------
# Expression parsing for {% if %}

_LITERAL_RE = re.compile(r"""^('(?P<sq>[^']*)'|"(?P<dq>[^"]*)"|(?P<num>-?\d+(\.\d+)?))$""")


def _parse_literal(text: str):
    m = _LITERAL_RE.match(text.strip())
    if not m:
        raise TemplateError(f"expected a quoted string or number literal, got {text!r}")
    if m.group("sq") is not None:
        return m.group("sq")
    if m.group("dq") is not None:
        return m.group("dq")
    num = m.group("num")
    return float(num) if "." in num else int(num)


def _compile_condition(expr: str) -> tuple[Callable[[dict], bool], str]:
    """Compile an if-expression; returns (predicate, root variable name)."""
    expr = expr.strip()
    for op, test in (("==", lambda a, b: a == b), ("!=", lambda a, b: a != b)):
        if op in expr:
            left, right = expr.split(op, 1)
            left = left.strip()
            if not _NAME_RE.match(left):
                raise TemplateError(f"invalid name in condition: {left!r}")
            literal = _parse_literal(right)
            return (
                lambda ctx, l=left, lit=literal, t=test: t(_lookup(ctx, l), lit),
                left.split(".")[0],
            )
    negate = False
    if expr.startswith("not "):
        negate = True
        expr = expr[4:].strip()
    if not _NAME_RE.match(expr):
        raise TemplateError(f"invalid condition expression: {expr!r}")
    return (
        lambda ctx, name=expr, neg=negate: bool(_lookup(ctx, name)) ^ neg,
        expr.split(".")[0],
    )


# ---------------------------------------------------------------------------
# Parser

_FOR_RE = re.compile(r"^for\s+([A-Za-z_][A-Za-z0-9_]*)\s+in\s+(.+)$")


def _parse(text: str) -> list:
    """Parse template text into an AST node list."""
    nodes: list = []
    # stack of (kind, payload) frames for nested blocks
    stack: list[tuple[str, Any, list]] = []
    current = nodes
    pos = 0
    for match in _TOKEN_RE.finditer(text):
        if match.start() > pos:
            current.append(_Text(text[pos : match.start()]))
        pos = match.end()
        if match.group("escape") is not None:
            current.append(_Text("$"))
        elif match.group("var") is not None:
            raw = match.group("var").strip()
            parts = [p.strip() for p in raw.split("|")]
            dotted, filters = parts[0], tuple(parts[1:])
            if not _NAME_RE.match(dotted):
                raise TemplateError(f"invalid variable reference: {raw!r}")
            current.append(_Var(dotted=dotted, filters=filters))
        else:
            tag = match.group("tag")
            if tag.startswith("for "):
                m = _FOR_RE.match(tag)
                if not m:
                    raise TemplateError(f"malformed for tag: {{% {tag} %}}")
                iterable = m.group(2).strip()
                if not _NAME_RE.match(iterable):
                    raise TemplateError(f"invalid iterable name: {iterable!r}")
                body: list = []
                stack.append(("for", (m.group(1), iterable), current))
                current = body
            elif tag == "endfor":
                if not stack or stack[-1][0] != "for":
                    raise TemplateError("endfor without matching for")
                _kind, (var, iterable), parent = stack.pop()
                parent.append(_For(var=var, iterable=iterable, body=current))
                current = parent
            elif tag.startswith("if "):
                predicate, root = _compile_condition(tag[3:])
                node = _If(branches=[(predicate, [])], condition_names=[root])
                stack.append(("if", node, current))
                current = node.branches[0][1]
            elif tag.startswith("elif "):
                if not stack or stack[-1][0] != "if":
                    raise TemplateError("elif without matching if")
                node = stack[-1][1]
                if node.branches[-1][0] is None:
                    raise TemplateError("elif after else")
                body = []
                predicate, root = _compile_condition(tag[5:])
                node.branches.append((predicate, body))
                node.condition_names.append(root)
                current = body
            elif tag == "else":
                if not stack or stack[-1][0] != "if":
                    raise TemplateError("else without matching if")
                node = stack[-1][1]
                if node.branches[-1][0] is None:
                    raise TemplateError("duplicate else")
                body = []
                node.branches.append((None, body))
                current = body
            elif tag == "endif":
                if not stack or stack[-1][0] != "if":
                    raise TemplateError("endif without matching if")
                _kind, node, parent = stack.pop()
                parent.append(node)
                current = parent
            else:
                raise TemplateError(f"unknown tag: {{% {tag} %}}")
    if stack:
        raise TemplateError(f"unclosed {stack[-1][0]} block")
    if pos < len(text):
        current.append(_Text(text[pos:]))
    return nodes


class Template:
    """A compiled template.

    Example
    -------
    >>> Template("hello ${who|upper}").render({"who": "world"})
    'hello WORLD'
    >>> Template("{% for f in files %}${loop.index}:${f} {% endfor %}").render(
    ...     {"files": ["a", "b"]})
    '0:a 1:b '
    """

    def __init__(self, text: str):
        self.text = text
        self._nodes = _parse(text)

    def render(self, context: dict) -> str:
        """Render with ``context``; unknown variables raise TemplateError."""
        out: list[str] = []
        for node in self._nodes:
            node.render(dict(context), out)
        return "".join(out)

    def variables(self) -> set:
        """Top-level names the template reads (for model validation)."""
        names: set[str] = set()

        def walk(nodes, bound):
            for node in nodes:
                if isinstance(node, _Var):
                    root = node.dotted.split(".")[0]
                    if root not in bound:
                        names.add(root)
                elif isinstance(node, _For):
                    root = node.iterable.split(".")[0]
                    if root not in bound:
                        names.add(root)
                    walk(node.body, bound | {node.var, "loop"})
                elif isinstance(node, _If):
                    for root in node.condition_names:
                        if root not in bound:
                            names.add(root)
                    for _cond, body in node.branches:
                        walk(body, bound)

        walk(self._nodes, set())
        return names
