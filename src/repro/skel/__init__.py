"""Skel: model-driven code generation (§IV).

Skel "couples a model of a desired action with one or more textual
templates that drive the creation of files that implement the action".
The user edits a small JSON model — the single point of interaction — and
every concrete artifact (submit scripts, paste scripts, campaign specs,
communication components) is regenerated from it.

- :mod:`repro.skel.templates` — a small template engine built from scratch
  (``${var}`` substitution, ``{% for %}``/``{% if %}`` blocks, filters,
  strict undefined-variable errors).
- :mod:`repro.skel.model` — :class:`SkelModel` and :class:`ModelSchema`:
  typed, validated generation models loadable from JSON.
- :mod:`repro.skel.generator` — :class:`TemplateLibrary` and
  :class:`Generator`: model + templates → a file set, stamped with the
  model fingerprint so staleness is machine-checkable ("no debt accrues
  from code that can be efficiently deleted and regenerated").
- :mod:`repro.skel.library` — the built-in template set used by the
  experiments (GWAS paste workflow, submit scripts, campaign specs,
  dataflow communication components) plus the *traditional* hand-edited
  script with its manual fields marked, for the Figure 2 comparison.
"""

from repro.skel.templates import Template, TemplateError
from repro.skel.model import ModelField, ModelSchema, SkelModel, ModelValidationError
from repro.skel.generator import (
    TemplateLibrary,
    Generator,
    GeneratedFile,
    GENERATED_HEADER_PREFIX,
    model_fingerprint,
    is_stale,
    plan_regeneration,
    regenerate,
)
from repro.skel.relations import (
    ModelRelation,
    RelationViolation,
    check_relations,
    enforce_relations,
    paste_relations,
)
from repro.skel.library import (
    builtin_library,
    paste_model_schema,
    traditional_paste_script,
    count_manual_fields,
    MANUAL_FIELD_PATTERN,
)

__all__ = [
    "Template",
    "TemplateError",
    "ModelField",
    "ModelSchema",
    "SkelModel",
    "ModelValidationError",
    "TemplateLibrary",
    "Generator",
    "GeneratedFile",
    "GENERATED_HEADER_PREFIX",
    "model_fingerprint",
    "is_stale",
    "plan_regeneration",
    "regenerate",
    "ModelRelation",
    "RelationViolation",
    "check_relations",
    "enforce_relations",
    "paste_relations",
    "builtin_library",
    "paste_model_schema",
    "traditional_paste_script",
    "count_manual_fields",
    "MANUAL_FIELD_PATTERN",
]
