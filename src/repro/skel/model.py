"""Skel generation models.

"By defining a model that is a concise representation of the user
decisions required for an action, and automating the way that the elements
of the model impact the code, we can avoid the need for a user to have
extensive interactions with the code itself" (§IV).

A :class:`SkelModel` is a named bag of validated values — loadable from
the JSON file that is "the single point of user interaction" in the GWAS
experiment (§V-A).  A :class:`ModelSchema` types and documents the fields,
which is what makes the model *machine-actionable*: the customizability
gauge's MODELED tier requires exactly this formalized variable
identification.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


class ModelValidationError(ValueError):
    """A model value violates its schema."""


_TYPES = {
    "string": str,
    "int": int,
    "float": (int, float),
    "bool": bool,
    "list": list,
    "dict": dict,
}


@dataclass(frozen=True)
class ModelField:
    """One user decision in a generation model."""

    name: str
    type: str = "string"
    required: bool = True
    default: Any = None
    description: str = ""
    choices: tuple = ()

    def __post_init__(self) -> None:
        if self.type not in _TYPES:
            raise ValueError(
                f"unknown field type {self.type!r}; expected one of {sorted(_TYPES)}"
            )

    def validate(self, value: Any) -> Any:
        expected = _TYPES[self.type]
        if self.type == "float" and isinstance(value, bool):
            raise ModelValidationError(f"field {self.name!r}: bool is not a float")
        if self.type == "int" and isinstance(value, bool):
            raise ModelValidationError(f"field {self.name!r}: bool is not an int")
        if not isinstance(value, expected):
            raise ModelValidationError(
                f"field {self.name!r}: expected {self.type}, got {type(value).__name__}"
            )
        if self.choices and value not in self.choices:
            raise ModelValidationError(
                f"field {self.name!r}: {value!r} not in choices {self.choices}"
            )
        return value


@dataclass(frozen=True)
class ModelSchema:
    """Typed field inventory of a generation model."""

    name: str
    fields: tuple = ()
    description: str = ""

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate field names in schema {self.name!r}")

    def field(self, name: str) -> ModelField:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(name)

    def field_names(self) -> tuple:
        return tuple(f.name for f in self.fields)

    def validate(self, values: dict) -> dict:
        """Return a complete, validated value dict (defaults filled in)."""
        out: dict[str, Any] = {}
        unknown = set(values) - set(self.field_names())
        if unknown:
            raise ModelValidationError(
                f"unknown model fields for schema {self.name!r}: {sorted(unknown)}"
            )
        for f in self.fields:
            if values.get(f.name) is not None:
                out[f.name] = f.validate(values[f.name])
            elif f.name in values and not f.required:
                # explicit null for an optional field means "use the default"
                out[f.name] = f.default
            elif f.required and f.default is None:
                raise ModelValidationError(
                    f"missing required model field {f.name!r} (schema {self.name!r})"
                )
            else:
                out[f.name] = f.default
        return out


@dataclass
class SkelModel:
    """A validated generation model: schema + concrete values.

    The ``values`` mapping is the template-render context; ``params()``
    returns it augmented with the model name.
    """

    schema: ModelSchema
    values: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = self.schema.validate(self.values)

    def __getitem__(self, name: str) -> Any:
        return self.values[name]

    def updated(self, **changes) -> "SkelModel":
        """Return a new model with ``changes`` applied (re-validated).

        This is "the user simply updates the model to reflect the current
        task" — the one edit a new run configuration requires.
        """
        merged = dict(self.values)
        merged.update(changes)
        return SkelModel(schema=self.schema, values=merged)

    def params(self) -> dict:
        ctx = dict(self.values)
        ctx["model_name"] = self.schema.name
        return ctx

    # -- JSON round-trip ---------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"schema": self.schema.name, "values": self.values},
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text_or_path, schema: ModelSchema) -> "SkelModel":
        """Load values from a JSON string or file path against ``schema``."""
        if isinstance(text_or_path, Path):
            text = text_or_path.read_text()
        else:
            text = text_or_path
            p = Path(text_or_path)
            try:
                if p.exists():
                    text = p.read_text()
            except OSError:
                pass  # long/invalid paths: treat as raw JSON text
        data = json.loads(text)
        values = data.get("values", data)
        declared = data.get("schema")
        if declared is not None and declared != schema.name:
            raise ModelValidationError(
                f"model declares schema {declared!r}, expected {schema.name!r}"
            )
        return cls(schema=schema, values=values)
