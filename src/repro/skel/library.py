"""Built-in template library and the Figure 2 baseline script.

The library holds the templates the experiments instantiate: the GWAS
two-phase paste scripts, a batch submit script, the campaign spec consumed
by Cheetah, and a progress/status query script.  The *traditional* script
— the left side of Figure 2, with every hand-edited field marked — lives
here too, so the manual-intervention comparison is computed from real
artifacts rather than asserted.

Manual fields in the traditional script are marked ``<<EDIT:name>>``; the
marker stands for a value the user must locate and overwrite for every new
run configuration (the paper's red text).
"""

from __future__ import annotations

import re

from repro.skel.generator import TemplateLibrary
from repro.skel.model import ModelField, ModelSchema

#: Matches one manual-intervention marker in a traditional script.
MANUAL_FIELD_PATTERN = re.compile(r"<<EDIT:(?P<name>[a-zA-Z0-9_\-]+)>>")


def count_manual_fields(text: str) -> dict:
    """Count manual-edit markers in a script.

    Returns ``{"total": occurrences, "unique": distinct field names,
    "fields": sorted names}``.
    """
    names = MANUAL_FIELD_PATTERN.findall(text)
    return {"total": len(names), "unique": len(set(names)), "fields": sorted(set(names))}


def paste_model_schema() -> ModelSchema:
    """The focused model for the GWAS paste operation (§V-A).

    Mirrors the paper: dataset under consideration (path and naming
    conventions), machine-specific resource details, and pasting strategy.
    """
    return ModelSchema(
        name="gwas-paste",
        description="Column-wise paste of many tabular files into one.",
        fields=(
            ModelField("dataset_dir", "string", description="directory of input tables"),
            ModelField("file_pattern", "string", description="input naming convention glob"),
            ModelField("output_file", "string", description="final pasted output path"),
            ModelField("num_files", "int", description="number of input files"),
            ModelField(
                "group_size",
                "int",
                required=False,
                default=100,
                description="files per sub-paste (FS bottleneck guard)",
            ),
            ModelField(
                "strategy",
                "string",
                required=False,
                default="two-phase",
                choices=("single", "two-phase"),
                description="pasting strategy",
            ),
            ModelField("machine_name", "string", description="target system name"),
            ModelField("account", "string", description="allocation account"),
            ModelField("queue", "string", required=False, default="batch"),
            ModelField("nodes", "int", required=False, default=1),
            ModelField("walltime_minutes", "int", required=False, default=120),
            ModelField(
                "groups",
                "list",
                required=False,
                description="derived sub-paste groups (filled by the workflow)",
            ),
        ),
    )


_SUBJOB_TEMPLATE = """#!/bin/bash
# sub-paste ${group.index} of ${model_name}: files ${group.start}..${group.stop}
set -euo pipefail
cd ${dataset_dir}
paste $(ls ${file_pattern} | sed -n '${group.sed_start},${group.sed_stop}p') \\
  > subpaste_${group.index}.tsv
"""

_FINAL_TEMPLATE = """#!/bin/bash
# final join of ${model_name}
set -euo pipefail
cd ${dataset_dir}
paste {% for g in groups %}subpaste_${g.index}.tsv {% endfor %}> ${output_file}
rm -f {% for g in groups %}subpaste_${g.index}.tsv {% endfor %}
"""

_SUBMIT_TEMPLATE = """#!/bin/bash
#BSUB -P ${account}
#BSUB -q ${queue}
#BSUB -W ${walltime_minutes}
#BSUB -nnodes ${nodes}
#BSUB -J ${model_name}
# Submit the generated campaign on ${machine_name}; the workflow engine
# tracks task completion, so no manual per-subjob submission is needed.
exec ./run_campaign.sh
"""

_CAMPAIGN_SPEC_TEMPLATE = """{
  "campaign": "${model_name}",
  "machine": "${machine_name}",
  "strategy": "${strategy}",
  "tasks": [
{% for g in groups %}    {"name": "subpaste-${g.index}", "script": "subpaste_${g.index}.sh"}{% if not g.last %},{% endif %}
{% endfor %}    ,{"name": "final-join", "script": "final_join.sh", "after": "subpastes"}
  ]
}
"""

_STATUS_TEMPLATE = """#!/bin/bash
# query progress of ${model_name} on ${machine_name}
set -euo pipefail
done=$(ls ${dataset_dir}/subpaste_*.tsv 2>/dev/null | wc -l)
echo "subpastes complete: $done / ${groups|len}"
test -f ${output_file} && echo "final join: complete" || echo "final join: pending"
"""


def builtin_library() -> TemplateLibrary:
    """The template set used by the GWAS experiment and the Fig 2 bench."""
    lib = TemplateLibrary()
    lib.add("subjob", "subpaste_${group.index}.sh", _SUBJOB_TEMPLATE)
    lib.add("final-join", "final_join.sh", _FINAL_TEMPLATE)
    lib.add("submit", "submit_${model_name}.sh", _SUBMIT_TEMPLATE)
    lib.add("campaign-spec", "campaign_${model_name}.json", _CAMPAIGN_SPEC_TEMPLATE, comment=None)
    lib.add("status", "status_${model_name}.sh", _STATUS_TEMPLATE)
    return lib


def traditional_paste_script() -> str:
    """The Figure 2 left-hand side: one hand-maintained script.

    Every ``<<EDIT:...>>`` marker is a field the user edits by hand — and
    the subset bounds must be re-edited *for every sub-paste job*, then the
    whole file edited again for the final join and for any failed-job
    resubmission.
    """
    return """#!/bin/bash
#BSUB -P <<EDIT:account>>
#BSUB -q <<EDIT:queue>>
#BSUB -W <<EDIT:walltime>>
#BSUB -nnodes <<EDIT:nodes>>
#BSUB -J <<EDIT:job_name>>
set -euo pipefail

# --- hand-configured for each dataset ---
DATA_DIR=<<EDIT:dataset_dir>>
PATTERN="<<EDIT:file_pattern>>"
OUT=<<EDIT:output_file>>

# --- hand-partitioned: edit bounds for EACH sub-paste job, resubmit each ---
START=<<EDIT:subset_start>>
STOP=<<EDIT:subset_stop>>
SUBSET_OUT=subpaste_<<EDIT:subset_index>>.tsv

cd "$DATA_DIR"
paste $(ls $PATTERN | sed -n "${START},${STOP}p") > "$SUBSET_OUT"

# --- after ALL subjobs: comment the block above, uncomment below, resubmit ---
# paste <<EDIT:subpaste_file_list>> > "$OUT"

# --- failed subjobs: re-check bsub output by hand, fix bounds, resubmit ---
# bkill <<EDIT:failed_job_id>>
"""
