"""Machine-actionable parameter relations (the RELATED tier, §III).

"At the next tier of model parameterization, the customization profile
would also include understanding of how different variables are related
to one another."  A :class:`ModelRelation` is that understanding in
executable form: named variables, a predicate over the model values, and
a human message for when it fails.  Relations are checked at model
validation time, so an invalid combination is caught before anything is
generated — one more class of manual debugging converted to automation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.skel.model import ModelValidationError, SkelModel


@dataclass(frozen=True)
class ModelRelation:
    """One inter-parameter constraint on a generation model."""

    name: str
    variables: tuple
    predicate: Callable[[dict], bool]
    message: str

    def __post_init__(self) -> None:
        if not self.variables:
            raise ValueError(f"relation {self.name!r} names no variables")
        if not callable(self.predicate):
            raise ValueError(f"relation {self.name!r}: predicate must be callable")

    def holds(self, values: dict) -> bool:
        missing = [v for v in self.variables if v not in values]
        if missing:
            raise KeyError(
                f"relation {self.name!r}: model lacks variables {missing}"
            )
        return bool(self.predicate(values))


@dataclass(frozen=True)
class RelationViolation:
    """A failed relation with its offending values."""

    relation: ModelRelation
    values: dict

    def describe(self) -> str:
        shown = {v: self.values[v] for v in self.relation.variables}
        return f"{self.relation.name}: {self.relation.message} (got {shown})"


def check_relations(model: SkelModel, relations) -> list[RelationViolation]:
    """Evaluate every relation; returns the violations (empty = valid)."""
    violations = []
    for relation in relations:
        if not relation.holds(model.values):
            violations.append(RelationViolation(relation=relation, values=dict(model.values)))
    return violations


def enforce_relations(model: SkelModel, relations) -> SkelModel:
    """Raise :class:`ModelValidationError` on any violation; returns the model."""
    violations = check_relations(model, relations)
    if violations:
        raise ModelValidationError(
            "model violates parameter relations:\n  "
            + "\n  ".join(v.describe() for v in violations)
        )
    return model


def paste_relations() -> tuple:
    """The relations of the GWAS paste model (§V-A)."""
    return (
        ModelRelation(
            name="group-fits-dataset",
            variables=("group_size", "num_files"),
            predicate=lambda v: v["group_size"] <= v["num_files"],
            message="sub-paste group size cannot exceed the file count",
        ),
        ModelRelation(
            name="two-phase-needs-groups",
            variables=("strategy", "group_size", "num_files"),
            predicate=lambda v: v["strategy"] != "two-phase"
            or v["num_files"] > v["group_size"],
            message="two-phase pasting is pointless with a single group; "
            "use strategy='single'",
        ),
        ModelRelation(
            name="fan-in-bounded",
            variables=("group_size",),
            predicate=lambda v: v["group_size"] <= 1000,
            message="sub-paste fan-in above ~1000 files hits the filesystem "
            "metadata knee the two-phase strategy exists to avoid",
        ),
    )
