"""Application substrates used by the paper's experiments.

- :mod:`repro.apps.gwas` — the GWAS preprocessing workflow of §II-A/§V-A.
- :mod:`repro.apps.irf` — iterative random forests and iRF-LOOP
  (§II-B/§V-D), implemented from scratch.
- :mod:`repro.apps.simulation` — the reaction-diffusion benchmark and
  checkpoint-restart middleware of §V-B.
"""
