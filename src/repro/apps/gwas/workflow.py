"""The Skel-driven GWAS paste workflow (§V-A, Figure 2).

"We have defined a focused model for the paste operation ... This model
is provided as a JSON input file and is the single point of user
interaction."  This module derives the sub-paste groups from the model,
generates every artifact (sub-paste scripts, final join, submit script,
campaign spec, status script), executes the plan for real on real files,
and quantifies the manual-intervention collapse against the traditional
script.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.apps.gwas.paste import two_phase_paste
from repro.cheetah.campaign import AppSpec, Campaign, Sweep
from repro.cheetah.parameters import SweepParameter
from repro.gauges.model import (
    ComponentKind,
    DataPort,
    SoftwareMetadata,
    WorkflowComponent,
)
from repro.metadata.access import AccessInterface, AccessProtocol, DataAccessDescriptor, QueryCapability
from repro.metadata.schema import DataSchema, Field
from repro.metadata.semantics import ConsumptionPattern, DataSemanticsDescriptor, Ordering
from repro.skel.generator import Generator
from repro.skel.library import builtin_library, count_manual_fields, paste_model_schema, traditional_paste_script
from repro.skel.model import SkelModel


def derive_groups(num_files: int, group_size: int) -> list[dict]:
    """Partition ``num_files`` inputs into sub-paste groups for the templates.

    Each group dict carries template-facing fields: 0-based ``start``/
    ``stop`` (half-open), 1-based ``sed_start``/``sed_stop`` (the shell
    scripts slice `ls` output with sed), and a ``last`` flag for JSON
    comma placement.
    """
    if num_files <= 0:
        raise ValueError(f"num_files must be > 0, got {num_files}")
    if group_size <= 0:
        raise ValueError(f"group_size must be > 0, got {group_size}")
    groups = []
    for idx, start in enumerate(range(0, num_files, group_size)):
        stop = min(start + group_size, num_files)
        groups.append(
            {
                "index": idx,
                "start": start,
                "stop": stop,
                "sed_start": start + 1,
                "sed_stop": stop,
                "last": False,
            }
        )
    groups[-1]["last"] = True
    return groups


@dataclass
class GwasPasteWorkflow:
    """A fully derived paste workflow: model + generated artifacts."""

    model: SkelModel
    files: list  # list[GeneratedFile]
    groups: list

    @classmethod
    def from_model(cls, model: SkelModel) -> "GwasPasteWorkflow":
        """Derive groups and generate every artifact from the user model."""
        groups = derive_groups(model["num_files"], model["group_size"])
        derived = model.updated(groups=groups)
        generator = Generator(builtin_library())
        files = generator.generate(
            derived, ["final-join", "submit", "campaign-spec", "status"]
        )
        files += generator.generate_per_item(derived, "subjob", "group", groups)
        return cls(model=derived, files=files, groups=groups)

    @classmethod
    def from_json(cls, text_or_path) -> "GwasPasteWorkflow":
        """The paper's entry point: a JSON model file in, a workflow out."""
        return cls.from_model(SkelModel.from_json(text_or_path, paste_model_schema()))

    def write_to(self, root: Path) -> list[Path]:
        return [f.write_to(Path(root)) for f in self.files]

    def campaign(self) -> Campaign:
        """The Cheetah campaign driving the sub-paste tasks."""
        camp = Campaign(
            self.model.schema.name,
            app=AppSpec("gwas-paste", executable="paste"),
            objective="column-wise paste of genotype chunks",
        )
        sg = camp.sweep_group(
            "subpastes",
            nodes=self.model["nodes"],
            walltime=self.model["walltime_minutes"] * 60.0,
        )
        sg.add(Sweep([SweepParameter("group", [g["index"] for g in self.groups])]))
        return camp

    def execute_local(self, data_dir: Path, out_name: str | None = None) -> dict:
        """Run the paste plan for real against files in ``data_dir``."""
        data_dir = Path(data_dir)
        paths = sorted(data_dir.glob(self.model["file_pattern"]))
        if len(paths) != self.model["num_files"]:
            raise ValueError(
                f"model declares {self.model['num_files']} files, "
                f"glob {self.model['file_pattern']!r} matched {len(paths)}"
            )
        out = data_dir / (out_name or self.model["output_file"])
        return two_phase_paste(paths, out, group_size=self.model["group_size"])


def manual_vs_generated(num_files: int, group_size: int) -> dict:
    """The Figure 2 numbers: manual edits per new run configuration.

    Traditional script: every marked field is edited once, then the three
    subset fields are re-edited (and the job resubmitted) for *each*
    additional sub-paste job, plus one final-join edit pass.  Skel: the
    user edits the JSON model once; everything regenerates.
    """
    counts = count_manual_fields(traditional_paste_script())
    n_groups = len(derive_groups(num_files, group_size))
    per_subjob_fields = 3  # subset_start / subset_stop / subset_index
    traditional = (
        counts["unique"]  # first full configuration pass
        + per_subjob_fields * (n_groups - 1)  # re-edit bounds per extra subjob
        + 1  # final-join switch-over edit
    )
    return {
        "n_groups": n_groups,
        "traditional_unique_fields": counts["unique"],
        "traditional_edits_per_configuration": traditional,
        "skel_edits_per_configuration": 1,  # update the JSON model
        "reduction_factor": traditional / 1.0,
        "manual_fields": counts["fields"],
    }


def workflow_components_before_after() -> tuple[WorkflowComponent, WorkflowComponent]:
    """The §V-A refactoring as gauge-model components.

    *Before*: the traditional hand-edited script — a black-box executable
    over opaque files.  *After*: the Skel+Cheetah workflow — declared
    formats, consumption semantics, a generation model, and campaign
    provenance.  Feed these to :func:`repro.gauges.assess` /
    :func:`repro.gauges.debt.score` to reproduce the debt collapse.
    """
    before = WorkflowComponent(
        name="gwas-paste-traditional",
        description="hand-maintained two-phase paste script",
        ports=(
            DataPort(
                name="chunks",
                direction="in",
                access=DataAccessDescriptor(protocol=AccessProtocol.POSIX_FILE),
            ),
            DataPort(name="merged", direction="out"),
        ),
        software=SoftwareMetadata(kind=ComponentKind.EXECUTABLE),
    )
    tsv_schema = DataSchema(
        format_name="genotype-tsv",
        format_version="1",
        fields=(Field("snp_columns", "int8", ()), Field("samples", "int64", ())),
    )
    from repro.metadata.semantics import FormatLineage

    row_semantics = DataSemanticsDescriptor(
        ordering=Ordering.ORDERED,  # row i is sample i in every chunk
        consumption=ConsumptionPattern.BATCH,
        lineage=FormatLineage("genotype-tsv", ("1",), "1"),
    )
    from repro.metadata.provenance import CampaignContext, ExportPolicy

    after = WorkflowComponent(
        name="gwas-paste-skel",
        description="model-generated paste workflow (Skel + Cheetah)",
        ports=(
            DataPort(
                name="chunks",
                direction="in",
                access=DataAccessDescriptor(
                    protocol=AccessProtocol.POSIX_FILE,
                    interface=AccessInterface.DELIMITED_TEXT,
                    query=QueryCapability.LINEAR,
                ),
                schema=tsv_schema,
                semantics=row_semantics,
            ),
            DataPort(
                name="merged",
                direction="out",
                access=DataAccessDescriptor(
                    protocol=AccessProtocol.POSIX_FILE,
                    interface=AccessInterface.DELIMITED_TEXT,
                    query=QueryCapability.LINEAR,
                ),
                schema=tsv_schema,
                semantics=row_semantics,
            ),
        ),
        software=SoftwareMetadata(
            kind=ComponentKind.BUNDLED_WORKFLOW,
            config_template="gwas-paste templates",
            exposed_variables=tuple(paste_model_schema().field_names()),
            generation_model={"schema": "gwas-paste"},
            parameter_relations=(),
            has_execution_logs=True,
            campaign=CampaignContext(
                name="gwas-paste", objective="column-wise paste", swept_parameters=("group",)
            ),
            export_policy=ExportPolicy(),
        ),
    )
    return before, after
