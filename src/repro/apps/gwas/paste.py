"""Column-wise paste: the §V-A workload, for real and as a cost model.

"One particular step involves column-wise pasting of a large number of
individual tabular files into a single large file ... the paste
operations become very slow if too many files are merged at once.  Thus
there was a two-phase paste."

:func:`paste_files` and :func:`two_phase_paste` do the real work on real
files (streaming, never materializing a full matrix);
:func:`estimate_paste_time` carries the TB-scale argument using the
simulated filesystem's metadata-fan-in knee.
"""

from __future__ import annotations

import contextlib
from pathlib import Path

from repro._util import check_positive
from repro.cluster.filesystem import ParallelFilesystem


class PasteError(RuntimeError):
    """Inputs are not column-pasteable (missing files, ragged rows)."""


def paste_files(paths, out_path: Path, delimiter: str = "\t") -> Path:
    """Column-wise paste ``paths`` into ``out_path`` (UNIX ``paste`` semantics).

    Streams line-by-line with all inputs open simultaneously — faithfully
    reproducing why fan-in is the bottleneck resource.  Raises
    :class:`PasteError` if inputs have differing line counts.
    """
    paths = [Path(p) for p in paths]
    if not paths:
        raise PasteError("no input files")
    for p in paths:
        if not p.exists():
            raise PasteError(f"missing input file: {p}")
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with contextlib.ExitStack() as stack:
        handles = [stack.enter_context(open(p)) for p in paths]
        out = stack.enter_context(open(out_path, "w"))
        exhausted = False
        while not exhausted:
            lines = [h.readline() for h in handles]
            got = [bool(line) for line in lines]
            if not any(got):
                break
            if not all(got):
                ragged = [str(p) for p, g in zip(paths, got) if not g]
                raise PasteError(f"inputs have differing line counts; short: {ragged}")
            out.write(delimiter.join(line.rstrip("\n") for line in lines) + "\n")
    return out_path


def two_phase_paste(
    paths,
    out_path: Path,
    group_size: int,
    workdir: Path | None = None,
    delimiter: str = "\t",
) -> dict:
    """Two-phase paste: sub-pastes of ``group_size`` files, then a final join.

    Returns a metrics dict (``groups``, ``max_fan_in``, ``subpaste_paths``)
    so callers and tests can verify the fan-in bound the strategy exists
    to enforce.
    """
    check_positive("group_size", group_size)
    paths = [Path(p) for p in paths]
    if not paths:
        raise PasteError("no input files")
    out_path = Path(out_path)
    workdir = Path(workdir) if workdir is not None else out_path.parent
    workdir.mkdir(parents=True, exist_ok=True)
    sub_paths = []
    for gi in range(0, len(paths), group_size):
        group = paths[gi : gi + group_size]
        sub = workdir / f"subpaste_{gi // group_size:04d}.tsv"
        paste_files(group, sub, delimiter=delimiter)
        sub_paths.append(sub)
    paste_files(sub_paths, out_path, delimiter=delimiter)
    max_fan_in = max(
        len(sub_paths), max(min(group_size, len(paths) - gi) for gi in range(0, len(paths), group_size))
    )
    return {
        "out_path": out_path,
        "groups": len(sub_paths),
        "max_fan_in": max_fan_in,
        "subpaste_paths": sub_paths,
    }


def split_columns(path: Path, n_parts: int, outdir: Path, delimiter: str = "\t") -> list[Path]:
    """Inverse of paste: split a table's columns into ``n_parts`` files.

    Column counts differ by at most one across parts.  Used by the
    round-trip property tests (split → paste == identity).
    """
    check_positive("n_parts", n_parts)
    path = Path(path)
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    rows = [line.rstrip("\n").split(delimiter) for line in path.read_text().splitlines()]
    if not rows:
        raise PasteError(f"empty table: {path}")
    n_cols = len(rows[0])
    if any(len(r) != n_cols for r in rows):
        raise PasteError(f"ragged table: {path}")
    if n_parts > n_cols:
        raise PasteError(f"cannot split {n_cols} columns into {n_parts} parts")
    base, extra = divmod(n_cols, n_parts)
    out_paths = []
    col = 0
    for i in range(n_parts):
        width = base + (1 if i < extra else 0)
        part_rows = [delimiter.join(r[col : col + width]) for r in rows]
        p = outdir / f"part_{i:04d}.tsv"
        p.write_text("\n".join(part_rows) + "\n")
        out_paths.append(p)
        col += width
    return out_paths


def estimate_paste_time(
    n_files: int,
    bytes_per_file: float,
    fs: ParallelFilesystem,
    group_size: int | None = None,
    now: float = 0.0,
) -> float:
    """Estimated wall seconds for a paste at science scale.

    Single-phase (``group_size=None``): one pass reading all bytes and
    writing the merged output, with a metadata penalty for holding
    ``n_files`` open at once.  Two-phase: sub-pastes (group fan-in) plus a
    final join over the sub-paste outputs — more bytes moved, *much*
    smaller fan-in.  The crossover demonstrates why the §V-A workflow
    pastes in two phases.
    """
    check_positive("n_files", n_files)
    check_positive("bytes_per_file", bytes_per_file)
    total_bytes = n_files * bytes_per_file
    if group_size is None:
        meta = fs.metadata_op_time(n_files, now)
        return meta + fs.read_time(total_bytes, now) + fs.write_time(total_bytes, now)
    check_positive("group_size", group_size)
    n_groups = -(-n_files // group_size)  # ceil
    t = 0.0
    # Phase 1: each sub-paste reads/writes its group's bytes.
    for _ in range(n_groups):
        t += fs.metadata_op_time(group_size, now + t)
        group_bytes = group_size * bytes_per_file
        t += fs.read_time(group_bytes, now + t) + fs.write_time(group_bytes, now + t)
    # Phase 2: final join re-reads everything once.
    t += fs.metadata_op_time(n_groups, now + t)
    t += fs.read_time(total_bytes, now + t) + fs.write_time(total_bytes, now + t)
    return t
