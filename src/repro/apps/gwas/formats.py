"""Genome-annotation formats and automated conversion (§II-A).

"There can exist multiple formats for single types of data (e.g. genome
annotations can be in BED, GTF2, GFF3, or PSL formats)" — and hand-rolled
converters are the §II-A technical-debt exhibit.  Here three concrete
formats (BED, a GFF3 subset, and a deliberately idiosyncratic "custom"
lab format) convert through a neutral record type, all registered in a
:class:`~repro.metadata.schema.FormatConverterRegistry` so any pair is
reachable as a conversion *plan* rather than bespoke code.

Coordinate conventions are where annotation bugs live, so they are
handled explicitly: BED is 0-based half-open; GFF3 is 1-based closed; the
custom format is 1-based closed with a ``chrom:start-end`` locus string.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metadata.schema import FormatConverterRegistry


@dataclass(frozen=True)
class AnnotationRecord:
    """Neutral annotation record: 0-based half-open coordinates."""

    chrom: str
    start: int  # 0-based inclusive
    end: int  # exclusive
    name: str = "."
    score: float = 0.0
    strand: str = "."

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(f"empty interval: [{self.start}, {self.end})")
        if self.strand not in ("+", "-", "."):
            raise ValueError(f"strand must be +, - or ., got {self.strand!r}")

    def __len__(self) -> int:
        return self.end - self.start


# -- BED: 0-based half-open, tab-separated, 6 columns -------------------------


def parse_bed(text: str) -> list[AnnotationRecord]:
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith(("#", "track", "browser")):
            continue
        parts = line.split("\t")
        if len(parts) < 3:
            raise ValueError(f"BED line {lineno}: expected >= 3 columns, got {len(parts)}")
        chrom, start, end = parts[0], int(parts[1]), int(parts[2])
        name = parts[3] if len(parts) > 3 else "."
        score = float(parts[4]) if len(parts) > 4 and parts[4] != "." else 0.0
        strand = parts[5] if len(parts) > 5 else "."
        records.append(AnnotationRecord(chrom, start, end, name, score, strand))
    return records


def to_bed(records: list[AnnotationRecord]) -> str:
    lines = [
        f"{r.chrom}\t{r.start}\t{r.end}\t{r.name}\t{r.score:g}\t{r.strand}"
        for r in records
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# -- GFF3 subset: 1-based closed, 9 columns ------------------------------------


def parse_gff3(text: str) -> list[AnnotationRecord]:
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 9:
            raise ValueError(f"GFF3 line {lineno}: expected 9 columns, got {len(parts)}")
        chrom, _source, _type, start, end, score, strand, _phase, attrs = parts
        name = "."
        for field in attrs.split(";"):
            if field.startswith(("ID=", "Name=")):
                name = field.split("=", 1)[1]
                break
        records.append(
            AnnotationRecord(
                chrom=chrom,
                start=int(start) - 1,  # 1-based closed -> 0-based half-open
                end=int(end),
                name=name,
                score=0.0 if score == "." else float(score),
                strand=strand if strand in ("+", "-") else ".",
            )
        )
    return records


def to_gff3(records: list[AnnotationRecord]) -> str:
    lines = ["##gff-version 3"]
    for r in records:
        score = "." if r.score == 0.0 else f"{r.score:g}"
        lines.append(
            f"{r.chrom}\tfairflow\tregion\t{r.start + 1}\t{r.end}\t{score}\t{r.strand}\t.\tID={r.name}"
        )
    return "\n".join(lines) + "\n"


# -- the idiosyncratic lab format: "name @ chrom:start-end [strand] score" -----


def parse_custom(text: str) -> list[AnnotationRecord]:
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("%"):
            continue
        try:
            name, rest = line.split(" @ ", 1)
            locus, rest = rest.split(" [", 1)
            strand, score = rest.split("] ", 1)
            chrom, span = locus.split(":")
            start, end = span.split("-")
        except ValueError:
            raise ValueError(f"custom format line {lineno}: cannot parse {line!r}") from None
        records.append(
            AnnotationRecord(
                chrom=chrom,
                start=int(start) - 1,  # 1-based closed -> neutral
                end=int(end),
                name=name,
                score=float(score),
                strand=strand,
            )
        )
    return records


def to_custom(records: list[AnnotationRecord]) -> str:
    lines = [
        f"{r.name} @ {r.chrom}:{r.start + 1}-{r.end} [{r.strand}] {r.score:g}"
        for r in records
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# -- GTF2 subset: GFF-like columns, attribute grammar `key "value";` ----------


def parse_gtf2(text: str) -> list[AnnotationRecord]:
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 9:
            raise ValueError(f"GTF2 line {lineno}: expected 9 columns, got {len(parts)}")
        chrom, _source, _feature, start, end, score, strand, _frame, attrs = parts
        name = "."
        for field in attrs.strip().split(";"):
            field = field.strip()
            if field.startswith("gene_id "):
                name = field.split(" ", 1)[1].strip().strip('"')
                break
        records.append(
            AnnotationRecord(
                chrom=chrom,
                start=int(start) - 1,  # 1-based closed, like GFF3
                end=int(end),
                name=name,
                score=0.0 if score == "." else float(score),
                strand=strand if strand in ("+", "-") else ".",
            )
        )
    return records


def to_gtf2(records: list[AnnotationRecord]) -> str:
    lines = []
    for r in records:
        score = "." if r.score == 0.0 else f"{r.score:g}"
        lines.append(
            f"{r.chrom}\tfairflow\texon\t{r.start + 1}\t{r.end}\t{score}\t{r.strand}\t.\t"
            f'gene_id "{r.name}"; transcript_id "{r.name}.t1";'
        )
    return "\n".join(lines) + ("\n" if lines else "")


# -- PSL-lite: the BLAT column subset our record type can carry ----------------
# Full PSL has 21 columns; columns we cannot derive are written as zeros,
# which real PSL consumers tolerate for ungapped single-block alignments.


def parse_psl(text: str) -> list[AnnotationRecord]:
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith(("psLayout", "match", "-")):
            continue
        parts = line.split("\t")
        if len(parts) != 21:
            raise ValueError(f"PSL line {lineno}: expected 21 columns, got {len(parts)}")
        matches = float(parts[0])
        strand = parts[8] if parts[8] in ("+", "-") else "."
        q_name = parts[9]
        t_name = parts[13]
        t_start, t_end = int(parts[15]), int(parts[16])  # 0-based half-open
        records.append(
            AnnotationRecord(
                chrom=t_name,
                start=t_start,
                end=t_end,
                name=q_name,
                score=matches,
                strand=strand,
            )
        )
    return records


def to_psl(records: list[AnnotationRecord]) -> str:
    lines = []
    for r in records:
        size = len(r)
        cols = [
            f"{r.score:g}",  # matches
            "0", "0", "0", "0", "0", "0", "0",  # mismatches..tBaseInsert
            r.strand if r.strand != "." else "+",
            r.name,  # qName
            str(size), "0", str(size),  # qSize qStart qEnd
            r.chrom,  # tName
            str(r.end),  # tSize (>= tEnd; minimal consistent value)
            str(r.start), str(r.end),  # tStart tEnd (0-based half-open)
            "1",  # blockCount
            f"{size},", "0,", f"{r.start},",  # blockSizes qStarts tStarts
        ]
        lines.append("\t".join(cols))
    return "\n".join(lines) + ("\n" if lines else "")


def annotation_registry() -> FormatConverterRegistry:
    """All annotation converters, hub-and-spoke through ``records``.

    Any format pair converts through the neutral record list: registering
    one new format (two converters) makes it reachable from every other —
    the network effect that retires per-pair custom scripts.
    """
    reg = FormatConverterRegistry()
    reg.register("bed", "records", parse_bed)
    reg.register("records", "bed", to_bed)
    reg.register("gff3", "records", parse_gff3)
    reg.register("records", "gff3", to_gff3)
    reg.register("gtf2", "records", parse_gtf2)
    reg.register("records", "gtf2", to_gtf2)
    # PSL carries alignments, not plain annotations: conversion through it
    # is lossy for strand "." (PSL requires +/-), so make it slightly more
    # expensive than the lossless spokes — plans prefer other routes.
    reg.register("psl", "records", parse_psl, cost=1.5)
    reg.register("records", "psl", to_psl, cost=1.5)
    reg.register("custom", "records", parse_custom)
    reg.register("records", "custom", to_custom)
    return reg
