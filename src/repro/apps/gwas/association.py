"""GWAS association scan — the science the paste workflow feeds (§II-A).

"A typical use of GWAS is to use mixed linear models to associate single
nucleotide polymorphisms (SNPs) to a phenotypic trait."  This module
implements the standard single-marker linear scan, fully vectorized: for
each SNP, regress the phenotype on the genotype dosage (0/1/2) with
optional covariates projected out, and report effect size, t statistic,
and p-value.

The scan is one numpy pass over the whole matrix — the per-SNP OLS
solution has a closed form once phenotype and genotypes are centered
(and residualized against covariates), so no Python loop over SNPs is
needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro._util import check_fraction


@dataclass
class GwasScanResult:
    """Per-SNP association statistics."""

    betas: np.ndarray  # effect size per copy of the minor allele
    t_stats: np.ndarray
    p_values: np.ndarray
    dof: int

    @property
    def n_snps(self) -> int:
        return len(self.betas)

    def significant(self, alpha: float = 0.05, bonferroni: bool = True) -> np.ndarray:
        """Indices of significant SNPs (Bonferroni-corrected by default)."""
        check_fraction("alpha", alpha)
        threshold = alpha / self.n_snps if bonferroni else alpha
        return np.nonzero(self.p_values < threshold)[0]

    def top(self, k: int) -> list[tuple[int, float, float]]:
        """The k most significant SNPs as (index, beta, p)."""
        order = np.argsort(self.p_values)[:k]
        return [
            (int(i), float(self.betas[i]), float(self.p_values[i])) for i in order
        ]


def _residualize(y: np.ndarray, covariates: np.ndarray | None) -> np.ndarray:
    """Project covariates (plus intercept) out of ``y``."""
    n = y.shape[0]
    if covariates is None:
        return y - y.mean()
    C = np.column_stack([np.ones(n), covariates])
    coef, *_ = np.linalg.lstsq(C, y, rcond=None)
    return y - C @ coef


def gwas_scan(
    genotypes,
    phenotype,
    covariates=None,
) -> GwasScanResult:
    """Single-marker linear association scan.

    Parameters
    ----------
    genotypes:
        (n_samples, n_snps) dosage matrix in {0, 1, 2} (any numeric works).
    phenotype:
        (n_samples,) trait values.
    covariates:
        Optional (n_samples, n_cov) matrix projected out of both the
        phenotype and every genotype column before testing (fixed-effect
        adjustment — the standard LM approximation of the mixed model).

    Returns
    -------
    GwasScanResult with one beta / t / p per SNP.  Monomorphic SNPs get
    beta 0 and p-value 1.
    """
    G = np.asarray(genotypes, dtype=float)
    y = np.asarray(phenotype, dtype=float)
    if G.ndim != 2:
        raise ValueError(f"genotypes must be 2-D, got shape {G.shape}")
    n, m = G.shape
    if y.shape != (n,):
        raise ValueError(f"phenotype shape {y.shape} != ({n},)")
    n_cov = 0 if covariates is None else np.atleast_2d(covariates).shape[1]
    dof = n - 2 - n_cov
    if dof < 1:
        raise ValueError(f"not enough samples: dof = {dof}")

    yr = _residualize(y, covariates)
    if covariates is None:
        Gr = G - G.mean(axis=0)
    else:
        C = np.column_stack([np.ones(n), covariates])
        coef, *_ = np.linalg.lstsq(C, G, rcond=None)
        Gr = G - C @ coef

    # Per-SNP simple regression on residualized data, vectorized:
    #   beta_j = <g_j, y> / <g_j, g_j>
    gg = np.einsum("ij,ij->j", Gr, Gr)
    gy = Gr.T @ yr
    monomorphic = gg <= 1e-12
    gg_safe = np.where(monomorphic, 1.0, gg)
    betas = np.where(monomorphic, 0.0, gy / gg_safe)

    # Residual variance and t statistic per SNP.
    yy = float(yr @ yr)
    rss = yy - betas * gy  # residual sum of squares after the SNP
    rss = np.maximum(rss, 0.0)
    sigma2 = rss / dof
    se = np.sqrt(np.where(monomorphic, np.inf, sigma2 / gg_safe))
    with np.errstate(divide="ignore", invalid="ignore"):
        t_stats = np.where(monomorphic, 0.0, betas / se)
    p_values = 2.0 * stats.t.sf(np.abs(t_stats), df=dof)
    p_values = np.where(monomorphic, 1.0, p_values)

    return GwasScanResult(betas=betas, t_stats=t_stats, p_values=p_values, dof=dof)


def recovery_rate(result: GwasScanResult, causal_snps, alpha: float = 0.05) -> float:
    """Fraction of truly causal SNPs recovered at Bonferroni-corrected alpha."""
    causal = set(int(i) for i in causal_snps)
    if not causal:
        return 1.0
    found = set(int(i) for i in result.significant(alpha=alpha))
    return len(causal & found) / len(causal)
