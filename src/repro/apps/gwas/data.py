"""Synthetic genotype/phenotype table writer.

Produces the file layout the paste workflow consumes: many per-chunk TSV
tables (rows = samples, columns = SNPs), one phenotype table.  Real GWAS
inputs are TB-scale; the workflow logic is size-invariant, so small files
exercise the identical code path (the TB-scale costs live in the paste
cost model).
"""

from __future__ import annotations

from pathlib import Path


from repro._util import as_generator, check_positive
from repro.apps.irf.datasets import synthetic_gwas


def write_genotype_tables(
    directory: Path,
    n_files: int = 10,
    n_samples: int = 50,
    snps_per_file: int = 20,
    prefix: str = "chunk",
    seed=None,
) -> list[Path]:
    """Write ``n_files`` per-chunk genotype TSVs; returns the paths.

    Files are named ``{prefix}_{i:04d}.tsv`` so a glob such as
    ``chunk_*.tsv`` enumerates them in paste order.  Each file holds the
    same ``n_samples`` rows (a column-paste precondition).
    """
    check_positive("n_files", n_files)
    check_positive("n_samples", n_samples)
    check_positive("snps_per_file", snps_per_file)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rng = as_generator(seed)
    data = synthetic_gwas(
        n_samples=n_samples, n_snps=n_files * snps_per_file, n_causal=min(5, n_files * snps_per_file), seed=rng
    )
    paths = []
    for i in range(n_files):
        cols = data.genotypes[:, i * snps_per_file : (i + 1) * snps_per_file]
        path = directory / f"{prefix}_{i:04d}.tsv"
        header = "\t".join(
            data.snp_names[i * snps_per_file : (i + 1) * snps_per_file]
        )
        body = "\n".join("\t".join(str(int(v)) for v in row) for row in cols)
        path.write_text(header + "\n" + body + "\n")
        paths.append(path)
    return paths


def write_gwas_dataset(
    directory: Path,
    n_files: int = 10,
    n_samples: int = 50,
    snps_per_file: int = 20,
    n_causal: int = 5,
    heritability: float = 0.8,
    prefix: str = "chunk",
    seed=None,
):
    """Write a *consistent* GWAS dataset: genotype chunks + phenotype.

    Unlike :func:`write_genotype_tables` (which only needs pasteable
    tables), this keeps the phenotype tied to the genotypes it was
    generated from, so a downstream :func:`~repro.apps.gwas.association.
    gwas_scan` over the pasted matrix can actually recover the causal
    SNPs.  Returns ``(chunk_paths, phenotype_path, data)`` where ``data``
    is the underlying :class:`~repro.apps.irf.datasets.GwasData` (the
    ground truth).
    """
    check_positive("n_files", n_files)
    check_positive("snps_per_file", snps_per_file)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    data = synthetic_gwas(
        n_samples=n_samples,
        n_snps=n_files * snps_per_file,
        n_causal=n_causal,
        heritability=heritability,
        seed=seed,
    )
    paths = []
    for i in range(n_files):
        cols = data.genotypes[:, i * snps_per_file : (i + 1) * snps_per_file]
        header = "\t".join(data.snp_names[i * snps_per_file : (i + 1) * snps_per_file])
        body = "\n".join("\t".join(str(int(v)) for v in row) for row in cols)
        path = directory / f"{prefix}_{i:04d}.tsv"
        path.write_text(header + "\n" + body + "\n")
        paths.append(path)
    phenotype_path = directory / "phenotype.tsv"
    phenotype_path.write_text(
        "trait\n" + "\n".join(f"{v:.6f}" for v in data.phenotype) + "\n"
    )
    return paths, phenotype_path, data


def write_phenotype_table(
    directory: Path, n_samples: int = 50, trait: str = "trait", seed=None
) -> Path:
    """Write a one-column phenotype TSV alongside the genotype chunks."""
    check_positive("n_samples", n_samples)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rng = as_generator(seed)
    values = rng.standard_normal(n_samples)
    path = directory / f"{trait}.tsv"
    path.write_text(trait + "\n" + "\n".join(f"{v:.6f}" for v in values) + "\n")
    return path
