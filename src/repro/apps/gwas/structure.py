"""Population-structure correction: genotype principal components.

The standard fix for ancestry confounding in association studies: compute
the top principal components of the (standardized) genotype matrix and
pass them to :func:`~repro.apps.gwas.association.gwas_scan` as
covariates.  Pure numpy SVD — no loop over SNPs.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive


def genotype_pcs(genotypes, k: int = 5) -> np.ndarray:
    """Top-``k`` sample principal components of a genotype matrix.

    Columns are standardized to mean 0, unit variance (monomorphic SNPs
    are dropped — they carry no structure) before a thin SVD; the
    returned matrix is (n_samples, k), each column unit-norm scaled by
    its singular value (the usual PC scores).
    """
    check_positive("k", k)
    G = np.asarray(genotypes, dtype=float)
    if G.ndim != 2:
        raise ValueError(f"genotypes must be 2-D, got shape {G.shape}")
    n, m = G.shape
    if k > min(n, m):
        raise ValueError(f"k={k} exceeds min(n_samples, n_snps)={min(n, m)}")
    std = G.std(axis=0)
    keep = std > 0
    if not keep.any():
        raise ValueError("all SNPs are monomorphic; no structure to extract")
    Z = (G[:, keep] - G[:, keep].mean(axis=0)) / std[keep]
    # thin SVD: scores = U * S
    U, S, _Vt = np.linalg.svd(Z, full_matrices=False)
    return U[:, :k] * S[:k]


def variance_explained(genotypes, k: int = 10) -> np.ndarray:
    """Fraction of standardized-genotype variance per leading PC."""
    check_positive("k", k)
    G = np.asarray(genotypes, dtype=float)
    std = G.std(axis=0)
    keep = std > 0
    Z = (G[:, keep] - G[:, keep].mean(axis=0)) / std[keep]
    S = np.linalg.svd(Z, compute_uv=False)
    var = S**2
    return (var / var.sum())[:k]


def structured_gwas(
    n_samples: int = 400,
    n_snps: int = 300,
    n_causal: int = 5,
    fst: float = 0.1,
    trait_ancestry_effect: float = 1.0,
    heritability: float = 0.4,
    seed=None,
):
    """Two-population GWAS dataset with ancestry confounding.

    Each population draws SNP frequencies from a Balding–Nichols model
    with differentiation ``fst``; the trait carries both a genetic signal
    (``n_causal`` SNPs) and a direct ancestry effect — the textbook setup
    where an uncorrected scan produces inflated hits that PC adjustment
    removes.  Returns ``(genotypes, phenotype, causal, ancestry)``.
    """
    from repro._util import as_generator, check_fraction

    check_positive("n_samples", n_samples)
    check_positive("n_snps", n_snps)
    check_fraction("fst", fst)
    check_fraction("heritability", heritability)
    rng = as_generator(seed)
    ancestral = rng.uniform(0.1, 0.9, size=n_snps)
    genotypes = np.empty((n_samples, n_snps), dtype=np.int8)
    ancestry = (np.arange(n_samples) % 2).astype(float)  # two balanced pops
    if fst > 0:
        a = ancestral * (1 - fst) / fst
        b = (1 - ancestral) * (1 - fst) / fst
        freqs = np.stack([rng.beta(a, b) for _ in range(2)])  # (2, n_snps)
    else:
        freqs = np.stack([ancestral, ancestral])
    for pop in (0, 1):
        rows = np.nonzero(ancestry == pop)[0]
        genotypes[rows] = rng.binomial(2, freqs[pop], size=(len(rows), n_snps))
    causal = tuple(int(i) for i in rng.choice(n_snps, size=n_causal, replace=False))
    effects = rng.normal(0.0, 1.0, size=n_causal)
    genetic = genotypes[:, list(causal)].astype(float) @ effects
    g_var = genetic.var()
    noise_sd = (
        np.sqrt(g_var * (1 - heritability) / heritability) if g_var > 0 else 1.0
    )
    phenotype = (
        genetic
        + trait_ancestry_effect * ancestry
        + rng.normal(0.0, noise_sd, size=n_samples)
    )
    return genotypes, phenotype, causal, ancestry
