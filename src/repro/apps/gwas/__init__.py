"""The GWAS preprocessing workflow (§II-A, §V-A, Figure 2).

The experiment's unit of work is the *column-wise paste*: merging a large
number of per-chunk tabular files into one matrix, done in two phases to
dodge the filesystem's many-open-files bottleneck.

- :mod:`repro.apps.gwas.data` — synthetic genotype/phenotype table writer.
- :mod:`repro.apps.gwas.formats` — annotation format converters
  (BED / GFF3-like / custom) registered in the schema gauge's conversion
  registry, the §II-A "multiple formats for single types of data" story.
- :mod:`repro.apps.gwas.paste` — real column-wise paste (single and
  two-phase) plus the filesystem cost model that motivates two phases.
- :mod:`repro.apps.gwas.workflow` — the Skel-driven paste workflow: model
  in, scripts + campaign spec out; with the manual-intervention and gauge
  comparison against the traditional script (Figure 2).
"""

from repro.apps.gwas.data import write_genotype_tables, write_phenotype_table, write_gwas_dataset
from repro.apps.gwas.formats import (
    AnnotationRecord,
    parse_bed,
    to_bed,
    parse_gff3,
    to_gff3,
    parse_custom,
    to_custom,
    annotation_registry,
)
from repro.apps.gwas.paste import (
    paste_files,
    two_phase_paste,
    split_columns,
    estimate_paste_time,
    PasteError,
)
from repro.apps.gwas.association import GwasScanResult, gwas_scan, recovery_rate
from repro.apps.gwas.structure import genotype_pcs, variance_explained, structured_gwas
from repro.apps.gwas.workflow import (
    derive_groups,
    GwasPasteWorkflow,
    manual_vs_generated,
    workflow_components_before_after,
)

__all__ = [
    "write_genotype_tables",
    "write_phenotype_table",
    "write_gwas_dataset",
    "AnnotationRecord",
    "parse_bed",
    "to_bed",
    "parse_gff3",
    "to_gff3",
    "parse_custom",
    "to_custom",
    "annotation_registry",
    "paste_files",
    "two_phase_paste",
    "split_columns",
    "estimate_paste_time",
    "PasteError",
    "GwasScanResult",
    "gwas_scan",
    "recovery_rate",
    "genotype_pcs",
    "variance_explained",
    "structured_gwas",
    "derive_groups",
    "GwasPasteWorkflow",
    "manual_vs_generated",
    "workflow_components_before_after",
]
