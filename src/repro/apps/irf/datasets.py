"""Synthetic datasets with planted structure.

Substitutions for data we cannot ship:

- :func:`census_like` replaces the 2019 American Community Survey matrix
  (1606 features × 3220 counties, §V-D): same shape on request, with a
  *planted* dependency graph (each derived feature is a noisy function of
  a few parent features) so network-recovery quality is checkable.
- :func:`synthetic_gwas` replaces the §II-A genotype/phenotype data: a
  0/1/2 SNP matrix under Hardy–Weinberg proportions with an additive
  phenotype over known causal SNPs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_generator, check_positive, check_fraction


@dataclass
class CensusLikeData:
    """A correlated feature matrix plus its planted dependency graph."""

    X: np.ndarray  # (n_samples, n_features), standardized
    feature_names: tuple
    true_edges: frozenset  # {(parent_idx, child_idx)}

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]


def census_like(
    n_features: int = 1606,
    n_samples: int = 3220,
    derived_fraction: float = 0.5,
    parents_per_feature: int = 3,
    noise: float = 0.3,
    nonlinear_fraction: float = 0.3,
    seed=None,
) -> CensusLikeData:
    """Generate a census-like matrix with planted feature dependencies.

    A ``1 - derived_fraction`` share of features are independent "root"
    features; each remaining feature is a weighted combination of
    ``parents_per_feature`` earlier features (a ``nonlinear_fraction`` of
    derived features square or interact their parents) plus Gaussian
    noise.  Edges parent→child form the ground-truth network.
    """
    check_positive("n_features", n_features)
    check_positive("n_samples", n_samples)
    check_fraction("derived_fraction", derived_fraction)
    check_fraction("nonlinear_fraction", nonlinear_fraction)
    check_positive("parents_per_feature", parents_per_feature)
    if n_features < parents_per_feature + 1:
        raise ValueError(
            f"need > {parents_per_feature} features for {parents_per_feature} parents"
        )
    rng = as_generator(seed)
    n_roots = max(parents_per_feature, int(round(n_features * (1 - derived_fraction))))
    X = np.empty((n_samples, n_features))
    X[:, :n_roots] = rng.standard_normal((n_samples, n_roots))
    edges = set()
    for j in range(n_roots, n_features):
        parents = rng.choice(j, size=parents_per_feature, replace=False)
        weights = rng.uniform(0.5, 1.5, size=parents_per_feature) * rng.choice(
            [-1.0, 1.0], size=parents_per_feature
        )
        base = X[:, parents] @ weights
        if rng.random() < nonlinear_fraction:
            # interaction of the two strongest parents — tree-learnable,
            # invisible to linear methods
            base = base + X[:, parents[0]] * X[:, parents[1]]
        column = base + noise * rng.standard_normal(n_samples)
        X[:, j] = column
        edges.update((int(p), j) for p in parents)
    # Standardize: iRF sampling weights should reflect structure, not scale.
    X = (X - X.mean(axis=0)) / X.std(axis=0)
    names = tuple(f"feat_{j:04d}" for j in range(n_features))
    return CensusLikeData(X=X, feature_names=names, true_edges=frozenset(edges))


@dataclass
class GwasData:
    """Genotypes, phenotype, and the causal truth behind them."""

    genotypes: np.ndarray  # (n_samples, n_snps) in {0, 1, 2}
    phenotype: np.ndarray  # (n_samples,)
    causal_snps: tuple
    effect_sizes: np.ndarray
    snp_names: tuple


def synthetic_gwas(
    n_samples: int = 500,
    n_snps: int = 1000,
    n_causal: int = 10,
    maf_range: tuple = (0.05, 0.5),
    heritability: float = 0.5,
    seed=None,
) -> GwasData:
    """Generate a GWAS dataset: HW genotypes + additive phenotype.

    Each SNP's minor-allele frequency is uniform over ``maf_range``;
    genotypes are Binomial(2, maf).  The phenotype is a weighted sum over
    ``n_causal`` SNPs plus Gaussian noise scaled so the genetic variance
    fraction equals ``heritability``.
    """
    check_positive("n_samples", n_samples)
    check_positive("n_snps", n_snps)
    check_positive("n_causal", n_causal)
    check_fraction("heritability", heritability)
    if n_causal > n_snps:
        raise ValueError(f"n_causal={n_causal} > n_snps={n_snps}")
    lo, hi = maf_range
    if not (0 < lo <= hi <= 0.5):
        raise ValueError(f"maf_range must satisfy 0 < lo <= hi <= 0.5, got {maf_range}")
    rng = as_generator(seed)
    mafs = rng.uniform(lo, hi, size=n_snps)
    genotypes = rng.binomial(2, mafs, size=(n_samples, n_snps)).astype(np.int8)
    causal = tuple(int(i) for i in rng.choice(n_snps, size=n_causal, replace=False))
    effects = rng.normal(0.0, 1.0, size=n_causal)
    genetic = genotypes[:, list(causal)].astype(float) @ effects
    g_var = genetic.var()
    if heritability > 0 and g_var > 0:
        noise_sd = np.sqrt(g_var * (1 - heritability) / heritability)
    else:
        noise_sd = 1.0
    phenotype = genetic + rng.normal(0.0, noise_sd, size=n_samples)
    names = tuple(f"snp_{i:05d}" for i in range(n_snps))
    return GwasData(
        genotypes=genotypes,
        phenotype=phenotype,
        causal_snps=causal,
        effect_sizes=effects,
        snp_names=names,
    )
