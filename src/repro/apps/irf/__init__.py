"""Iterative Random Forests and iRF-LOOP (§II-B, §V-D) — from scratch.

iRF-LOOP "will treat each individual feature as the dependent variable
... and create an iRF model with the remaining n-1 features as the
independent variables"; the n importance vectors are "normalized and
concatenated into an n x n directional adjacency matrix".

- :mod:`repro.apps.irf.tree` — a vectorized CART regression tree with
  impurity-decrease feature importances.
- :mod:`repro.apps.irf.forest` — bootstrap random forest with weighted
  feature sampling.
- :mod:`repro.apps.irf.iterative` — iRF: iterated forests reweighting
  features by the previous iteration's importances.
- :mod:`repro.apps.irf.loop` — the all-to-all iRF-LOOP network builder
  plus the HPC run-duration model used by the campaign experiments.
- :mod:`repro.apps.irf.datasets` — synthetic census-like and GWAS-like
  data with planted dependency structure (ground truth for evaluation).
- :mod:`repro.apps.irf.network` — network extraction and scoring against
  planted truth.
"""

from repro.apps.irf.tree import DecisionTreeRegressor
from repro.apps.irf.forest import RandomForestRegressor
from repro.apps.irf.iterative import IterativeRandomForest, IRFResult
from repro.apps.irf.loop import irf_loop, irf_loop_parallel, IRFLoopResult, feature_run_durations, duration_model
from repro.apps.irf.datasets import census_like, synthetic_gwas, CensusLikeData, GwasData
from repro.apps.irf.network import network_from_adjacency, top_edges, precision_at_k
from repro.apps.irf.importance import PermutationImportanceResult, permutation_importance
from repro.apps.irf.workflow import (
    build_irf_campaign,
    ManualEffortEstimate,
    manual_effort_comparison,
    irf_reuse_scenario,
)

__all__ = [
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "IterativeRandomForest",
    "IRFResult",
    "irf_loop",
    "irf_loop_parallel",
    "IRFLoopResult",
    "feature_run_durations",
    "duration_model",
    "census_like",
    "synthetic_gwas",
    "CensusLikeData",
    "GwasData",
    "network_from_adjacency",
    "top_edges",
    "precision_at_k",
    "PermutationImportanceResult",
    "permutation_importance",
    "build_irf_campaign",
    "ManualEffortEstimate",
    "manual_effort_comparison",
    "irf_reuse_scenario",
]
