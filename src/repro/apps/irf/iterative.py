"""Iterative Random Forest (iRF).

Iterate random forests, feeding iteration k's feature importances back as
iteration k+1's feature-sampling weights.  Iteration concentrates splits
onto stably important features, which is what lets iRF "produce meaningful
insights even in cases where n is much larger than m" (§II-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import check_positive, spawn_children
from repro.apps.irf.forest import RandomForestRegressor


@dataclass
class IRFResult:
    """Outcome of an iRF fit."""

    importances: np.ndarray  # final iteration's normalized importances
    history: list = field(default_factory=list)  # per-iteration importance vectors
    oob_scores: list = field(default_factory=list)
    forest: RandomForestRegressor | None = None

    @property
    def iterations(self) -> int:
        return len(self.history)

    def stability(self) -> float:
        """Cosine similarity of the last two iterations' importances.

        1.0 means the reweighting has converged; near-orthogonal vectors
        mean the forest is still wandering.
        """
        if len(self.history) < 2:
            return 1.0
        a, b = self.history[-2], self.history[-1]
        na, nb = np.linalg.norm(a), np.linalg.norm(b)
        if na == 0 or nb == 0:
            return 0.0
        return float(a @ b / (na * nb))


class IterativeRandomForest:
    """iRF driver: ``n_iterations`` reweighted forests.

    Parameters
    ----------
    n_iterations:
        Weighted-forest iterations (3–5 is the usual published range).
    weight_floor:
        Minimum sampling weight retained by any feature, as a fraction of
        uniform — keeps weak features discoverable (pure zero weights
        would lock out a feature after one bad iteration).
    forest_kwargs:
        Passed through to :class:`RandomForestRegressor`.
    """

    def __init__(self, n_iterations: int = 3, weight_floor: float = 0.01, seed=None, **forest_kwargs):
        check_positive("n_iterations", n_iterations)
        if not 0 <= weight_floor < 1:
            raise ValueError(f"weight_floor must be in [0, 1), got {weight_floor}")
        self.n_iterations = n_iterations
        self.weight_floor = weight_floor
        self._seed = seed
        self.forest_kwargs = forest_kwargs

    def fit(self, X, y) -> IRFResult:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        n_features = X.shape[1]
        rngs = spawn_children(self._seed, self.n_iterations)
        weights = None  # uniform on the first iteration
        history: list[np.ndarray] = []
        oob: list[float | None] = []
        forest = None
        for i in range(self.n_iterations):
            forest = RandomForestRegressor(seed=rngs[i], **self.forest_kwargs)
            forest.fit(X, y, feature_weights=weights)
            imp = forest.feature_importances_.copy()
            history.append(imp)
            oob.append(forest.oob_score_)
            floor = self.weight_floor / n_features
            weights = np.maximum(imp, floor)
            weights = weights / weights.sum()
        return IRFResult(
            importances=history[-1], history=history, oob_scores=oob, forest=forest
        )
