"""CART regression tree with vectorized split search.

The split search follows the guides' vectorization discipline: per
candidate feature, one stable sort plus cumulative sums evaluate *every*
split position at once (O(n log n) per feature per node, no Python loop
over thresholds).  ``y`` is centered per node before the cumulative
squared sums to keep the SSE arithmetic well conditioned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_generator, check_positive


@dataclass
class _Node:
    """One tree node; leaves have ``feature is None``."""

    value: float
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _best_split(X, y, idx, features, min_leaf):
    """Best (feature, threshold, sse, decrease) over ``features`` at node ``idx``.

    Returns None when no valid split exists.  ``y[idx]`` is centered before
    the cumulative squared sums: SSE is translation invariant and centered
    values avoid the cancellation of big ``sum(y^2)`` minus big
    ``sum(y)^2/n``.
    """
    ysub = y[idx]
    n = len(ysub)
    mean = ysub.mean()
    yc = ysub - mean
    parent_sse = float(yc @ yc)
    if parent_sse <= 0.0:
        return None
    best = None
    for f in features:
        vals = X[idx, f]
        order = np.argsort(vals, kind="stable")
        v = vals[order]
        ys = yc[order]
        if v[0] == v[-1]:
            continue  # constant feature at this node
        csum = np.cumsum(ys)
        csq = np.cumsum(ys * ys)
        total, total_sq = csum[-1], csq[-1]
        k = np.arange(1, n)  # left-side sizes for split after position k-1
        left_sum, left_sq = csum[:-1], csq[:-1]
        right_sum, right_sq = total - left_sum, total_sq - left_sq
        sse = (left_sq - left_sum * left_sum / k) + (
            right_sq - right_sum * right_sum / (n - k)
        )
        valid = (v[1:] > v[:-1]) & (k >= min_leaf) & ((n - k) >= min_leaf)
        if not valid.any():
            continue
        sse = np.where(valid, sse, np.inf)
        j = int(np.argmin(sse))
        if best is None or sse[j] < best[2]:
            threshold = 0.5 * (v[j] + v[j + 1])
            best = (int(f), float(threshold), float(sse[j]), parent_sse - float(sse[j]))
    return best


class DecisionTreeRegressor:
    """A regression tree supporting weighted random feature subsets.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_split / min_samples_leaf:
        Standard CART stopping rules.
    max_features:
        Features examined per split: ``None`` (all), ``"sqrt"``, an int,
        or a float fraction.
    seed:
        RNG for feature subsampling.

    Attributes
    ----------
    feature_importances\\_:
        Impurity-decrease importances, normalized to sum to 1 (all zeros
        for a stump that never split).
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        seed=None,
    ):
        check_positive("max_depth", max_depth)
        check_positive("min_samples_split", min_samples_split)
        check_positive("min_samples_leaf", min_samples_leaf)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = as_generator(seed)
        self._root: _Node | None = None
        self.n_features_: int | None = None
        self.feature_importances_: np.ndarray | None = None

    # -- fitting -----------------------------------------------------------

    def _n_candidate_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(mf, float):
            if not 0 < mf <= 1:
                raise ValueError(f"max_features fraction must be in (0,1], got {mf}")
            return max(1, int(mf * n_features))
        if isinstance(mf, int):
            if not 0 < mf <= n_features:
                raise ValueError(
                    f"max_features must be in [1, {n_features}], got {mf}"
                )
            return mf
        raise TypeError(f"invalid max_features: {mf!r}")

    def _sample_features(self, n_features: int, weights) -> np.ndarray:
        m = self._n_candidate_features(n_features)
        if weights is None:
            if m >= n_features:
                return np.arange(n_features)
            return self._rng.choice(n_features, size=m, replace=False)
        p = np.asarray(weights, dtype=float)
        if p.shape != (n_features,):
            raise ValueError(
                f"feature_weights shape {p.shape} != ({n_features},)"
            )
        if (p < 0).any() or p.sum() <= 0:
            raise ValueError("feature_weights must be nonnegative with positive sum")
        p = p / p.sum()
        nonzero = int((p > 0).sum())
        m = min(m, nonzero)  # cannot draw more distinct features than have mass
        return self._rng.choice(n_features, size=m, replace=False, p=p)

    def fit(self, X, y, feature_weights=None) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError(f"y shape {y.shape} != ({X.shape[0]},)")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on 0 samples")
        self.n_features_ = X.shape[1]
        importances = np.zeros(self.n_features_)
        idx_all = np.arange(X.shape[0])
        self._root = self._build(X, y, idx_all, depth=0, weights=feature_weights, importances=importances)
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    def _build(self, X, y, idx, depth, weights, importances) -> _Node:
        node = _Node(value=float(y[idx].mean()), n_samples=len(idx))
        if depth >= self.max_depth or len(idx) < self.min_samples_split:
            return node
        features = self._sample_features(self.n_features_, weights)
        split = _best_split(X, y, idx, features, self.min_samples_leaf)
        if split is None:
            return node
        feature, threshold, _sse, decrease = split
        mask = X[idx, feature] <= threshold
        left_idx, right_idx = idx[mask], idx[~mask]
        if len(left_idx) == 0 or len(right_idx) == 0:  # pragma: no cover - guarded by valid mask
            return node
        importances[feature] += decrease
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X, y, left_idx, depth + 1, weights, importances)
        node.right = self._build(X, y, right_idx, depth + 1, weights, importances)
        return node

    # -- prediction ------------------------------------------------------------

    def predict(self, X) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X must have shape (n, {self.n_features_}), got {X.shape}"
            )
        out = np.empty(X.shape[0])
        self._predict_into(self._root, X, np.arange(X.shape[0]), out)
        return out

    def _predict_into(self, node: _Node, X, idx, out) -> None:
        if node.is_leaf:
            out[idx] = node.value
            return
        mask = X[idx, node.feature] <= node.threshold
        self._predict_into(node.left, X, idx[mask], out)
        self._predict_into(node.right, X, idx[~mask], out)

    # -- introspection ------------------------------------------------------------

    def depth(self) -> int:
        def walk(node):
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return walk(self._root)

    def n_leaves(self) -> int:
        def walk(node):
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return walk(self._root)

    def to_text(self, feature_names=None, precision: int = 3) -> str:
        """Render the fitted tree as indented text.

        iRF exists because tree ensembles are *interpretable* — "extract
        explainable properties of the datasets" (§II-B); this is the
        explainable view of a single member.
        """
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        if feature_names is not None and len(feature_names) != self.n_features_:
            raise ValueError(
                f"{len(feature_names)} names for {self.n_features_} features"
            )

        def label(index: int) -> str:
            return feature_names[index] if feature_names is not None else f"x[{index}]"

        lines: list[str] = []

        def walk(node, depth):
            pad = "  " * depth
            if node.is_leaf:
                lines.append(
                    f"{pad}-> {node.value:.{precision}f}  (n={node.n_samples})"
                )
                return
            lines.append(
                f"{pad}{label(node.feature)} <= {node.threshold:.{precision}f}  "
                f"(n={node.n_samples})"
            )
            walk(node.left, depth + 1)
            lines.append(f"{pad}{label(node.feature)} > {node.threshold:.{precision}f}")
            walk(node.right, depth + 1)

        walk(self._root, 0)
        return "\n".join(lines)
