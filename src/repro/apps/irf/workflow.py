"""The iRF-LOOP workflow: manual baseline vs Cheetah-Savanna (§II-B, §V-D).

"We gauge the reusability of this system using the manual effort required
to set up, track, and submit additional runs for different parameters
using differently-sized allocations."  This module makes that gauge
concrete: an explicit inventory of the original workflow's human steps
(scripted set construction, job babysitting, failure curation,
resubmission script surgery) priced per campaign, against the Cheetah
composition (write the sweep once, resubmit the SweepGroup mechanically).

It also builds the paper's campaign object for any dataset shape, so the
Figure 6/7 experiments, the examples, and user code share one entry
point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._util import check_positive
from repro.cheetah.campaign import AppSpec, Campaign, Sweep
from repro.cheetah.parameters import RangeParameter
from repro.gauges.debt import ManualStep, ReuseScenario
from repro.gauges.levels import CustomizabilityTier, Gauge, ProvenanceTier


def build_irf_campaign(
    n_features: int,
    nodes: int = 20,
    walltime: float = 7200.0,
    name: str = "irf-loop",
) -> Campaign:
    """The iRF-LOOP campaign: one run per target feature (§V-D)."""
    check_positive("n_features", n_features)
    campaign = Campaign(
        name,
        app=AppSpec("irf", executable="irf"),
        objective="all-to-all predictive network (iRF-LOOP)",
    )
    group = campaign.sweep_group("features", nodes=nodes, walltime=walltime)
    group.add(Sweep([RangeParameter("feature", 0, n_features)]))
    return campaign


@dataclass(frozen=True)
class ManualEffortEstimate:
    """Human minutes per campaign for one workflow style."""

    workflow: str
    setup_minutes: float
    tracking_minutes: float
    failure_minutes: float
    resubmission_minutes: float

    @property
    def total_minutes(self) -> float:
        return (
            self.setup_minutes
            + self.tracking_minutes
            + self.failure_minutes
            + self.resubmission_minutes
        )


def manual_effort_comparison(
    n_features: int,
    nodes: int = 20,
    expected_allocations: int | None = None,
    failure_rate: float = 0.02,
) -> tuple[ManualEffortEstimate, ManualEffortEstimate]:
    """Price the §II-B human steps for both workflow styles.

    Per-step minute costs are order-of-magnitude estimates (the gauge
    philosophy: relative comparison, not absolute scoring):

    original — write the set-construction script and size sets for the
    allocation (30 min + 1 min per set), check job state a few times per
    allocation (5 min each), hand-curate the failed-run list (2 min per
    failed run), and build a fresh submit script per resubmission (15 min
    each).  cheetah — compose the sweep once (20 min) and issue one
    resubmit command per extra allocation (1 min); tracking and failure
    curation are the tool's job.
    """
    check_positive("n_features", n_features)
    check_positive("nodes", nodes)
    if expected_allocations is None:
        # sets of `nodes` runs; a handful of sets fit per allocation
        expected_allocations = max(1, math.ceil(n_features / (nodes * 3)))
    n_sets = math.ceil(n_features / nodes)
    expected_failures = max(1, round(n_features * failure_rate))

    original = ManualEffortEstimate(
        workflow="original (hand-scripted sets)",
        setup_minutes=30 + 1.0 * n_sets,
        tracking_minutes=5.0 * 3 * expected_allocations,
        failure_minutes=2.0 * expected_failures,
        resubmission_minutes=15.0 * max(0, expected_allocations - 1 + 1),  # incl. failure pass
    )
    cheetah = ManualEffortEstimate(
        workflow="cheetah-savanna",
        setup_minutes=20.0,
        tracking_minutes=0.0,
        failure_minutes=0.0,
        resubmission_minutes=1.0 * max(0, expected_allocations - 1),
    )
    return original, cheetah


def irf_reuse_scenario() -> ReuseScenario:
    """§II-B as a debt scenario: apply the iRF-LOOP model to new data or
    new hardware."""
    return ReuseScenario(
        name="irf-new-data-or-machine",
        description="re-run iRF-LOOP on a new dataset or differently-sized "
        "allocation (§II-B)",
        steps=(
            ManualStep(
                "manually assign runtime parameters and gauge the resource division",
                45,
                Gauge.SOFTWARE_CUSTOMIZABILITY,
                int(CustomizabilityTier.MODELED),
            ),
            ManualStep(
                "manually create the submit scripts for all of the iRF runs",
                60,
                Gauge.SOFTWARE_CUSTOMIZABILITY,
                int(CustomizabilityTier.MODELED),
            ),
            ManualStep(
                "track job progress on the system by hand",
                30,
                Gauge.SOFTWARE_PROVENANCE,
                int(ProvenanceTier.EXECUTION_LOGS),
            ),
            ManualStep(
                "curate the failed-run list and build a resubmission script",
                45,
                Gauge.SOFTWARE_PROVENANCE,
                int(ProvenanceTier.CAMPAIGN_KNOWLEDGE),
            ),
            ManualStep(
                "teach the next user the whole procedure",
                120,
                Gauge.SOFTWARE_CUSTOMIZABILITY,
                int(CustomizabilityTier.MODELED),
            ),
        ),
    )
