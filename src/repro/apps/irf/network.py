"""Network extraction and scoring for iRF-LOOP results.

The adjacency matrix "can be viewed as edge weights between the features"
(§II-B); these helpers turn it into a ranked edge list / networkx graph
and score recovered edges against a planted truth set.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro._util import check_positive


def top_edges(adjacency: np.ndarray, k: int) -> list[tuple[int, int, float]]:
    """The ``k`` heaviest directed edges as (source, target, weight).

    Self-edges are structurally zero in iRF-LOOP and are excluded.
    Deterministic tie-break: by (-weight, source, target).
    """
    check_positive("k", k)
    A = np.asarray(adjacency, dtype=float)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(f"adjacency must be square, got {A.shape}")
    src, dst = np.nonzero(A)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    weights = A[src, dst]
    order = np.lexsort((dst, src, -weights))
    order = order[:k]
    return [(int(s), int(t), float(w)) for s, t, w in zip(src[order], dst[order], weights[order])]


def network_from_adjacency(
    adjacency: np.ndarray, feature_names=None, k: int | None = None
) -> nx.DiGraph:
    """Build a directed networkx graph from the heaviest ``k`` edges
    (all nonzero edges when ``k`` is None)."""
    A = np.asarray(adjacency, dtype=float)
    n = A.shape[0]
    if feature_names is None:
        feature_names = [f"feature_{j:04d}" for j in range(n)]
    if len(feature_names) != n:
        raise ValueError(f"{len(feature_names)} names for {n} features")
    edges = top_edges(A, k if k is not None else int((A != 0).sum()) or 1)
    g = nx.DiGraph()
    g.add_nodes_from(feature_names)
    for s, t, w in edges:
        g.add_edge(feature_names[s], feature_names[t], weight=w)
    return g


def precision_at_k(adjacency: np.ndarray, true_edges, k: int, undirected: bool = True) -> float:
    """Fraction of the top-k recovered edges present in ``true_edges``.

    With ``undirected=True`` (default) an edge counts if the planted graph
    has it in either direction — iRF-LOOP recovers association direction
    only weakly, as the paper's usage (relationship discovery) expects.
    """
    edges = top_edges(adjacency, k)
    if not edges:
        return 0.0
    truth = set(true_edges)
    if undirected:
        truth |= {(b, a) for a, b in true_edges}
    hits = sum(1 for s, t, _w in edges if (s, t) in truth)
    return hits / len(edges)
