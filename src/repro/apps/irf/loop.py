"""iRF-LOOP: the all-to-all predictive network builder (§II-B).

For each feature j, fit an iRF with y = column j and X = the remaining
columns; the n importance vectors are normalized and assembled into an
n × n directional adjacency matrix A where ``A[i, j]`` is the importance
of feature i for predicting feature j.

Also home to :func:`feature_run_durations`, the HPC run-duration model the
campaign experiments (Figures 6/7) use: per-feature iRF fit times on a
cluster are heavy-tailed (tree depth and split counts vary wildly with
the target's structure), which is exactly what makes set-synchronized
scheduling pay its straggler tax.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_generator, check_positive, spawn_children
from repro.apps.irf.iterative import IterativeRandomForest


@dataclass
class IRFLoopResult:
    """The all-to-all network plus per-target diagnostics."""

    adjacency: np.ndarray  # A[i, j]: importance of feature i for target j
    feature_names: tuple
    oob_scores: list

    @property
    def n_features(self) -> int:
        return self.adjacency.shape[0]

    def column_sums(self) -> np.ndarray:
        """Per-target importance mass (1 for targets with any signal)."""
        return self.adjacency.sum(axis=0)


def irf_loop(
    X,
    feature_names=None,
    n_iterations: int = 3,
    seed=None,
    targets=None,
    **forest_kwargs,
) -> IRFLoopResult:
    """Build the iRF-LOOP network for ``X`` (samples × features).

    ``targets`` restricts the loop to a subset of target columns (the
    campaign decomposition: each target is one independent HPC run); the
    returned adjacency always has full n × n shape with zero columns for
    targets not fitted.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    n_samples, n_features = X.shape
    if n_features < 2:
        raise ValueError("iRF-LOOP needs at least 2 features")
    if feature_names is None:
        feature_names = tuple(f"feature_{j:04d}" for j in range(n_features))
    feature_names = tuple(feature_names)
    if len(feature_names) != n_features:
        raise ValueError(
            f"{len(feature_names)} names for {n_features} features"
        )
    targets = range(n_features) if targets is None else list(targets)
    rngs = spawn_children(seed, n_features)
    adjacency = np.zeros((n_features, n_features))
    oob: list = []
    others_cache = np.arange(n_features)
    for j in targets:
        if not 0 <= j < n_features:
            raise ValueError(f"target index {j} out of range [0, {n_features})")
        others = others_cache[others_cache != j]
        irf = IterativeRandomForest(
            n_iterations=n_iterations, seed=rngs[j], **forest_kwargs
        )
        result = irf.fit(X[:, others], X[:, j])
        imp = result.importances
        total = imp.sum()
        if total > 0:
            adjacency[others, j] = imp / total
        oob.append(result.oob_scores[-1])
    return IRFLoopResult(
        adjacency=adjacency, feature_names=feature_names, oob_scores=oob
    )


def irf_loop_parallel(
    X,
    feature_names=None,
    n_iterations: int = 3,
    seed=None,
    max_workers: int = 4,
    **forest_kwargs,
) -> IRFLoopResult:
    """iRF-LOOP with per-target fits running on a thread pool.

    Produces the *identical* network to :func:`irf_loop` for the same
    seed: each target's RNG stream is derived independently, so execution
    order cannot change the result — determinism survives parallelism.
    numpy's kernels release the GIL, so targets genuinely overlap.
    """
    from concurrent.futures import ThreadPoolExecutor

    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    n_features = X.shape[1]
    if n_features < 2:
        raise ValueError("iRF-LOOP needs at least 2 features")
    if feature_names is None:
        feature_names = tuple(f"feature_{j:04d}" for j in range(n_features))
    feature_names = tuple(feature_names)
    if len(feature_names) != n_features:
        raise ValueError(f"{len(feature_names)} names for {n_features} features")
    check_positive("max_workers", max_workers)
    rngs = spawn_children(seed, n_features)
    adjacency = np.zeros((n_features, n_features))
    oob: list = [None] * n_features
    indices = np.arange(n_features)

    def fit_target(j: int):
        others = indices[indices != j]
        irf = IterativeRandomForest(
            n_iterations=n_iterations, seed=rngs[j], **forest_kwargs
        )
        result = irf.fit(X[:, others], X[:, j])
        return j, others, result

    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        for j, others, result in pool.map(fit_target, range(n_features)):
            imp = result.importances
            total = imp.sum()
            if total > 0:
                adjacency[others, j] = imp / total
            oob[j] = result.oob_scores[-1]
    return IRFLoopResult(
        adjacency=adjacency, feature_names=feature_names, oob_scores=oob
    )


def feature_run_durations(
    n_features: int,
    median_seconds: float = 360.0,
    sigma: float = 1.4,
    max_seconds: float | None = None,
    seed=None,
) -> np.ndarray:
    """Heavy-tailed per-feature HPC run durations for the campaign model.

    Lognormal with the given median and shape: most iRF runs are minutes,
    a few are hours ("the run times between the individual iRF processes
    can differ within one submission", §II-B).  Deterministic per seed so
    the static/dynamic comparison runs the *same* workload.

    ``max_seconds`` truncates the tail (clip).  Campaign experiments pass
    a value below the allocation walltime: in the real workflow, users
    size runs to fit their allocation — an *untruncated* tail would plant
    tasks that can never complete in any allocation, which is a workload
    bug, not a scheduler property.
    """
    check_positive("n_features", n_features)
    check_positive("median_seconds", median_seconds)
    check_positive("sigma", sigma)
    rng = as_generator(seed)
    durations = median_seconds * rng.lognormal(mean=0.0, sigma=sigma, size=n_features)
    if max_seconds is not None:
        check_positive("max_seconds", max_seconds)
        if max_seconds <= median_seconds:
            raise ValueError(
                f"max_seconds={max_seconds} must exceed median_seconds={median_seconds}"
            )
        durations = np.minimum(durations, max_seconds)
    return durations


def duration_model(
    median_seconds: float = 360.0,
    sigma: float = 1.4,
    max_seconds: float | None = None,
    seed=None,
):
    """A manifest-compatible duration model keyed by the ``feature`` parameter.

    Returns ``fn(parameters) -> seconds`` drawing each feature's duration
    once (memoized), so repeated queries — and retries of the same run —
    are consistent.  See :func:`feature_run_durations` for ``max_seconds``.
    """
    check_positive("median_seconds", median_seconds)
    check_positive("sigma", sigma)
    if max_seconds is not None and max_seconds <= median_seconds:
        raise ValueError(
            f"max_seconds={max_seconds} must exceed median_seconds={median_seconds}"
        )
    rng = as_generator(seed)
    cache: dict = {}

    def model(parameters: dict) -> float:
        key = parameters.get("feature")
        if key is None:
            raise KeyError("duration model expects a 'feature' parameter")
        if key not in cache:
            value = float(median_seconds * rng.lognormal(mean=0.0, sigma=sigma))
            if max_seconds is not None:
                value = min(value, max_seconds)
            cache[key] = value
        return cache[key]

    return model
