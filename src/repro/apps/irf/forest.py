"""Bootstrap random forest with weighted feature sampling.

The weighted sampling is the hook iRF needs: iteration k+1 samples split
candidates proportionally to iteration k's importances, concentrating the
forest on stable predictive features (Basu et al., PNAS 2018).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive, spawn_children
from repro.apps.irf.tree import DecisionTreeRegressor


class RandomForestRegressor:
    """Average of bootstrap CART trees.

    Parameters mirror :class:`DecisionTreeRegressor`, plus:

    n_estimators:
        Number of trees.
    bootstrap:
        Sample training rows with replacement per tree (out-of-bag rows
        are tracked for the OOB R² diagnostic).
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        n_jobs: int = 1,
        seed=None,
    ):
        check_positive("n_estimators", n_estimators)
        check_positive("n_jobs", n_jobs)
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.n_jobs = n_jobs
        self._seed = seed
        self.trees_: list[DecisionTreeRegressor] = []
        self.feature_importances_: np.ndarray | None = None
        self.oob_score_: float | None = None

    def fit(self, X, y, feature_weights=None) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        n = X.shape[0]
        rngs = spawn_children(self._seed, self.n_estimators + 1)
        boot_rng = rngs[-1]
        # Bootstrap rows are drawn up front, in tree order, so the result
        # is identical whatever n_jobs is (determinism survives threads).
        all_rows = (
            [boot_rng.integers(0, n, size=n) for _ in range(self.n_estimators)]
            if self.bootstrap
            else [None] * self.n_estimators
        )

        def fit_tree(i: int) -> DecisionTreeRegressor:
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=rngs[i],
            )
            rows = all_rows[i]
            if rows is not None:
                tree.fit(X[rows], y[rows], feature_weights=feature_weights)
            else:
                tree.fit(X, y, feature_weights=feature_weights)
            return tree

        if self.n_jobs == 1:
            self.trees_ = [fit_tree(i) for i in range(self.n_estimators)]
        else:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=self.n_jobs) as pool:
                self.trees_ = list(pool.map(fit_tree, range(self.n_estimators)))

        oob_sum = np.zeros(n)
        oob_count = np.zeros(n, dtype=int)
        importances = np.zeros(X.shape[1])
        for tree, rows in zip(self.trees_, all_rows):
            if rows is not None:
                oob_mask = np.ones(n, dtype=bool)
                oob_mask[np.unique(rows)] = False
                if oob_mask.any():
                    oob_sum[oob_mask] += tree.predict(X[oob_mask])
                    oob_count[oob_mask] += 1
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        if self.bootstrap:
            covered = oob_count > 0
            if covered.sum() >= 2:
                pred = oob_sum[covered] / oob_count[covered]
                resid = y[covered] - pred
                denom = ((y[covered] - y[covered].mean()) ** 2).sum()
                self.oob_score_ = (
                    1.0 - float(resid @ resid) / float(denom) if denom > 0 else 0.0
                )
        return self

    def predict(self, X) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=float)
        out = np.zeros(X.shape[0])
        for tree in self.trees_:
            out += tree.predict(X)
        return out / len(self.trees_)
