"""Permutation feature importance — the model-agnostic cross-check.

Impurity-decrease importances (what the trees report) are known to be
biased toward high-cardinality features; permutation importance measures
what actually happens to predictive error when one feature's values are
shuffled.  iRF-LOOP networks built from either should agree on the strong
edges — the tests use this as a consistency oracle for the from-scratch
forest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_generator, check_positive


@dataclass
class PermutationImportanceResult:
    """Per-feature importance with repeat-level spread."""

    importances: np.ndarray  # mean error increase per feature
    std: np.ndarray
    baseline_mse: float

    def normalized(self) -> np.ndarray:
        """Nonnegative, sum-to-1 view (comparable to tree importances)."""
        clipped = np.clip(self.importances, 0.0, None)
        total = clipped.sum()
        return clipped / total if total > 0 else clipped

    def ranking(self) -> np.ndarray:
        """Feature indices, most important first."""
        return np.argsort(-self.importances, kind="stable")


def permutation_importance(
    model,
    X,
    y,
    n_repeats: int = 5,
    seed=None,
) -> PermutationImportanceResult:
    """Mean MSE increase when each feature column is permuted.

    ``model`` is anything with ``predict(X) -> y_hat`` (our trees and
    forests, or any compatible regressor).  One column is shuffled at a
    time (with ``n_repeats`` independent shuffles); all other columns stay
    intact, so the measurement isolates that feature's contribution
    *through this model*.
    """
    check_positive("n_repeats", n_repeats)
    rng = as_generator(seed)
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.shape != (X.shape[0],):
        raise ValueError(f"y shape {y.shape} != ({X.shape[0]},)")
    baseline = float(np.mean((model.predict(X) - y) ** 2))
    n_features = X.shape[1]
    increases = np.empty((n_repeats, n_features))
    work = X.copy()
    for j in range(n_features):
        original = work[:, j].copy()
        for r in range(n_repeats):
            work[:, j] = original[rng.permutation(len(original))]
            mse = float(np.mean((model.predict(work) - y) ** 2))
            increases[r, j] = mse - baseline
        work[:, j] = original
    return PermutationImportanceResult(
        importances=increases.mean(axis=0),
        std=increases.std(axis=0),
        baseline_mse=baseline,
    )
