"""Gray-Scott reaction-diffusion — the science application of §V-B.

A real, vectorized 2-D solver (periodic boundaries, forward-Euler, 5-point
Laplacian via ``np.roll``).  The paper ran this class of benchmark at 4096
MPI ranks with a terabyte per timestep; we run a laptop-sized grid for the
*numerics* and scale the checkpoint volume through
:attr:`GrayScottParams.checkpoint_bytes` for the *I/O model* — the
experiments measure checkpoint policy behaviour, which depends on bytes
and bandwidth, not on grid points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_generator, check_positive


@dataclass(frozen=True)
class GrayScottParams:
    """Model and discretization parameters.

    Defaults give the classic "mitosis" pattern regime and a stable
    explicit step (dt bounded by the diffusion CFL condition).
    """

    n: int = 128  # grid is n x n
    du: float = 0.16
    dv: float = 0.08
    feed: float = 0.035
    kill: float = 0.060
    dt: float = 1.0
    checkpoint_bytes: int = int(1e12)  # science-scale state volume per step

    def __post_init__(self) -> None:
        check_positive("n", self.n)
        check_positive("du", self.du)
        check_positive("dv", self.dv)
        check_positive("dt", self.dt)
        check_positive("checkpoint_bytes", self.checkpoint_bytes)
        # Forward-Euler stability for the 5-point Laplacian: D*dt <= 1/4.
        limit = max(self.du, self.dv) * self.dt
        if limit > 0.25:
            raise ValueError(
                f"unstable discretization: max(du,dv)*dt = {limit} > 0.25"
            )


def _laplacian(field: np.ndarray) -> np.ndarray:
    """5-point periodic Laplacian (no copies beyond the roll views)."""
    return (
        np.roll(field, 1, axis=0)
        + np.roll(field, -1, axis=0)
        + np.roll(field, 1, axis=1)
        + np.roll(field, -1, axis=1)
        - 4.0 * field
    )


class GrayScottSimulation:
    """A running Gray-Scott simulation with checkpoint/restore support."""

    def __init__(self, params: GrayScottParams | None = None, seed=None):
        self.params = params or GrayScottParams()
        rng = as_generator(seed)
        n = self.params.n
        # Standard initialization: U=1, V=0, with a perturbed central square.
        self.u = np.ones((n, n))
        self.v = np.zeros((n, n))
        r = max(2, n // 10)
        lo, hi = n // 2 - r, n // 2 + r
        self.u[lo:hi, lo:hi] = 0.50
        self.v[lo:hi, lo:hi] = 0.25
        self.u += 0.02 * rng.random((n, n))
        self.v += 0.02 * rng.random((n, n))
        self.timestep = 0

    def step(self, n_steps: int = 1) -> None:
        """Advance the solution ``n_steps`` forward-Euler steps in place."""
        check_positive("n_steps", n_steps)
        p = self.params
        u, v = self.u, self.v
        for _ in range(n_steps):
            uvv = u * v * v
            u += p.dt * (p.du * _laplacian(u) - uvv + p.feed * (1.0 - u))
            v += p.dt * (p.dv * _laplacian(v) + uvv - (p.feed + p.kill) * v)
            self.timestep += 1

    # -- checkpoint/restore ---------------------------------------------------

    def checkpoint(self) -> dict:
        """Snapshot the full state (the payload the middleware writes)."""
        return {
            "timestep": self.timestep,
            "u": self.u.copy(),
            "v": self.v.copy(),
        }

    def restore(self, snapshot: dict) -> None:
        """Rewind to ``snapshot`` (the restart path of checkpoint-restart)."""
        if snapshot["u"].shape != self.u.shape:
            raise ValueError(
                f"snapshot grid {snapshot['u'].shape} does not match "
                f"simulation grid {self.u.shape}"
            )
        self.timestep = int(snapshot["timestep"])
        self.u = snapshot["u"].copy()
        self.v = snapshot["v"].copy()

    # -- diagnostics ------------------------------------------------------------

    def mass(self) -> tuple[float, float]:
        """Mean concentrations (bounded diagnostics for tests)."""
        return float(self.u.mean()), float(self.v.mean())

    @property
    def checkpoint_bytes(self) -> int:
        """Science-scale checkpoint volume this app writes per snapshot."""
        return self.params.checkpoint_bytes
