"""Checkpoint-restart across batch allocations.

Long simulations outlive a single batch job: the walltime kill discards
everything since the last checkpoint, and the run resumes in the next
allocation after a queue wait.  This harness runs a checkpointed
simulation across as many allocations as it takes, which is where
checkpoint *placement* earns its keep — the final timesteps of every
allocation are at risk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import check_nonnegative, check_positive, spawn_children
from repro.apps.simulation.checkpoint import CheckpointMiddleware, CheckpointPolicy
from repro.apps.simulation.run import RunConfig
from repro.cluster.filesystem import FilesystemLoadModel, ParallelFilesystem


@dataclass
class AllocationSegment:
    """What one batch job achieved."""

    index: int
    start_step: int  # durable progress at entry (last checkpoint)
    end_step: int  # durable progress at exit
    steps_computed: int  # includes work later lost to the walltime kill
    io_seconds: float
    killed_mid_flight: bool


@dataclass
class CrossAllocationReport:
    """Outcome of running a simulation to completion across batch jobs."""

    policy_name: str
    segments: list = field(default_factory=list)
    total_wall_seconds: float = 0.0  # includes queue waits
    queue_seconds: float = 0.0
    lost_steps: int = 0
    checkpoints_written: int = 0
    final_state: dict | None = None  # the app's durable snapshot, if coupled

    @property
    def allocations_used(self) -> int:
        return len(self.segments)

    @property
    def computed_steps(self) -> int:
        return sum(s.steps_computed for s in self.segments)


def run_across_allocations(
    config: RunConfig,
    policy: CheckpointPolicy,
    walltime: float,
    queue_wait: float = 600.0,
    max_allocations: int = 1000,
    app=None,
    seed=None,
) -> CrossAllocationReport:
    """Run ``config.timesteps`` steps across batch jobs of ``walltime`` seconds.

    Within an allocation the simulation steps and checkpoints under
    ``policy``; at the walltime the job dies mid-whatever-it-was-doing and
    progress reverts to the last checkpoint.  Raises if an allocation ends
    without advancing the durable frontier (the policy checkpoints too
    rarely for this walltime).

    With ``app`` set (a :class:`~repro.apps.simulation.grayscott.
    GrayScottSimulation`), the *real* numerical state advances, is
    snapshotted at every checkpoint, and is restored at every walltime
    kill — so the returned ``report.final_state`` must equal an
    uninterrupted run's state bit-for-bit.  That equality is the
    correctness contract of checkpoint-restart, and the tests assert it.
    """
    check_positive("walltime", walltime)
    check_nonnegative("queue_wait", queue_wait)
    check_positive("max_allocations", max_allocations)
    rng_steps, rng_fs = spawn_children(seed, 2)
    fs = ParallelFilesystem(
        peak_bandwidth=config.effective_bandwidth,
        load_model=FilesystemLoadModel(mean_load=config.fs_mean_load, sigma=config.fs_sigma),
        seed=rng_fs,
    )
    middleware = CheckpointMiddleware(fs, policy, config.checkpoint_bytes)

    def step_seconds() -> float:
        base = config.mean_step_seconds * config.compute_intensity
        if config.step_noise_sigma == 0:
            return base
        s = config.step_noise_sigma
        return base * float(rng_steps.lognormal(mean=-0.5 * s * s, sigma=s))

    report = CrossAllocationReport(policy_name=policy.describe())
    durable = 0  # timestep recoverable from the last checkpoint
    clock = 0.0
    snapshot = app.checkpoint() if app is not None else None  # durable app state

    for index in range(max_allocations):
        if index > 0 or queue_wait > 0:
            report.queue_seconds += queue_wait
            clock += queue_wait
        # restart: re-read the checkpoint if we have one, rewind the app
        if durable > 0:
            clock += fs.read_time(config.checkpoint_bytes, clock)
        if app is not None and snapshot is not None:
            app.restore(snapshot)
        alloc_end = clock + walltime
        frontier = durable
        steps_computed = 0
        io_this_alloc = 0.0
        killed = False
        while frontier < config.timesteps:
            compute = step_seconds()
            if clock + compute > alloc_end:
                killed = True
                clock = alloc_end
                break
            clock += compute
            frontier += 1
            steps_computed += 1
            if app is not None:
                app.step()
            prev_gap = middleware.stats.steps_since_checkpoint
            prev_estimate = middleware.stats.last_write_seconds
            io = middleware.end_of_timestep(compute, now=clock)
            if clock + io > alloc_end:
                # The write doesn't finish before the kill: void it — the
                # middleware accounting must look as if it never started.
                middleware.stats.checkpoints_written -= 1
                middleware.stats.io_seconds -= io
                middleware.stats.steps_since_checkpoint = prev_gap + 1
                middleware.stats.last_write_seconds = prev_estimate
                middleware.write_times.pop()
                killed = True
                clock = alloc_end
                break
            clock += io
            io_this_alloc += io
            if io > 0:
                durable = frontier
                if app is not None:
                    snapshot = app.checkpoint()
        if not killed and frontier >= config.timesteps:
            durable = frontier  # final state is written out at completion
            if app is not None:
                snapshot = app.checkpoint()
        report.segments.append(
            AllocationSegment(
                index=index,
                start_step=report.segments[-1].end_step if report.segments else 0,
                end_step=durable,
                steps_computed=steps_computed,
                io_seconds=io_this_alloc,
                killed_mid_flight=killed,
            )
        )
        report.lost_steps += frontier - durable if killed else 0
        if durable >= config.timesteps:
            break
        if killed and durable == report.segments[-1].start_step:
            # No durable progress this allocation — the policy checkpoints
            # too rarely for this walltime, or a single step exceeds it.
            # Either way the next allocation would repeat identically-ish;
            # diverge loudly instead of spinning.
            raise RuntimeError(
                f"allocation {index} made no durable progress "
                f"(policy {policy.describe()}, walltime {walltime}, "
                f"{steps_computed} steps computed then lost)"
            )
    else:
        raise RuntimeError(f"did not finish within {max_allocations} allocations")

    report.total_wall_seconds = clock
    report.checkpoints_written = middleware.stats.checkpoints_written
    report.final_state = snapshot
    return report
