"""Restart accounting: what a checkpoint schedule buys you.

"The advantage of this approach is that the system may allow more
frequent checkpointing if the cost of I/O is low, thereby allowing the
simulation to restart from a more recent checkpoint in case of a failure"
(§V-B).  These helpers quantify that: given the timesteps at which
checkpoints were written, how much work is lost if the job dies at step
``t`` — and in expectation over a failure distribution.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive


def lost_work_on_failure(checkpoint_timesteps, failure_timestep: int) -> int:
    """Timesteps of work lost if the job fails right after ``failure_timestep``.

    Lost work is the distance back to the most recent checkpoint at or
    before the failure point (all of it if no checkpoint precedes it).
    """
    check_positive("failure_timestep", failure_timestep)
    prior = [t for t in checkpoint_timesteps if t <= failure_timestep]
    last = max(prior) if prior else 0
    return failure_timestep - last


def expected_lost_work(checkpoint_timesteps, total_timesteps: int) -> float:
    """Mean lost timesteps over a uniform failure point in ``[1, total]``.

    Uniform failure timing is the right first-order model for a constant
    hazard over a run much shorter than the MTTF.
    """
    check_positive("total_timesteps", total_timesteps)
    losses = [
        lost_work_on_failure(checkpoint_timesteps, t)
        for t in range(1, total_timesteps + 1)
    ]
    return float(np.mean(losses))
