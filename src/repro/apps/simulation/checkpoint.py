"""Checkpoint policies and the I/O middleware (§V-B).

The conventional approach writes "a checkpoint after a preset number of
'timesteps'"; the paper's reusable alternative exposes *intent-level*
parameters — here the maximum acceptable checkpoint-I/O overhead as a
fraction of total runtime — and lets the middleware decide per step:
"The I/O middleware issues a checkpoint only as long as the current I/O
overhead is within the preset value."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_fraction, check_positive
from repro.cluster.filesystem import ParallelFilesystem


@dataclass
class CheckpointStats:
    """Running accounting the policies decide from."""

    timestep: int = 0
    compute_seconds: float = 0.0
    io_seconds: float = 0.0
    checkpoints_written: int = 0
    last_write_seconds: float | None = None
    steps_since_checkpoint: int = 0

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.io_seconds

    def overhead_fraction(self) -> float:
        """Current checkpoint-I/O overhead as a fraction of total runtime."""
        total = self.total_seconds
        return self.io_seconds / total if total > 0 else 0.0

    def projected_overhead(self, write_seconds: float) -> float:
        """Overhead if a write costing ``write_seconds`` happened now."""
        total = self.total_seconds + write_seconds
        return (self.io_seconds + write_seconds) / total if total > 0 else 1.0


class CheckpointPolicy:
    """Decide, at the end of each timestep, whether to write a checkpoint."""

    def should_checkpoint(self, stats: CheckpointStats, projected_write: float) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class FixedIntervalPolicy(CheckpointPolicy):
    """The conventional baseline: write every ``interval`` timesteps."""

    def __init__(self, interval: int):
        check_positive("interval", interval)
        self.interval = interval

    def should_checkpoint(self, stats: CheckpointStats, projected_write: float) -> bool:
        return (stats.timestep % self.interval) == 0

    def describe(self) -> str:
        return f"fixed-interval({self.interval})"


class OverheadBudgetPolicy(CheckpointPolicy):
    """The paper's policy: write while projected I/O overhead stays within
    the declared budget.

    ``max_overhead`` is the application's declared "maximum allowable
    checkpointing I/O overhead as a percentage of the total application
    runtime", expressed as a fraction.
    """

    def __init__(self, max_overhead: float):
        check_fraction("max_overhead", max_overhead)
        self.max_overhead = max_overhead

    def should_checkpoint(self, stats: CheckpointStats, projected_write: float) -> bool:
        return stats.projected_overhead(projected_write) <= self.max_overhead

    def describe(self) -> str:
        return f"overhead-budget({self.max_overhead:.0%})"


class HybridPolicy(CheckpointPolicy):
    """Overhead budget plus a minimum-frequency floor (§V-B: "further
    fine-tuning may be done to ensure a certain minimum frequency").

    Writes when the budget allows, and *forces* a write whenever
    ``max_gap`` timesteps have passed without one — the failure-exposure
    backstop — even if that temporarily exceeds the budget.
    """

    def __init__(self, max_overhead: float, max_gap: int):
        check_fraction("max_overhead", max_overhead)
        check_positive("max_gap", max_gap)
        self.budget = OverheadBudgetPolicy(max_overhead)
        self.max_gap = max_gap

    def should_checkpoint(self, stats: CheckpointStats, projected_write: float) -> bool:
        if stats.steps_since_checkpoint >= self.max_gap:
            return True
        return self.budget.should_checkpoint(stats, projected_write)

    def describe(self) -> str:
        return f"hybrid({self.budget.max_overhead:.0%}, gap<={self.max_gap})"


class CheckpointMiddleware:
    """The I/O layer between the application and the filesystem.

    Owns the policy, the accounting, and the write path.  The projected
    write cost shown to the policy is estimated from the *last observed*
    write (first write is estimated from current filesystem load) — the
    middleware cannot see the future load, exactly like the real system.
    """

    def __init__(self, filesystem: ParallelFilesystem, policy: CheckpointPolicy, checkpoint_bytes: int):
        check_positive("checkpoint_bytes", checkpoint_bytes)
        self.filesystem = filesystem
        self.policy = policy
        self.checkpoint_bytes = checkpoint_bytes
        self.stats = CheckpointStats()
        self.write_times: list[tuple[int, float]] = []  # (timestep, seconds)

    def _estimate_write(self, now: float) -> float:
        if self.stats.last_write_seconds is not None:
            return self.stats.last_write_seconds
        # First write: estimate from nominal bandwidth at mean load; the
        # middleware has no observation yet.
        return self.checkpoint_bytes / self.filesystem.peak_bandwidth

    def end_of_timestep(self, compute_seconds: float, now: float) -> float:
        """Account one finished timestep; maybe write.  Returns I/O seconds.

        ``now`` is the virtual wall clock at the end of compute; the
        filesystem's load process is evaluated at that instant.
        """
        self.stats.timestep += 1
        self.stats.steps_since_checkpoint += 1
        self.stats.compute_seconds += compute_seconds
        projected = self._estimate_write(now)
        if not self.policy.should_checkpoint(self.stats, projected):
            return 0.0
        seconds = self.filesystem.write_time(self.checkpoint_bytes, now)
        self.stats.io_seconds += seconds
        self.stats.checkpoints_written += 1
        self.stats.last_write_seconds = seconds
        self.stats.steps_since_checkpoint = 0
        self.write_times.append((self.stats.timestep, seconds))
        return seconds
