"""Checkpoint-restart experiment substrate (§V-B, Figures 3 & 4).

A Gray-Scott reaction-diffusion solver stands in for "a common
reaction-diffusion benchmark on Summit"; the checkpoint middleware applies
either the conventional fixed-interval policy or the paper's
overhead-budget policy against the simulated parallel filesystem.

- :mod:`repro.apps.simulation.grayscott` — the numerical application.
- :mod:`repro.apps.simulation.checkpoint` — policies + middleware.
- :mod:`repro.apps.simulation.run` — the checkpointed-run harness on a
  virtual clock (compute cost model + filesystem write costs).
- :mod:`repro.apps.simulation.restart` — failure/restart accounting
  (lost work given a checkpoint schedule).
- :mod:`repro.apps.simulation.allocations` — checkpoint-restart across
  batch allocations (walltime kills + resume), optionally coupled to the
  real app so restart *numerical* correctness is verified.
- :mod:`repro.apps.simulation.faulty` — run-to-completion under an
  exponential failure process (what a checkpoint policy is worth on an
  unreliable machine).
"""

from repro.apps.simulation.grayscott import GrayScottSimulation, GrayScottParams
from repro.apps.simulation.checkpoint import (
    CheckpointStats,
    CheckpointPolicy,
    FixedIntervalPolicy,
    OverheadBudgetPolicy,
    HybridPolicy,
    CheckpointMiddleware,
)
from repro.apps.simulation.run import CheckpointedRun, RunConfig, RunReport, StepRecord
from repro.apps.simulation.restart import lost_work_on_failure, expected_lost_work
from repro.apps.simulation.allocations import (
    AllocationSegment,
    CrossAllocationReport,
    run_across_allocations,
)
from repro.apps.simulation.faulty import (
    FaultyRunReport,
    run_to_completion,
    policy_comparison_under_failures,
)

__all__ = [
    "GrayScottSimulation",
    "GrayScottParams",
    "CheckpointStats",
    "CheckpointPolicy",
    "FixedIntervalPolicy",
    "OverheadBudgetPolicy",
    "HybridPolicy",
    "CheckpointMiddleware",
    "CheckpointedRun",
    "RunConfig",
    "RunReport",
    "StepRecord",
    "lost_work_on_failure",
    "expected_lost_work",
    "AllocationSegment",
    "CrossAllocationReport",
    "run_across_allocations",
    "FaultyRunReport",
    "run_to_completion",
    "policy_comparison_under_failures",
]
