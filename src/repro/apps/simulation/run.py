"""The checkpointed-run harness (Figures 3 & 4).

Drives the application for ``timesteps`` steps on a *virtual clock*:
per-step compute cost comes from a configurable intensity profile (the
paper varied the application "to perform more/less computations and
communication"), checkpoint writes cost what the simulated filesystem
says they cost at that instant.  The small real Gray-Scott grid advances
alongside so the run produces genuine science output, while the cost
model carries the leadership-class scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import as_generator, check_positive, spawn_children
from repro.apps.simulation.checkpoint import CheckpointMiddleware, CheckpointPolicy
from repro.apps.simulation.grayscott import GrayScottParams, GrayScottSimulation
from repro.cluster.filesystem import FilesystemLoadModel, ParallelFilesystem


@dataclass(frozen=True)
class RunConfig:
    """One experiment configuration matching the paper's setup.

    Defaults mirror §V-B: 50 timesteps, 1 TB per checkpoint, 4096 ranks
    over 128 nodes.  ``effective_bandwidth`` is the delivered collective
    write bandwidth this job sees (a 4096-rank writer on a shared PFS gets
    a slice of peak, not peak).  ``compute_intensity`` scales per-step
    compute time — the paper's "more/less computations" knob.
    """

    timesteps: int = 50
    checkpoint_bytes: int = int(1e12)
    ranks: int = 4096
    nodes: int = 128
    mean_step_seconds: float = 30.0
    step_noise_sigma: float = 0.15  # lognormal sigma of per-step compute jitter
    compute_intensity: float = 1.0
    effective_bandwidth: float = 5.0e10  # bytes/s delivered to this job
    fs_mean_load: float = 1.6
    fs_sigma: float = 0.35
    grid_n: int = 64  # real numerics grid (small; the cost model carries scale)

    def __post_init__(self) -> None:
        check_positive("timesteps", self.timesteps)
        check_positive("mean_step_seconds", self.mean_step_seconds)
        check_positive("compute_intensity", self.compute_intensity)
        check_positive("effective_bandwidth", self.effective_bandwidth)


@dataclass(frozen=True)
class StepRecord:
    """Per-timestep accounting row."""

    timestep: int
    compute_seconds: float
    io_seconds: float
    wrote_checkpoint: bool
    clock: float  # virtual time at end of step


@dataclass
class RunReport:
    """Outcome of one checkpointed run."""

    config: RunConfig
    policy_name: str
    checkpoints_written: int
    compute_seconds: float
    io_seconds: float
    overhead_fraction: float
    checkpoint_timesteps: list
    steps: list = field(default_factory=list)  # list[StepRecord]
    final_mass: tuple = (0.0, 0.0)

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.io_seconds


class CheckpointedRun:
    """Run the reaction-diffusion app under a checkpoint policy."""

    def __init__(self, config: RunConfig, policy: CheckpointPolicy, seed=None):
        self.config = config
        self.policy = policy
        rng_steps, rng_fs, rng_app = spawn_children(seed, 3)
        self._rng = rng_steps
        self.filesystem = ParallelFilesystem(
            peak_bandwidth=config.effective_bandwidth,
            load_model=FilesystemLoadModel(
                mean_load=config.fs_mean_load, sigma=config.fs_sigma
            ),
            seed=rng_fs,
        )
        self.middleware = CheckpointMiddleware(
            self.filesystem, policy, config.checkpoint_bytes
        )
        self.app = GrayScottSimulation(
            GrayScottParams(n=config.grid_n, checkpoint_bytes=config.checkpoint_bytes),
            seed=rng_app,
        )

    def _step_compute_seconds(self) -> float:
        c = self.config
        base = c.mean_step_seconds * c.compute_intensity
        if c.step_noise_sigma == 0:
            return base
        # lognormal jitter normalized to mean 1
        sigma = c.step_noise_sigma
        return base * float(
            self._rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma)
        )

    def execute(self) -> RunReport:
        """Run all timesteps; returns the accounting report."""
        clock = 0.0
        steps: list[StepRecord] = []
        for _ in range(self.config.timesteps):
            self.app.step()
            compute = self._step_compute_seconds()
            clock += compute
            io = self.middleware.end_of_timestep(compute, now=clock)
            clock += io
            steps.append(
                StepRecord(
                    timestep=self.middleware.stats.timestep,
                    compute_seconds=compute,
                    io_seconds=io,
                    wrote_checkpoint=io > 0,
                    clock=clock,
                )
            )
        stats = self.middleware.stats
        return RunReport(
            config=self.config,
            policy_name=self.policy.describe(),
            checkpoints_written=stats.checkpoints_written,
            compute_seconds=stats.compute_seconds,
            io_seconds=stats.io_seconds,
            overhead_fraction=stats.overhead_fraction(),
            checkpoint_timesteps=[t for t, _s in self.middleware.write_times],
            steps=steps,
            final_mass=self.app.mass(),
        )


def overhead_sweep(
    overheads,
    config: RunConfig | None = None,
    seed=0,
) -> list[tuple[float, int]]:
    """Figure 3 series: permitted overhead → checkpoints written.

    Each point uses the same seed so filesystem and compute draws are
    shared across the sweep: the *policy threshold* is the only thing
    changing, as in the paper's controlled runs.
    """
    from repro.apps.simulation.checkpoint import OverheadBudgetPolicy

    config = config or RunConfig()
    out = []
    for overhead in overheads:
        report = CheckpointedRun(config, OverheadBudgetPolicy(overhead), seed=seed).execute()
        out.append((overhead, report.checkpoints_written))
    return out


def variation_study(
    n_runs: int,
    overhead: float = 0.10,
    config: RunConfig | None = None,
    seed=0,
    vary_intensity: bool = True,
) -> list[RunReport]:
    """Figure 4 series: repeated runs at one overhead budget.

    Run-to-run changes come from (a) fresh filesystem load trajectories
    and (b) per-run compute-intensity perturbation (the paper's
    application-behaviour changes).
    """
    from dataclasses import replace

    from repro.apps.simulation.checkpoint import OverheadBudgetPolicy

    check_positive("n_runs", n_runs)
    config = config or RunConfig()
    master = as_generator(seed)
    reports = []
    for _ in range(n_runs):
        cfg = config
        if vary_intensity:
            cfg = replace(
                config,
                compute_intensity=config.compute_intensity
                * float(master.uniform(0.7, 1.3)),
            )
        run = CheckpointedRun(cfg, OverheadBudgetPolicy(overhead), seed=master)
        reports.append(run.execute())
    return reports
