"""Checkpoint-restart under injected failures — the §V-B payoff, end to end.

The paper motivates overhead-driven checkpointing by failure recovery:
more frequent checkpoints (when I/O is cheap) mean restarting "from a
more recent checkpoint in case of a failure".  This harness runs the
reaction-diffusion workload to completion on the virtual clock with an
exponential failure process: every failure rewinds progress to the last
checkpoint, pays a restart cost (checkpoint read + requeue), and
continues.  The total wall time quantifies what a checkpoint policy is
actually worth on an unreliable machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_nonnegative, check_positive, spawn_children
from repro.apps.simulation.checkpoint import CheckpointMiddleware, CheckpointPolicy
from repro.apps.simulation.run import RunConfig
from repro.cluster.filesystem import FilesystemLoadModel, ParallelFilesystem


@dataclass
class FaultyRunReport:
    """Outcome of a run-to-completion under failures."""

    policy_name: str
    total_seconds: float
    useful_compute_seconds: float
    io_seconds: float
    restart_seconds: float
    failures: int
    redone_steps: int
    checkpoints_written: int

    @property
    def waste_fraction(self) -> float:
        """Share of wall time not spent on first-time compute."""
        if self.total_seconds <= 0:
            return 0.0
        return 1.0 - self.useful_compute_seconds / self.total_seconds


def run_to_completion(
    config: RunConfig,
    policy: CheckpointPolicy,
    job_mttf: float,
    requeue_delay: float = 600.0,
    max_failures: int = 10_000,
    seed=None,
) -> FaultyRunReport:
    """Run ``config.timesteps`` steps to completion despite failures.

    Parameters
    ----------
    job_mttf:
        Mean time between failures for the *whole job* (all nodes), in
        wall seconds — exponential inter-failure times.
    requeue_delay:
        Scheduler/restart latency paid per failure, on top of re-reading
        the last checkpoint from the filesystem.
    max_failures:
        Livelock guard: if the job cannot retain progress (e.g. MTTF far
        below the checkpoint interval), raise instead of spinning.
    """
    check_positive("job_mttf", job_mttf)
    check_nonnegative("requeue_delay", requeue_delay)
    rng_steps, rng_fail, rng_fs = spawn_children(seed, 3)
    fs = ParallelFilesystem(
        peak_bandwidth=config.effective_bandwidth,
        load_model=FilesystemLoadModel(mean_load=config.fs_mean_load, sigma=config.fs_sigma),
        seed=rng_fs,
    )
    middleware = CheckpointMiddleware(fs, policy, config.checkpoint_bytes)

    def step_seconds() -> float:
        base = config.mean_step_seconds * config.compute_intensity
        if config.step_noise_sigma == 0:
            return base
        s = config.step_noise_sigma
        return base * float(rng_steps.lognormal(mean=-0.5 * s * s, sigma=s))

    clock = 0.0
    useful = 0.0
    restart_seconds = 0.0
    failures = 0
    redone = 0
    completed = 0  # timesteps durably finished (as of last checkpoint, or
    # the running frontier if no failure intervenes)
    checkpointed = 0  # last checkpointed timestep
    frontier = 0  # current in-memory progress
    next_failure = clock + float(rng_fail.exponential(job_mttf))

    while frontier < config.timesteps:
        compute = step_seconds()
        if clock + compute >= next_failure:
            # Failure mid-step: everything since the last checkpoint is lost.
            failures += 1
            if failures > max_failures:
                raise RuntimeError(
                    f"no forward progress after {max_failures} failures "
                    f"(job_mttf={job_mttf}, policy={policy.describe()})"
                )
            clock = next_failure
            redone += frontier - checkpointed
            frontier = checkpointed
            read = fs.read_time(config.checkpoint_bytes, clock) if checkpointed else 0.0
            restart_seconds += read + requeue_delay
            clock += read + requeue_delay
            next_failure = clock + float(rng_fail.exponential(job_mttf))
            continue
        clock += compute
        frontier += 1
        useful += compute if frontier > completed else 0.0
        completed = max(completed, frontier)
        io = middleware.end_of_timestep(compute, now=clock)
        clock += io
        if io > 0:
            checkpointed = frontier
        # A failure can also land during the checkpoint write; treat the
        # write as atomic-at-end: if the failure hits inside the window,
        # the checkpoint still completed (middleware already accounted it)
        # but the *next* failure draw governs what happens after.

    stats = middleware.stats
    return FaultyRunReport(
        policy_name=policy.describe(),
        total_seconds=clock,
        useful_compute_seconds=useful,
        io_seconds=stats.io_seconds,
        restart_seconds=restart_seconds,
        failures=failures,
        redone_steps=redone,
        checkpoints_written=stats.checkpoints_written,
    )


def policy_comparison_under_failures(
    policies,
    config: RunConfig | None = None,
    job_mttf: float = 6000.0,
    seed=0,
) -> list[FaultyRunReport]:
    """Run each policy to completion against the same failure environment."""
    config = config or RunConfig()
    return [
        run_to_completion(config, policy, job_mttf=job_mttf, seed=seed)
        for policy in policies
    ]
