"""The dataflow graph and its deterministic run loop.

Components are nodes; a connection binds an output port of one component
to an input port of another through a fresh :class:`Channel`.  Execution
is round-based: every round steps every component once (in insertion
order); the loop ends when a full round makes no progress and every
component reports finished — or raises if the graph stalls with work
still buffered (deadlock detection beats silent hangs).
"""

from __future__ import annotations

import time

import networkx as nx

from repro.dataflow.channels import Channel
from repro.dataflow.components import Component


class GraphValidationError(ValueError):
    """The graph is not runnable (unbound ports, duplicate names, cycles)."""


class DataflowGraph:
    """A workflow graph of components connected by channels."""

    def __init__(self, name: str = "workflow", allow_cycles: bool = False):
        self.name = name
        self.allow_cycles = allow_cycles
        self._components: dict[str, Component] = {}
        self._channels: list[Channel] = []
        self._edges: list[tuple[str, str, str, str]] = []  # (src, port, dst, port)

    # -- construction -----------------------------------------------------------

    def add(self, component: Component) -> Component:
        if component.name in self._components:
            raise GraphValidationError(f"duplicate component name {component.name!r}")
        self._components[component.name] = component
        return component

    def connect(
        self,
        src: Component | str,
        src_port: str,
        dst: Component | str,
        dst_port: str,
        capacity: int = 1024,
    ) -> Channel:
        """Create a channel from ``src.src_port`` to ``dst.dst_port``."""
        src_c = self._resolve(src)
        dst_c = self._resolve(dst)
        channel = Channel(
            name=f"{src_c.name}.{src_port}->{dst_c.name}.{dst_port}", capacity=capacity
        )
        src_c.bind_output(src_port, channel)
        dst_c.bind_input(dst_port, channel)
        self._channels.append(channel)
        self._edges.append((src_c.name, src_port, dst_c.name, dst_port))
        return channel

    def _resolve(self, ref) -> Component:
        if isinstance(ref, Component):
            if ref.name not in self._components:
                raise GraphValidationError(f"component {ref.name!r} not added to graph")
            return ref
        try:
            return self._components[ref]
        except KeyError:
            raise GraphValidationError(f"unknown component {ref!r}") from None

    def component(self, name: str) -> Component:
        return self._components[name]

    @property
    def components(self) -> tuple:
        """All components, in insertion (execution) order."""
        return tuple(self._components.values())

    @property
    def edges(self) -> tuple:
        """Connection tuples ``(src, src_port, dst, dst_port)`` — the
        static topology ``repro.lint`` analyzes without running the graph."""
        return tuple(self._edges)

    @property
    def channels(self) -> tuple:
        return tuple(self._channels)

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        if not self._components:
            raise GraphValidationError("graph has no components")
        for component in self._components.values():
            if not component.fully_bound():
                missing_in = set(component.input_names) - set(component.in_channels)
                missing_out = set(component.output_names) - set(component.out_channels)
                raise GraphValidationError(
                    f"component {component.name!r} has unbound ports: "
                    f"inputs {sorted(missing_in)}, outputs {sorted(missing_out)}"
                )
        if not self.allow_cycles:
            g = nx.DiGraph()
            g.add_nodes_from(self._components)
            g.add_edges_from((s, d) for s, _sp, d, _dp in self._edges)
            if not nx.is_directed_acyclic_graph(g):
                cycle = nx.find_cycle(g)
                raise GraphValidationError(f"graph has a cycle: {cycle}")

    # -- execution -------------------------------------------------------------------

    def run(self, max_rounds: int = 1_000_000) -> dict:
        """Run to quiescence; returns run metrics.

        Raises :class:`RuntimeError` if the graph stalls (no component can
        make progress but data remains buffered) or exceeds ``max_rounds``.
        """
        self.validate()
        components = list(self._components.values())
        t0 = time.perf_counter()
        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            progressed = False
            # One step per component per round: fine-grained interleaving is
            # what lets control punctuation overtake buffered data and makes
            # policy-install latency meaningful.
            for component in components:
                if component.step():
                    progressed = True
            if not progressed:
                if all(c.finished() for c in components):
                    break
                backlog = {ch.name: len(ch) for ch in self._channels if len(ch)}
                raise RuntimeError(
                    f"graph {self.name!r} stalled with backlog {backlog} and "
                    f"unfinished components "
                    f"{[c.name for c in components if not c.finished()]}"
                )
        else:
            raise RuntimeError(f"graph {self.name!r} exceeded {max_rounds} rounds")
        elapsed = time.perf_counter() - t0
        items_moved = sum(ch.pushed_count for ch in self._channels)
        return {
            "rounds": rounds,
            "elapsed_seconds": elapsed,
            "items_moved": items_moved,
            "throughput_items_per_s": items_moved / elapsed if elapsed > 0 else float("inf"),
            "per_component": {
                c.name: {"in": c.items_in, "out": c.items_out} for c in components
            },
        }
