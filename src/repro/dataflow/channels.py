"""Typed FIFO channels carrying data items and punctuation.

Channels are the generated "communication components" of §V-C: their
behaviour is fully determined by data descriptors, so they can be (and
in :mod:`repro.dataflow.codegen`, are) produced mechanically.  A channel
carries two kinds of traffic:

- :class:`DataItem` — a sequence-numbered, timestamped payload.
- :class:`Punctuation` — a control mark "signaling abstract divisions
  between groups of data" or carrying policy-control commands.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro._util import check_positive


class ChannelClosed(RuntimeError):
    """Pushed to a channel whose producer already signalled completion."""


_seq_counter = itertools.count()


@dataclass(frozen=True)
class DataItem:
    """One unit of science data in flight."""

    payload: Any
    seq: int = field(default_factory=lambda: next(_seq_counter))
    timestamp: float = 0.0


@dataclass(frozen=True)
class Punctuation:
    """A control mark: group boundary, policy command, end-of-stream."""

    kind: str  # e.g. "group-boundary", "install-policy", "activate", "eos"
    payload: Any = None


class Channel:
    """A bounded FIFO between two components.

    ``capacity`` bounds in-flight items (backpressure: a full channel
    rejects pushes and the graph loop retries the producer next round).
    Punctuation bypasses the capacity check — control must never be
    blocked behind data.
    """

    def __init__(self, name: str, capacity: int = 1024):
        check_positive("capacity", capacity)
        self.name = name
        self.capacity = capacity
        self._queue: deque = deque()
        self.closed = False
        self.pushed_count = 0
        self.popped_count = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def data_backlog(self) -> int:
        return sum(1 for x in self._queue if isinstance(x, DataItem))

    def can_push(self) -> bool:
        return not self.closed and self.data_backlog < self.capacity

    def push(self, item) -> None:
        """Append a DataItem (capacity-checked) or Punctuation (always)."""
        if self.closed:
            raise ChannelClosed(f"channel {self.name!r} is closed")
        if isinstance(item, DataItem):
            if self.data_backlog >= self.capacity:
                raise RuntimeError(
                    f"channel {self.name!r} full (capacity {self.capacity})"
                )
        elif not isinstance(item, Punctuation):
            raise TypeError(
                f"channel {self.name!r}: expected DataItem or Punctuation, "
                f"got {type(item).__name__}"
            )
        self._queue.append(item)
        self.pushed_count += 1

    def pop(self):
        """Remove and return the oldest entry; None when empty."""
        if not self._queue:
            return None
        self.popped_count += 1
        return self._queue.popleft()

    def peek(self):
        return self._queue[0] if self._queue else None

    def close(self) -> None:
        """Producer signals end-of-stream; pending entries stay readable."""
        if not self.closed:
            self.closed = True
            self._queue.append(Punctuation(kind="eos"))

    @property
    def drained(self) -> bool:
        """Closed and fully consumed."""
        return self.closed and not self._queue
