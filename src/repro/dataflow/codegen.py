"""Skel-driven generation of communication components (§V-C).

"In this workflow, all data formats are known beforehand, and so the
communication code necessary can be automatically generated."  Given a
port's :class:`~repro.metadata.schema.DataSchema` and
:class:`~repro.metadata.semantics.DataSemanticsDescriptor`, this module
generates the Python source of the *collector* (schema-validating ingest)
and *forwarder* (field-order marshalling, order-preservation enforcement)
components, and can materialize the source into live classes.

The generated text is the reuse unit: swapping selection policies leaves
it untouched (reuse fraction 1.0), while a schema change regenerates only
the affected marshalling lines — :func:`generated_source_reuse` measures
exactly that.
"""

from __future__ import annotations

from repro.metadata.schema import DataSchema
from repro.metadata.semantics import DataSemanticsDescriptor
from repro.skel.generator import GeneratedFile, Generator, TemplateLibrary
from repro.skel.model import ModelField, ModelSchema, SkelModel

_COLLECTOR_TEMPLATE = '''"""Collector for schema ${schema_name} v${schema_version} (generated)."""
from repro.dataflow.channels import DataItem
from repro.dataflow.components import Source


EXPECTED_FIELDS = (
{% for f in fields %}    ("${f.name}", "${f.dtype}"),
{% endfor %})


class ${class_name}Collector(Source):
    """Validating instrument-capture source for ${schema_name}."""

    def __init__(self, name, items, output="out", clock=None):
        super().__init__(name, self._validate_stream(items), output=output, clock=clock)

    @staticmethod
    def _validate_stream(items):
        for record in items:
            missing = [n for n, _t in EXPECTED_FIELDS if n not in record]
            if missing:
                raise ValueError(
                    f"record missing fields {missing} (schema ${schema_name})"
                )
            yield {n: record[n] for n, _t in EXPECTED_FIELDS}
'''

_FORWARDER_TEMPLATE = '''"""Forwarder for schema ${schema_name} v${schema_version} (generated)."""
from repro.dataflow.channels import DataItem, Punctuation
from repro.dataflow.components import Component

FIELD_ORDER = ({% for f in fields %}"${f.name}", {% endfor %})
PRESERVE_ORDER = ${preserve_order}


class ${class_name}Forwarder(Component):
    """Marshalling forwarder: payload dict -> field-ordered tuple."""

    def __init__(self, name, input="in", output="out"):
        super().__init__(name, inputs=(input,), outputs=(output,))
        self._input = input
        self._output = output
        self._eos = False
        self._last_seq = -1

    def step(self):
        out = self.out_channels[self._output]
        if not out.can_push():
            return False
        entry = self.in_channels[self._input].pop()
        if entry is None:
            return False
        if isinstance(entry, Punctuation):
            if entry.kind == "eos":
                self._eos = True
                self.close_outputs()
            else:
                out.push(entry)
            return True
        if PRESERVE_ORDER and entry.seq <= self._last_seq:
            raise RuntimeError(
                f"order violation: seq {entry.seq} after {self._last_seq} "
                "(stream semantics require order preservation)"
            )
        self._last_seq = max(self._last_seq, entry.seq)
        self.items_in += 1
        marshalled = tuple(entry.payload[f] for f in FIELD_ORDER)
        self._emit(self._output, DataItem(payload=marshalled, seq=entry.seq,
                                          timestamp=entry.timestamp))
        return True

    def finished(self):
        return self._eos
'''


def _comm_schema() -> ModelSchema:
    return ModelSchema(
        name="dataflow-comm",
        description="Communication-component generation model.",
        fields=(
            ModelField("schema_name", "string"),
            ModelField("schema_version", "string"),
            ModelField("class_name", "string"),
            ModelField("fields", "list"),
            ModelField("preserve_order", "string"),
        ),
    )


class CommunicationCodegen:
    """Generate collector/forwarder source from data descriptors."""

    def __init__(self) -> None:
        self.library = TemplateLibrary()
        self.library.add("collector", "collector_${schema_name|lower}.py", _COLLECTOR_TEMPLATE)
        self.library.add("forwarder", "forwarder_${schema_name|lower}.py", _FORWARDER_TEMPLATE)
        self._generator = Generator(self.library)
        self._schema = _comm_schema()

    def model_for(
        self,
        schema: DataSchema,
        semantics: DataSemanticsDescriptor,
        class_prefix: str = "Generated",
    ) -> SkelModel:
        """Build the generation model for one port's descriptors."""
        if schema.tier_index() < 3:
            raise ValueError(
                "communication generation requires a SELF_DESCRIBING schema "
                f"(tier 3); {schema.format_name!r} is at tier {schema.tier_index()}"
            )
        return SkelModel(
            self._schema,
            {
                "schema_name": schema.format_name,
                "schema_version": schema.format_version,
                "class_name": f"{class_prefix}{schema.format_name.title().replace('-', '')}",
                "fields": [{"name": f.name, "dtype": f.dtype} for f in schema.fields],
                "preserve_order": str(semantics.requires_order_preservation()),
            },
        )

    def generate(self, schema: DataSchema, semantics: DataSemanticsDescriptor) -> list[GeneratedFile]:
        """Render collector + forwarder source for the descriptors."""
        return self._generator.generate(self.model_for(schema, semantics))

    def materialize(self, files: list[GeneratedFile]) -> dict[str, type]:
        """Exec the generated source; returns ``{class_name: class}``.

        Generated code is our own template output, not user input, so an
        in-process exec is the honest equivalent of the paper's
        generate-compile-link cycle.
        """
        out: dict[str, type] = {}
        for f in files:
            namespace: dict = {}
            exec(compile(f.content, f.relpath, "exec"), namespace)  # noqa: S102
            for name, value in namespace.items():
                if isinstance(value, type) and name.startswith("Generated"):
                    out[name] = value
        return out


def generated_source_reuse(before: list[GeneratedFile], after: list[GeneratedFile]) -> float:
    """Fraction of generated lines unchanged between two generation runs.

    Matching is per-file by template name, line-set based, fingerprint
    header excluded (the stamp always changes with the model).
    """
    before_by_template = {f.template_name: f for f in before}
    shared_lines = 0
    total_lines = 0
    for f in after:
        old = before_by_template.get(f.template_name)
        new_lines = [l for l in f.content.splitlines() if "model-fingerprint" not in l]
        total_lines += len(new_lines)
        if old is None:
            continue
        old_set = {l for l in old.content.splitlines() if "model-fingerprint" not in l}
        shared_lines += sum(1 for l in new_lines if l in old_set)
    return shared_lines / total_lines if total_lines else 1.0
