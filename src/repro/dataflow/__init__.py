"""Streaming dataflow substrate — the synthetic workflow of §V-C (Figure 5).

A collection/selection/forwarding workflow: data captured at an
instrument flows through a *data scheduler* to downstream consumers.  The
pieces that rarely change (communication: collection and forwarding) are
*generated* from data descriptors; the piece that changes at runtime
(the selection policy) is installed dynamically through a control
("data punctuation") channel — including policies unknown at
code-generation time.  The data scheduler maintains *virtual data queues*,
one per installed policy, selectively invoked by control input.

- :mod:`repro.dataflow.channels` — typed FIFO channels carrying data items
  and punctuation marks.
- :mod:`repro.dataflow.components` — component base class plus sources,
  sinks, and transforms.
- :mod:`repro.dataflow.policies` — selection policies (forward-all,
  sliding windows, direct selection, sampling).
- :mod:`repro.dataflow.datascheduler` — the data-scheduler component with
  runtime policy installation and virtual queues.
- :mod:`repro.dataflow.graph` — the dataflow graph and its deterministic
  round-based run loop.
- :mod:`repro.dataflow.codegen` — Skel-driven generation of the
  communication components from data descriptors, with a code-reuse
  metric across regenerations.
"""

from repro.dataflow.channels import Channel, DataItem, Punctuation, ChannelClosed
from repro.dataflow.components import (
    Component,
    Source,
    Sink,
    Transform,
    Filter,
    Merge,
    ControlSource,
    PortError,
)
from repro.dataflow.policies import (
    SelectionPolicy,
    ForwardAll,
    SlidingWindowCount,
    SlidingWindowTime,
    DirectSelection,
    SampleEveryK,
)
from repro.dataflow.datascheduler import DataScheduler, VirtualQueue
from repro.dataflow.graph import DataflowGraph, GraphValidationError
from repro.dataflow.codegen import (
    CommunicationCodegen,
    generated_source_reuse,
)

__all__ = [
    "Channel",
    "DataItem",
    "Punctuation",
    "ChannelClosed",
    "Component",
    "Source",
    "Sink",
    "Transform",
    "Filter",
    "Merge",
    "ControlSource",
    "PortError",
    "SelectionPolicy",
    "ForwardAll",
    "SlidingWindowCount",
    "SlidingWindowTime",
    "DirectSelection",
    "SampleEveryK",
    "DataScheduler",
    "VirtualQueue",
    "DataflowGraph",
    "GraphValidationError",
    "CommunicationCodegen",
    "generated_source_reuse",
]
