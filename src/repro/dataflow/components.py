"""Dataflow components: the nodes of the workflow graph.

A :class:`Component` owns named input/output *ports*; the graph binds
ports to channels.  Execution is round-based and single-threaded: the
graph calls :meth:`Component.step` repeatedly; a step returns True when
it made progress (consumed or produced something), so the loop detects
quiescence deterministically — important both for tests and for the
"technical debt of debugging a workflow" story: every run of a graph on
the same input is identical.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.dataflow.channels import Channel, DataItem, Punctuation


class PortError(ValueError):
    """Unknown or already-bound port."""


class Component:
    """Base class: named ports, channel binding, lifecycle."""

    def __init__(self, name: str, inputs: tuple = (), outputs: tuple = ()):
        self.name = name
        self.input_names = tuple(inputs)
        self.output_names = tuple(outputs)
        overlap = set(self.input_names) & set(self.output_names)
        if overlap:
            raise PortError(f"{name!r}: ports used as both input and output: {overlap}")
        self.in_channels: dict[str, Channel] = {}
        self.out_channels: dict[str, Channel] = {}
        self.items_in = 0
        self.items_out = 0

    # -- binding (called by the graph) ---------------------------------------

    def bind_input(self, port: str, channel: Channel) -> None:
        if port not in self.input_names:
            raise PortError(f"{self.name!r} has no input port {port!r}")
        if port in self.in_channels:
            raise PortError(f"{self.name!r}: input port {port!r} already bound")
        self.in_channels[port] = channel

    def bind_output(self, port: str, channel: Channel) -> None:
        if port not in self.output_names:
            raise PortError(f"{self.name!r} has no output port {port!r}")
        if port in self.out_channels:
            raise PortError(f"{self.name!r}: output port {port!r} already bound")
        self.out_channels[port] = channel

    def fully_bound(self) -> bool:
        return set(self.in_channels) == set(self.input_names) and set(
            self.out_channels
        ) == set(self.output_names)

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Do one unit of work; return True if progress was made."""
        raise NotImplementedError

    def finished(self) -> bool:
        """True when this component will never produce again."""
        raise NotImplementedError

    def _emit(self, port: str, item) -> None:
        self.out_channels[port].push(item)
        if isinstance(item, DataItem):
            self.items_out += 1

    def close_outputs(self) -> None:
        for channel in self.out_channels.values():
            channel.close()


class Source(Component):
    """Produces items from an iterable — the instrument of Figure 5."""

    def __init__(self, name: str, items: Iterable, output: str = "out", clock: Callable[[int], float] | None = None):
        super().__init__(name, inputs=(), outputs=(output,))
        self._iter = iter(items)
        self._output = output
        self._clock = clock or (lambda i: float(i))
        self._count = 0
        self._done = False

    def step(self) -> bool:
        if self._done:
            return False
        channel = self.out_channels[self._output]
        if not channel.can_push():
            return False
        try:
            payload = next(self._iter)
        except StopIteration:
            self._done = True
            self.close_outputs()
            return True
        self._emit(
            self._output, DataItem(payload=payload, timestamp=self._clock(self._count))
        )
        self._count += 1
        return True

    def finished(self) -> bool:
        return self._done


class Sink(Component):
    """Collects items — a downstream consumer of Figure 5."""

    def __init__(self, name: str, input: str = "in"):
        super().__init__(name, inputs=(input,), outputs=())
        self._input = input
        self.received: list[DataItem] = []
        self.punctuation: list[Punctuation] = []
        self._eos = False

    def step(self) -> bool:
        # Sinks drain everything available: they are terminal, so there is
        # no downstream backpressure to respect.
        progressed = False
        while True:
            entry = self.in_channels[self._input].pop()
            if entry is None:
                return progressed
            progressed = True
            if isinstance(entry, Punctuation):
                if entry.kind == "eos":
                    self._eos = True
                else:
                    self.punctuation.append(entry)
            else:
                self.received.append(entry)
                self.items_in += 1

    def finished(self) -> bool:
        return self._eos and len(self.in_channels[self._input]) == 0

    def payloads(self) -> list:
        return [item.payload for item in self.received]


class Filter(Component):
    """Drops items whose payload fails ``predicate`` — the simplest
    selection stage; contrast with the data scheduler's *policies*, which
    are stateful and runtime-swappable."""

    def __init__(self, name: str, predicate: Callable[[Any], bool], input: str = "in", output: str = "out"):
        super().__init__(name, inputs=(input,), outputs=(output,))
        self._predicate = predicate
        self._input = input
        self._output = output
        self._eos = False
        self.dropped = 0

    def step(self) -> bool:
        out = self.out_channels[self._output]
        if not out.can_push():
            return False
        entry = self.in_channels[self._input].pop()
        if entry is None:
            return False
        if isinstance(entry, Punctuation):
            if entry.kind == "eos":
                self._eos = True
                self.close_outputs()
            else:
                out.push(entry)
            return True
        self.items_in += 1
        if self._predicate(entry.payload):
            self._emit(self._output, entry)
        else:
            self.dropped += 1
        return True

    def finished(self) -> bool:
        return self._eos


class Merge(Component):
    """Fan-in: merge several input streams into one output.

    Deterministic round-robin service across inputs; the output closes
    when every input has reached end-of-stream.  Non-eos punctuation from
    any input flows through.  This is the aggregation half of Figure 5's
    collection/forwarding structure when multiple instruments feed one
    data scheduler.
    """

    def __init__(self, name: str, inputs: tuple, output: str = "out"):
        if not inputs:
            raise PortError(f"{name!r}: merge needs at least one input")
        super().__init__(name, inputs=tuple(inputs), outputs=(output,))
        self._output = output
        self._eos: set[str] = set()
        self._next = 0

    def step(self) -> bool:
        out = self.out_channels[self._output]
        if not out.can_push():
            return False
        ports = self.input_names
        for offset in range(len(ports)):
            port = ports[(self._next + offset) % len(ports)]
            entry = self.in_channels[port].pop()
            if entry is None:
                continue
            self._next = (self._next + offset + 1) % len(ports)
            if isinstance(entry, Punctuation):
                if entry.kind == "eos":
                    self._eos.add(port)
                    if len(self._eos) == len(ports):
                        self.close_outputs()
                else:
                    out.push(entry)
                return True
            self.items_in += 1
            self._emit(self._output, entry)
            return True
        return False

    def finished(self) -> bool:
        return len(self._eos) == len(self.input_names)


class ControlSource(Component):
    """Emits a scripted sequence of punctuation — the steering input of §V-C.

    Each entry of ``script`` is ``(after_seen, punctuation)``: the mark is
    released once the observed target (a :class:`DataScheduler` or any
    object with ``items_seen``) has processed at least ``after_seen`` data
    items, modelling a remote steering process reacting to the stream.
    With ``watch=None`` marks are released one per step, immediately.
    """

    def __init__(self, name: str, script, watch=None, output: str = "out"):
        super().__init__(name, inputs=(), outputs=(output,))
        self._script = list(script)
        for entry in self._script:
            if not (isinstance(entry, tuple) and len(entry) == 2 and isinstance(entry[1], Punctuation)):
                raise TypeError(
                    f"{name!r}: script entries must be (after_seen, Punctuation)"
                )
        self._watch = watch
        self._output = output
        self._next = 0
        self._done = False

    def step(self) -> bool:
        if self._done:
            return False
        if self._next >= len(self._script):
            self._done = True
            self.close_outputs()
            return True
        after_seen, mark = self._script[self._next]
        if self._watch is not None and self._watch.items_seen < after_seen:
            return False
        self._emit(self._output, mark)
        self._next += 1
        return True

    def finished(self) -> bool:
        return self._done


class Transform(Component):
    """Applies ``fn`` to each payload — summarize/transform of §V-C."""

    def __init__(self, name: str, fn: Callable[[Any], Any], input: str = "in", output: str = "out"):
        super().__init__(name, inputs=(input,), outputs=(output,))
        self._fn = fn
        self._input = input
        self._output = output
        self._eos = False

    def step(self) -> bool:
        out = self.out_channels[self._output]
        if not out.can_push():
            return False
        entry = self.in_channels[self._input].pop()
        if entry is None:
            return False
        if isinstance(entry, Punctuation):
            if entry.kind == "eos":
                self._eos = True
                self.close_outputs()
            else:
                out.push(entry)  # punctuation flows through
            return True
        self.items_in += 1
        self._emit(
            self._output,
            DataItem(payload=self._fn(entry.payload), seq=entry.seq, timestamp=entry.timestamp),
        )
        return True

    def finished(self) -> bool:
        return self._eos
