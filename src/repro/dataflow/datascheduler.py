"""The data-scheduler component: virtual data queues + runtime control.

"The data scheduler implements a number of virtual data queues, each
defined by its own selection policy", with policies installed and
"selectively invoked using input from the control channel" (§V-C).  The
communication shell of this component is generated (see
:mod:`repro.dataflow.codegen`); the policy objects plug in at runtime.

Control-channel punctuation commands (``Punctuation.kind`` / payload):

- ``install-policy`` / ``(queue_name, policy)`` — install or replace the
  policy of a virtual queue (the policy object may be one that did not
  exist at code-generation time).
- ``activate`` / ``queue_name`` — resume a paused queue.
- ``deactivate`` / ``queue_name`` — pause a queue (items skip it).
- ``group-boundary`` / anything — forwarded to every active subscriber.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.dataflow.channels import Punctuation
from repro.dataflow.components import Component
from repro.dataflow.policies import ForwardAll, SelectionPolicy


@dataclass
class VirtualQueue:
    """One subscriber-facing queue: a policy bound to an output port."""

    name: str
    port: str
    policy: SelectionPolicy
    active: bool = True
    emitted: int = 0
    installs: list = field(default_factory=list)  # (item_seq_watermark, policy name)


class DataScheduler(Component):
    """Collection/selection/forwarding hub with per-subscriber policies.

    Parameters
    ----------
    name:
        Component name.
    subscribers:
        Output port names, one virtual queue each; every queue starts
        with the Figure 5 initial policy (forward each item received).
    """

    def __init__(self, name: str, subscribers: tuple):
        if not subscribers:
            raise ValueError("data scheduler needs at least one subscriber port")
        super().__init__(name, inputs=("in", "control"), outputs=tuple(subscribers))
        self.queues: dict[str, VirtualQueue] = {
            port: VirtualQueue(name=port, port=port, policy=ForwardAll())
            for port in subscribers
        }
        self.items_seen = 0
        self.control_commands = 0
        self._eos = False  # data end-of-stream observed
        self._closed = False  # outputs closed (backlog fully drained)
        # Released items waiting for subscriber-channel space (backpressure).
        self._backlog: dict[str, deque] = {port: deque() for port in subscribers}

    # -- control -------------------------------------------------------------

    def _handle_control(self, mark: Punctuation) -> None:
        self.control_commands += 1
        if mark.kind == "install-policy":
            queue_name, policy = mark.payload
            queue = self._queue(queue_name)
            if not isinstance(policy, SelectionPolicy):
                raise TypeError(
                    f"install-policy payload must be a SelectionPolicy, "
                    f"got {type(policy).__name__}"
                )
            queue.policy = policy
            queue.installs.append((self.items_seen, policy.describe()))
        elif mark.kind == "activate":
            self._queue(mark.payload).active = True
        elif mark.kind == "deactivate":
            self._queue(mark.payload).active = False
        elif mark.kind == "group-boundary":
            if not self._closed:  # once outputs close there is nobody to notify
                for queue in self.queues.values():
                    if queue.active:
                        self.out_channels[queue.port].push(mark)
        elif mark.kind == "eos":
            pass  # control stream ended; data flow continues
        else:
            raise ValueError(f"unknown control command {mark.kind!r}")

    def _queue(self, name: str) -> VirtualQueue:
        try:
            return self.queues[name]
        except KeyError:
            raise KeyError(
                f"no virtual queue {name!r}; known: {sorted(self.queues)}"
            ) from None

    # -- execution ------------------------------------------------------------

    def _release(self, queue: VirtualQueue, items) -> None:
        """Queue released items for emission (through the backlog)."""
        self._backlog[queue.port].extend(items)

    def _flush_backlog(self) -> bool:
        """Push backlogged releases while subscriber channels have space."""
        progressed = False
        for port, backlog in self._backlog.items():
            channel = self.out_channels[port]
            queue = self.queues[port]
            while backlog and channel.can_push():
                channel.push(backlog.popleft())
                queue.emitted += 1
                self.items_out += 1
                progressed = True
        return progressed

    def step(self) -> bool:
        # Control first: policy changes must apply before the next data item.
        mark = self.in_channels["control"].pop()
        if mark is not None:
            if isinstance(mark, Punctuation):
                self._handle_control(mark)
            else:
                raise TypeError("control channel must carry only Punctuation")
            return True
        progressed = self._flush_backlog()
        if any(self._backlog.values()):
            # Backpressure: don't consume new data while releases are stuck.
            return progressed
        if self._eos:
            if not self._closed:
                self.close_outputs()
                self._closed = True
                return True
            return progressed
        entry = self.in_channels["in"].pop()
        if entry is None:
            return progressed
        if isinstance(entry, Punctuation):
            if entry.kind == "eos":
                self._eos = True
                for queue in self.queues.values():
                    if queue.active:
                        self._release(queue, queue.policy.flush())
                self._flush_backlog()
            return True
        self.items_in += 1
        self.items_seen += 1
        for queue in self.queues.values():
            if not queue.active:
                continue
            self._release(queue, queue.policy.admit(entry))
        self._flush_backlog()
        return True

    def finished(self) -> bool:
        return self._closed

    # -- metrics ---------------------------------------------------------------

    def queue_stats(self) -> dict:
        """Per-queue (policy, emitted, active) — the Figure 5 series data."""
        return {
            name: {
                "policy": q.policy.describe(),
                "emitted": q.emitted,
                "active": q.active,
            }
            for name, q in self.queues.items()
        }
