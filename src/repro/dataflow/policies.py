"""Selection policies for the data scheduler's virtual queues.

A policy decides, per incoming item, what its virtual queue releases
downstream.  Policies are deliberately tiny state machines so they can be
installed at runtime through the control channel — "including policies
not known at code generation or compile time" (§V-C).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro._util import check_positive
from repro.dataflow.channels import DataItem


class SelectionPolicy:
    """Base policy: override :meth:`admit` (and optionally :meth:`flush`)."""

    #: Name used by control punctuation to address this policy.
    name: str = "policy"

    def admit(self, item: DataItem) -> list[DataItem]:
        """Consume one incoming item; return the items to release now."""
        raise NotImplementedError

    def flush(self) -> list[DataItem]:
        """Release anything still buffered (called at end-of-stream)."""
        return []

    def describe(self) -> str:
        return self.name


class ForwardAll(SelectionPolicy):
    """Figure 5's initial policy: forward each item to subscribers."""

    name = "forward-all"

    def admit(self, item: DataItem) -> list[DataItem]:
        return [item]


class SlidingWindowCount(SelectionPolicy):
    """Release the newest ``size`` items every ``stride`` arrivals.

    A count-based sliding window: with ``size=4, stride=2`` subscribers
    see overlapping 4-item windows advancing by 2.  Windows are released
    as their member items (flattened) following a window-boundary mark in
    ``windows`` for consumers that need grouping.
    """

    name = "window-count"

    def __init__(self, size: int, stride: int | None = None):
        check_positive("size", size)
        self.size = size
        self.stride = stride if stride is not None else size
        check_positive("stride", self.stride)
        self._buffer: deque = deque(maxlen=size)
        self._since_release = 0
        self._admitted = 0
        self._released_through = 0  # admit count when the last window closed
        self.windows: list[tuple] = []

    def admit(self, item: DataItem) -> list[DataItem]:
        self._buffer.append(item)
        self._admitted += 1
        self._since_release += 1
        if len(self._buffer) == self.size and self._since_release >= self.stride:
            self._since_release = 0
            self._released_through = self._admitted
            window = tuple(self._buffer)
            self.windows.append(window)
            return list(window)
        return []

    def flush(self) -> list[DataItem]:
        """Release items admitted after the last window closed.

        Overlapping-window members already delivered are not re-sent: a
        flush delivers exactly the never-released tail.
        """
        pending = min(self._admitted - self._released_through, len(self._buffer))
        if pending <= 0:
            return []
        tail = tuple(self._buffer)[-pending:]
        self._released_through = self._admitted
        self.windows.append(tail)
        return list(tail)


class SlidingWindowTime(SelectionPolicy):
    """Release all items whose timestamps fall in the trailing ``span``.

    Each arrival triggers a release of the in-span buffer (time-based
    window, advancing with the stream clock).
    """

    name = "window-time"

    def __init__(self, span: float):
        check_positive("span", span)
        self.span = span
        self._buffer: deque = deque()

    def admit(self, item: DataItem) -> list[DataItem]:
        self._buffer.append(item)
        cutoff = item.timestamp - self.span
        while self._buffer and self._buffer[0].timestamp < cutoff:
            self._buffer.popleft()
        return list(self._buffer)


class DirectSelection(SelectionPolicy):
    """Steering-driven selection of queued items (§V-C's remote-steering
    example): buffer arrivals, release only what a predicate admits.

    The predicate typically arrives *with* the policy through the control
    channel — the part of the workflow unknown at code-generation time.
    """

    name = "direct-selection"

    def __init__(self, predicate: Callable[[DataItem], bool], keep_buffer: int = 1024):
        check_positive("keep_buffer", keep_buffer)
        self.predicate = predicate
        self._buffer: deque = deque(maxlen=keep_buffer)

    def admit(self, item: DataItem) -> list[DataItem]:
        self._buffer.append(item)
        return [item] if self.predicate(item) else []

    def select_from_queue(self, predicate: Callable[[DataItem], bool]) -> list[DataItem]:
        """One-shot direct selection over the retained queue."""
        return [item for item in self._buffer if predicate(item)]


class SampleEveryK(SelectionPolicy):
    """Decimation: forward every k-th item (monitoring taps)."""

    name = "sample-every-k"

    def __init__(self, k: int):
        check_positive("k", k)
        self.k = k
        self._count = 0

    def admit(self, item: DataItem) -> list[DataItem]:
        self._count += 1
        if self._count % self.k == 0:
            return [item]
        return []
