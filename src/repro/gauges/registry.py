"""Component registry: the metadata catalog of §I.

"Meeting the goals of a FAIR workflow ... go[es] beyond insuring efficient
human intervention for reuse to structuring metadata catalogs to offer new
abstractions for automation."  The registry catalogs described components
and answers the automation-planning queries the tools need: which
components sit below a tier, which block a scenario, where is the next
cheapest gauge investment.
"""

from __future__ import annotations

from repro.gauges.debt import ReuseScenario, score
from repro.gauges.levels import Gauge, TIER_TYPES
from repro.gauges.model import (
    ReusabilityAssessment,
    WorkflowComponent,
    assess,
)


class ComponentRegistry:
    """An in-memory catalog of :class:`WorkflowComponent` with gauge queries."""

    def __init__(self) -> None:
        self._components: dict[str, WorkflowComponent] = {}
        self._assessments: dict[str, ReusabilityAssessment] = {}

    def __len__(self) -> int:
        return len(self._components)

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def register(self, component: WorkflowComponent) -> ReusabilityAssessment:
        """Add (or re-describe) a component; returns its fresh assessment."""
        assessment = assess(component)
        self._components[component.name] = component
        self._assessments[component.name] = assessment
        return assessment

    def get(self, name: str) -> WorkflowComponent:
        return self._components[name]

    def assessment(self, name: str) -> ReusabilityAssessment:
        return self._assessments[name]

    def names(self) -> list[str]:
        return sorted(self._components)

    def below_tier(self, gauge: Gauge, tier) -> list[str]:
        """Components whose ``gauge`` sits strictly below ``tier``."""
        tier = TIER_TYPES[gauge](tier)
        return [
            name
            for name in self.names()
            if int(self._assessments[name].profile.tier(gauge)) < int(tier)
        ]

    def debt_ranking(self, scenario: ReuseScenario) -> list[tuple[str, float]]:
        """Components ranked by manual minutes under ``scenario`` (worst first).

        This is the automation-investment queue: fix the top entries first.
        """
        ranked = [
            (name, score(self._components[name], scenario).manual_minutes)
            for name in self.names()
        ]
        ranked.sort(key=lambda pair: (-pair[1], pair[0]))
        return ranked

    def cheapest_advance(self, scenario: ReuseScenario) -> list[tuple[str, Gauge, int, float]]:
        """For each component, the single-gauge tier raise that removes the
        most manual minutes under ``scenario``.

        Returns (component, gauge, target tier value, minutes saved) rows,
        best saving first, skipping components with nothing to gain.
        """
        rows = []
        for name in self.names():
            profile = self._assessments[name].profile
            base = score(profile, scenario).manual_minutes
            best = None
            for step in scenario.steps:
                if step.gauge is None or step.automated_by(profile):
                    continue
                raised = profile.with_tier(step.gauge, step.automated_at)
                saved = base - score(raised, scenario).manual_minutes
                if saved > 0 and (best is None or saved > best[3]):
                    best = (name, step.gauge, step.automated_at, saved)
            if best is not None:
                rows.append(best)
        rows.sort(key=lambda r: (-r[3], r[0]))
        return rows

    def matrix(self) -> list[tuple[str, tuple]]:
        """(name, 6-tuple of tier ints) for every component — a survey table."""
        return [
            (name, self._assessments[name].profile.as_vector())
            for name in self.names()
        ]

    def aggregate_profile(self):
        """The whole catalog viewed "as a single component" (§III): the
        weakest tier per gauge across every registered component.

        This is the profile an outsider effectively faces when reusing
        the workflow as one unit — its least-described part gates every
        gauge.  Raises on an empty registry.
        """
        from repro.gauges.levels import TIER_TYPES
        from repro.gauges.model import GaugeProfile

        if not self._components:
            raise ValueError("registry is empty")
        kwargs = {}
        for gauge in Gauge:
            minimum = min(
                int(self._assessments[name].profile.tier(gauge))
                for name in self._components
            )
            kwargs[GaugeProfile._FIELD_BY_GAUGE[gauge]] = TIER_TYPES[gauge](minimum)
        return GaugeProfile(**kwargs)
