"""Reusability as a continuum: trajectory tracking.

The paper's key insight is that "reuse represents a continuum of actions"
(§I) and that gauges "track the progress of a workflow toward
reusability" (§III-A).  A :class:`ReusabilityTrajectory` is that progress
record: labelled profile snapshots over a workflow's life, with
regression auditing and debt-trend reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gauges.debt import ReuseScenario, score
from repro.gauges.levels import Gauge
from repro.gauges.model import GaugeProfile


@dataclass(frozen=True)
class TrajectorySnapshot:
    """One labelled point in a workflow's reusability history."""

    label: str
    profile: GaugeProfile


class ReusabilityTrajectory:
    """Ordered snapshots of one workflow's gauge profile.

    Snapshots are append-only.  Regressions (a tier dropping between
    consecutive snapshots) are allowed — refactoring sometimes temporarily
    loses metadata — but they are recorded and queryable, because a gauge
    that silently moves backwards defeats the point of tracking.
    """

    def __init__(self, workflow_name: str):
        self.workflow_name = workflow_name
        self._snapshots: list[TrajectorySnapshot] = []

    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def snapshots(self) -> tuple:
        return tuple(self._snapshots)

    def record(self, label: str, profile: GaugeProfile) -> TrajectorySnapshot:
        """Append a snapshot; labels must be unique."""
        if any(s.label == label for s in self._snapshots):
            raise ValueError(f"duplicate snapshot label {label!r}")
        snap = TrajectorySnapshot(label=label, profile=profile)
        self._snapshots.append(snap)
        return snap

    def current(self) -> TrajectorySnapshot:
        if not self._snapshots:
            raise RuntimeError("trajectory has no snapshots")
        return self._snapshots[-1]

    def regressions(self) -> list[tuple[str, str, Gauge, int, int]]:
        """(from label, to label, gauge, old tier, new tier) for every drop."""
        out = []
        for prev, cur in zip(self._snapshots, self._snapshots[1:]):
            for gauge in Gauge:
                old, new = int(prev.profile.tier(gauge)), int(cur.profile.tier(gauge))
                if new < old:
                    out.append((prev.label, cur.label, gauge, old, new))
        return out

    def is_monotone(self) -> bool:
        """True if no gauge ever moved backwards."""
        return not self.regressions()

    def advances(self) -> list[tuple[str, str, Gauge, int, int]]:
        """(from label, to label, gauge, old tier, new tier) for every raise."""
        out = []
        for prev, cur in zip(self._snapshots, self._snapshots[1:]):
            for gauge in Gauge:
                old, new = int(prev.profile.tier(gauge)), int(cur.profile.tier(gauge))
                if new > old:
                    out.append((prev.label, cur.label, gauge, old, new))
        return out

    def debt_trend(self, scenario: ReuseScenario) -> list[tuple[str, float]]:
        """Manual minutes under ``scenario`` at each snapshot (the payoff curve)."""
        return [
            (s.label, score(s.profile, scenario).manual_minutes)
            for s in self._snapshots
        ]
