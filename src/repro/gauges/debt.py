"""The technical-debt model.

§I frames technical debt as "the degree of human effort needed to
repurpose or reuse a piece of data or code": anything not explicitly
represented must be serviced by a human at reuse time.  We model a *reuse
scenario* as a list of manual steps, each carrying an estimated human cost
(minutes) and the gauge tier at which that step becomes automatable.  The
debt of a component under a scenario is the cost of the steps its current
profile does **not** automate.

This turns Figure 2's "red fields" into numbers: each red field of the
traditional script is a manual step automated by the Skel model
(CUSTOMIZABILITY >= MODELED), so the generated workflow's debt collapses
to the single model edit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gauges.levels import (
    AccessTier,
    CustomizabilityTier,
    Gauge,
    GranularityTier,
    ProvenanceTier,
    SchemaTier,
    SemanticsTier,
    TIER_TYPES,
)
from repro.gauges.model import GaugeProfile, WorkflowComponent, assess
from repro._util import check_positive


@dataclass(frozen=True)
class ManualStep:
    """One human intervention required to reuse an artifact.

    Parameters
    ----------
    name:
        What the human does ("run down the hall", "edit the submit script").
    minutes:
        Estimated human cost per reuse.
    gauge / automated_at:
        The gauge tier at which this step becomes automatable.  ``None``
        gauge marks a step that no metadata tier removes (irreducibly
        human, e.g. deciding the science question).
    """

    name: str
    minutes: float
    gauge: Gauge | None = None
    automated_at: int = 0

    def __post_init__(self) -> None:
        check_positive("minutes", self.minutes)
        if self.gauge is not None:
            TIER_TYPES[self.gauge](self.automated_at)  # validates the tier value

    def automated_by(self, profile: GaugeProfile) -> bool:
        """True if ``profile`` is high enough to automate this step."""
        if self.gauge is None:
            return False
        return int(profile.tier(self.gauge)) >= self.automated_at


@dataclass(frozen=True)
class ReuseScenario:
    """A named reuse context with its manual-step inventory."""

    name: str
    steps: tuple  # tuple[ManualStep, ...]
    description: str | None = None

    def total_minutes(self) -> float:
        return sum(s.minutes for s in self.steps)


@dataclass(frozen=True)
class DebtReport:
    """Debt of one component under one scenario."""

    component_name: str
    scenario_name: str
    manual_minutes: float
    automated_minutes: float
    remaining_steps: tuple
    automated_steps: tuple

    @property
    def automation_fraction(self) -> float:
        total = self.manual_minutes + self.automated_minutes
        return self.automated_minutes / total if total > 0 else 1.0


def score(component_or_profile, scenario: ReuseScenario) -> DebtReport:
    """Compute the debt of a component (or bare profile) under a scenario."""
    if isinstance(component_or_profile, WorkflowComponent):
        name = component_or_profile.name
        profile = assess(component_or_profile).profile
    elif isinstance(component_or_profile, GaugeProfile):
        name = "<profile>"
        profile = component_or_profile
    else:
        raise TypeError(
            "expected WorkflowComponent or GaugeProfile, got "
            f"{type(component_or_profile).__name__}"
        )
    remaining, automated = [], []
    for step in scenario.steps:
        (automated if step.automated_by(profile) else remaining).append(step)
    return DebtReport(
        component_name=name,
        scenario_name=scenario.name,
        manual_minutes=sum(s.minutes for s in remaining),
        automated_minutes=sum(s.minutes for s in automated),
        remaining_steps=tuple(remaining),
        automated_steps=tuple(automated),
    )


def automation_gain(
    before: GaugeProfile, after: GaugeProfile, scenario: ReuseScenario
) -> float:
    """Minutes of human effort per reuse removed by moving ``before`` → ``after``."""
    return score(before, scenario).manual_minutes - score(after, scenario).manual_minutes


def builtin_scenarios() -> dict:
    """The paper's exemplar reuse contexts (§I, §II) as scenarios.

    Minute estimates are order-of-magnitude placeholders meant for
    *relative* comparison across profiles — the gauge philosophy: track
    progress of one workflow, don't score arbitrary pairs.
    """
    new_dataset = ReuseScenario(
        name="new-dataset",
        description="Re-run an existing workflow on a new data set (§II-A GWAS).",
        steps=(
            ManualStep(
                "discover file layout/naming of the new data ('run down the hall')",
                30,
                Gauge.DATA_ACCESS,
                int(AccessTier.INTERFACE),
            ),
            ManualStep(
                "hand-write format conversion for tool-specific input layout",
                120,
                Gauge.DATA_SCHEMA,
                int(SchemaTier.SELF_DESCRIBING),
            ),
            ManualStep(
                "re-derive element ordering / windowing assumptions",
                45,
                Gauge.DATA_SEMANTICS,
                int(SemanticsTier.DATA_FUSION),
            ),
            ManualStep(
                "edit paths, partitions and scheduler fields in run scripts",
                60,
                Gauge.SOFTWARE_CUSTOMIZABILITY,
                int(CustomizabilityTier.MODELED),
            ),
        ),
    )
    new_machine = ReuseScenario(
        name="new-machine",
        description="Port the workflow to a different HPC system (§II-B iRF-LOOP).",
        steps=(
            ManualStep(
                "restructure build system for the new machine",
                180,
                Gauge.SOFTWARE_GRANULARITY,
                int(GranularityTier.CONFIGURED),
            ),
            ManualStep(
                "manually size runs / create submit scripts for the scheduler",
                90,
                Gauge.SOFTWARE_CUSTOMIZABILITY,
                int(CustomizabilityTier.MODELED),
            ),
            ManualStep(
                "curate failed runs and build resubmission scripts",
                60,
                Gauge.SOFTWARE_PROVENANCE,
                int(ProvenanceTier.CAMPAIGN_KNOWLEDGE),
            ),
            ManualStep(
                "re-tune inter-dependent runtime parameters",
                45,
                Gauge.SOFTWARE_CUSTOMIZABILITY,
                int(CustomizabilityTier.RELATED),
            ),
        ),
    )
    new_collaborator = ReuseScenario(
        name="new-collaborator",
        description="Hand the workflow to a new team member (§II-B teaching cost).",
        steps=(
            ManualStep(
                "explain component boundaries and what each script does",
                120,
                Gauge.SOFTWARE_GRANULARITY,
                int(GranularityTier.COMPONENT),
            ),
            ManualStep(
                "explain which knobs are safe to change",
                60,
                Gauge.SOFTWARE_CUSTOMIZABILITY,
                int(CustomizabilityTier.EXPOSED),
            ),
            ManualStep(
                "walk through past runs to show expected behaviour",
                60,
                Gauge.SOFTWARE_PROVENANCE,
                int(ProvenanceTier.EXECUTION_LOGS),
            ),
            ManualStep(
                "explain data file meanings and element roles",
                45,
                Gauge.DATA_SEMANTICS,
                int(SemanticsTier.DATASET_SEMANTICS),
            ),
        ),
    )
    new_runtime = ReuseScenario(
        name="new-runtime",
        description="Move a workflow fragment between workflow systems (§I Parsl→Pegasus).",
        steps=(
            ManualStep(
                "reverse-engineer data interchange between fragments",
                120,
                Gauge.DATA_SCHEMA,
                int(SchemaTier.DECLARED),
            ),
            ManualStep(
                "wrap components for the target runtime's task model",
                150,
                Gauge.SOFTWARE_GRANULARITY,
                int(GranularityTier.CONFIGURED),
            ),
            ManualStep(
                "re-express parameterization in the target system",
                90,
                Gauge.SOFTWARE_CUSTOMIZABILITY,
                int(CustomizabilityTier.MODELED),
            ),
            ManualStep(
                "decide which provenance to carry across",
                30,
                Gauge.SOFTWARE_PROVENANCE,
                int(ProvenanceTier.EXPORTABLE),
            ),
        ),
    )
    return {
        s.name: s for s in (new_dataset, new_machine, new_collaborator, new_runtime)
    }
