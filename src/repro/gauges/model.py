"""Gauge profiles, workflow components, and mechanical assessment.

A :class:`GaugeProfile` is a point on all six ladders; a
:class:`WorkflowComponent` is a described software artifact with data
ports and software metadata attached.  :func:`assess` derives a profile
*mechanically* from the attached metadata — the machine-actionable half
of the paper's claim — and enforces the cross-gauge dependencies §III
calls out (e.g. a QUERY-tier access rating "would need some minimal
degree of data schema characterization to be available").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.gauges.levels import (
    AccessTier,
    CustomizabilityTier,
    Gauge,
    GranularityTier,
    ProvenanceTier,
    SchemaTier,
    SemanticsTier,
    TIER_TYPES,
)
from repro.metadata.access import DataAccessDescriptor
from repro.metadata.provenance import CampaignContext, ExportPolicy
from repro.metadata.schema import DataSchema
from repro.metadata.semantics import ConsumptionPattern, DataSemanticsDescriptor


class ComponentKind(enum.Enum):
    """The granularity scale of §III: fragment → executable → workflow → service."""

    UNKNOWN = "unknown"
    CODE_FRAGMENT = "code-fragment"
    EXECUTABLE = "executable"
    BUNDLED_WORKFLOW = "bundled-workflow"
    INTERNAL_SERVICE = "internal-service"


@dataclass(frozen=True)
class GaugeProfile:
    """An immutable point on all six gauge ladders.

    Profiles form a partial order: ``a.dominates(b)`` iff ``a`` is at least
    as high as ``b`` on every gauge.  There is deliberately no total
    "reusability score" — the paper argues a single cross-workflow metric
    is less useful than per-axis, actionable positions (§III-A).
    """

    data_access: AccessTier = AccessTier.UNKNOWN
    data_schema: SchemaTier = SchemaTier.UNKNOWN
    data_semantics: SemanticsTier = SemanticsTier.UNKNOWN
    software_granularity: GranularityTier = GranularityTier.BLACK_BOX
    software_customizability: CustomizabilityTier = CustomizabilityTier.NONE
    software_provenance: ProvenanceTier = ProvenanceTier.NONE

    _FIELD_BY_GAUGE = {
        Gauge.DATA_ACCESS: "data_access",
        Gauge.DATA_SCHEMA: "data_schema",
        Gauge.DATA_SEMANTICS: "data_semantics",
        Gauge.SOFTWARE_GRANULARITY: "software_granularity",
        Gauge.SOFTWARE_CUSTOMIZABILITY: "software_customizability",
        Gauge.SOFTWARE_PROVENANCE: "software_provenance",
    }

    @classmethod
    def baseline(cls) -> "GaugeProfile":
        """The zero profile: a fully black-box artifact."""
        return cls()

    def tier(self, gauge: Gauge):
        """The tier of ``gauge`` in this profile."""
        return getattr(self, self._FIELD_BY_GAUGE[gauge])

    def advance(self, gauge: Gauge, tier) -> "GaugeProfile":
        """Return a profile with ``gauge`` raised to ``tier``.

        Raising to a tier at or below the current one is rejected: gauges
        track *progress*; use :meth:`with_tier` for arbitrary (including
        downward) edits when modelling regressions.
        """
        tier = TIER_TYPES[gauge](tier)
        current = self.tier(gauge)
        if int(tier) <= int(current):
            raise ValueError(
                f"advance({gauge.value}) must raise the tier: {current.name} -> {tier.name}"
            )
        return self.with_tier(gauge, tier)

    def with_tier(self, gauge: Gauge, tier) -> "GaugeProfile":
        """Return a profile with ``gauge`` set to ``tier`` (any direction)."""
        tier = TIER_TYPES[gauge](tier)
        return replace(self, **{self._FIELD_BY_GAUGE[gauge]: tier})

    def dominates(self, other: "GaugeProfile") -> bool:
        """True if this profile is >= ``other`` on every gauge."""
        return all(int(self.tier(g)) >= int(other.tier(g)) for g in Gauge)

    def as_dict(self) -> dict:
        """``{gauge value: tier name}`` — the serializable face."""
        return {g.value: self.tier(g).name for g in Gauge}

    def as_vector(self) -> tuple:
        """Integer tier values in :class:`Gauge` declaration order."""
        return tuple(int(self.tier(g)) for g in Gauge)

    @classmethod
    def from_dict(cls, data: dict) -> "GaugeProfile":
        kwargs = {}
        for g in Gauge:
            if g.value in data:
                kwargs[cls._FIELD_BY_GAUGE[g]] = TIER_TYPES[g][data[g.value]]
        return cls(**kwargs)


@dataclass(frozen=True)
class DataPort:
    """A named data input or output of a component, with its descriptors."""

    name: str
    direction: str  # "in" | "out"
    access: DataAccessDescriptor = field(default_factory=DataAccessDescriptor)
    schema: DataSchema = field(default_factory=DataSchema)
    semantics: DataSemanticsDescriptor = field(default_factory=DataSemanticsDescriptor)

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out"):
            raise ValueError(f"direction must be 'in' or 'out', got {self.direction!r}")


@dataclass(frozen=True)
class ParameterRelation:
    """A machine-actionable relation between two exposed parameters."""

    source: str
    target: str
    relation: str  # e.g. "scales-with", "constrains", "derived-from"


@dataclass(frozen=True)
class SoftwareMetadata:
    """Software-side metadata of a component (granularity gauge inputs).

    The provenance-relevant fields (``has_execution_logs``, ``campaign``,
    ``export_policy``) need not be asserted by hand: given a recorded
    event stream,
    :func:`repro.observability.provenance.observed_software_metadata`
    fills them from what the runtime actually emitted, so
    :func:`assess` raises the Software Provenance gauge on evidence.
    """

    kind: ComponentKind = ComponentKind.UNKNOWN
    config_template: str | None = None  # build/launch/execute template id
    exposed_variables: tuple = ()
    generation_model: dict | None = None  # Skel-style model, if any
    parameter_relations: tuple = ()
    has_execution_logs: bool = False
    campaign: CampaignContext | None = None
    export_policy: ExportPolicy | None = None


@dataclass
class WorkflowComponent:
    """A described workflow artifact: ports + software metadata.

    This is the unit the registry catalogs, the debt model scores, and the
    Skel/Cheetah layers consume.
    """

    name: str
    ports: tuple = ()
    software: SoftwareMetadata = field(default_factory=SoftwareMetadata)
    description: str | None = None

    def __post_init__(self) -> None:
        names = [p.name for p in self.ports]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate port names on {self.name!r}: {names}")

    def port(self, name: str) -> DataPort:
        for p in self.ports:
            if p.name == name:
                return p
        raise KeyError(name)

    def inputs(self) -> tuple:
        return tuple(p for p in self.ports if p.direction == "in")

    def outputs(self) -> tuple:
        return tuple(p for p in self.ports if p.direction == "out")


@dataclass(frozen=True)
class AssessmentNote:
    """Why a gauge was capped or flagged during assessment."""

    gauge: Gauge
    message: str


@dataclass(frozen=True)
class ReusabilityAssessment:
    """Result of :func:`assess`: the derived profile plus audit notes."""

    component_name: str
    profile: GaugeProfile
    notes: tuple = ()

    def note_for(self, gauge: Gauge) -> tuple:
        return tuple(n for n in self.notes if n.gauge is gauge)


def _data_tiers(ports) -> tuple[int, int, int]:
    """Weakest-link data tiers across ports (a chain is as reusable as its
    least-described port); components with no ports stay at 0."""
    if not ports:
        return 0, 0, 0
    access = min(p.access.tier_index() for p in ports)
    schema = min(p.schema.tier_index() for p in ports)
    semantics = min(p.semantics.tier_index() for p in ports)
    return access, schema, semantics


def assess(component: WorkflowComponent) -> ReusabilityAssessment:
    """Derive a :class:`GaugeProfile` mechanically from attached metadata.

    Cross-gauge dependencies enforced (each produces an audit note when it
    caps a tier):

    - ACCESS.QUERY requires SCHEMA >= DECLARED (§III, Data Access).
    - GRANULARITY.IO_SEMANTICS requires a declared consumption pattern on
      every port (§III, Software Granularity: I/O semantics "needs to
      leverage rich information about the schema and semantics").
    - CUSTOMIZABILITY.RELATED requires PROVENANCE >= CAMPAIGN_KNOWLEDGE
      (§III, Software Customizability ties parameter relationships to the
      Provenance gauge's Campaign Knowledge tier).
    """
    notes: list[AssessmentNote] = []
    access_i, schema_i, semantics_i = _data_tiers(component.ports)

    # -- cross-gauge cap: query-tier access needs schema characterization --
    if access_i >= int(AccessTier.QUERY) and schema_i < int(SchemaTier.DECLARED):
        access_i = int(AccessTier.INTERFACE)
        notes.append(
            AssessmentNote(
                Gauge.DATA_ACCESS,
                "QUERY tier requires schema >= DECLARED; capped at INTERFACE",
            )
        )

    sw = component.software

    # -- granularity ladder --
    gran = GranularityTier.BLACK_BOX
    if sw.kind is not ComponentKind.UNKNOWN:
        gran = GranularityTier.COMPONENT
    if gran is GranularityTier.COMPONENT and sw.config_template is not None:
        gran = GranularityTier.CONFIGURED
    if gran is GranularityTier.CONFIGURED:
        ports = component.ports
        declared = ports and all(
            p.semantics.consumption is not ConsumptionPattern.UNKNOWN for p in ports
        )
        if declared:
            gran = GranularityTier.IO_SEMANTICS
        elif ports:
            notes.append(
                AssessmentNote(
                    Gauge.SOFTWARE_GRANULARITY,
                    "IO_SEMANTICS requires a consumption pattern on every port",
                )
            )

    # -- provenance ladder (computed before customizability, which depends on it) --
    prov = ProvenanceTier.NONE
    if sw.has_execution_logs:
        prov = ProvenanceTier.EXECUTION_LOGS
    if prov is ProvenanceTier.EXECUTION_LOGS and sw.campaign is not None:
        prov = ProvenanceTier.CAMPAIGN_KNOWLEDGE
    if prov is ProvenanceTier.CAMPAIGN_KNOWLEDGE and sw.export_policy is not None:
        prov = ProvenanceTier.EXPORTABLE

    # -- customizability ladder --
    cust = CustomizabilityTier.NONE
    if sw.exposed_variables:
        cust = CustomizabilityTier.EXPOSED
    if cust is CustomizabilityTier.EXPOSED and sw.generation_model is not None:
        cust = CustomizabilityTier.MODELED
    if cust is CustomizabilityTier.MODELED and sw.parameter_relations:
        if prov >= ProvenanceTier.CAMPAIGN_KNOWLEDGE:
            cust = CustomizabilityTier.RELATED
        else:
            notes.append(
                AssessmentNote(
                    Gauge.SOFTWARE_CUSTOMIZABILITY,
                    "RELATED tier requires provenance >= CAMPAIGN_KNOWLEDGE; "
                    "capped at MODELED",
                )
            )

    profile = GaugeProfile(
        data_access=AccessTier(access_i),
        data_schema=SchemaTier(schema_i),
        data_semantics=SemanticsTier(semantics_i),
        software_granularity=gran,
        software_customizability=cust,
        software_provenance=prov,
    )
    return ReusabilityAssessment(
        component_name=component.name, profile=profile, notes=tuple(notes)
    )
