"""Gauge and tier enumerations — the Figure 1 matrix in code.

Tiers are :class:`enum.IntEnum` so they order naturally (higher value =
more explicit metadata = more automatable reuse).  The specific rungs
follow §III's prose; as the paper notes they are "not intended to be
exhaustive lists", so each ladder can grow upward without breaking
comparisons.
"""

from __future__ import annotations

import enum


class Gauge(enum.Enum):
    """The six gauge properties of Box I."""

    DATA_ACCESS = "data-access"
    DATA_SCHEMA = "data-schema"
    DATA_SEMANTICS = "data-semantics"
    SOFTWARE_GRANULARITY = "software-granularity"
    SOFTWARE_CUSTOMIZABILITY = "software-customizability"
    SOFTWARE_PROVENANCE = "software-provenance"

    @property
    def is_data_gauge(self) -> bool:
        return self in (Gauge.DATA_ACCESS, Gauge.DATA_SCHEMA, Gauge.DATA_SEMANTICS)

    @property
    def is_software_gauge(self) -> bool:
        return not self.is_data_gauge


class AccessTier(enum.IntEnum):
    """How explicitly we know how to *reach* the data."""

    UNKNOWN = 0
    PROTOCOL = 1  # POSIX file, zeroMQ queue, database — transport known
    INTERFACE = 2  # library interface known: CSV reader, HDF5-like API
    QUERY = 3  # query model known: linear / random / declarative


class SchemaTier(enum.IntEnum):
    """How explicitly the data's structure is represented."""

    UNKNOWN = 0
    OPAQUE = 1  # named format, nothing else (a "custom binary blob")
    DECLARED = 2  # format name + version declared
    SELF_DESCRIBING = 3  # field-level schema available (ADIOS/HDF5 class)


class SemanticsTier(enum.IntEnum):
    """How explicitly the *intended use* of the data is represented."""

    UNKNOWN = 0
    DATA_FUSION = 1  # ordering/consumption constraints captured
    FORMAT_EVOLUTION = 2  # version lineage, conversions to earlier versions
    DATASET_SEMANTICS = 3  # element roles within a complete dataset


class GranularityTier(enum.IntEnum):
    """How explicitly the software component's boundary is represented."""

    BLACK_BOX = 0
    COMPONENT = 1  # scale declared: fragment / executable / workflow / service
    CONFIGURED = 2  # explicit build/launch/execute configuration (templates)
    IO_SEMANTICS = 3  # component I/O semantics captured (e.g. first-precious)


class CustomizabilityTier(enum.IntEnum):
    """How explicitly the component's degrees of freedom are represented."""

    NONE = 0
    EXPOSED = 1  # which configuration variables may change is explicit
    MODELED = 2  # machine-actionable generation model (Skel-style)
    RELATED = 3  # inter-parameter relationships, tied to campaign context


class ProvenanceTier(enum.IntEnum):
    """How explicitly execution history is represented."""

    NONE = 0
    EXECUTION_LOGS = 1  # standard per-run provenance
    CAMPAIGN_KNOWLEDGE = 2  # explicit campaign context for each execution
    EXPORTABLE = 3  # export policy: what belongs in a reusable object


#: Which tier enum each gauge uses.
TIER_TYPES = {
    Gauge.DATA_ACCESS: AccessTier,
    Gauge.DATA_SCHEMA: SchemaTier,
    Gauge.DATA_SEMANTICS: SemanticsTier,
    Gauge.SOFTWARE_GRANULARITY: GranularityTier,
    Gauge.SOFTWARE_CUSTOMIZABILITY: CustomizabilityTier,
    Gauge.SOFTWARE_PROVENANCE: ProvenanceTier,
}

#: Human-readable tier descriptions — the cells of the Figure 1 matrix.
#: Keyed by (tier type, value): IntEnum members from *different* ladders
#: hash equal when their integer values match, so they cannot share a dict.
TIER_DESCRIPTIONS = {
    (AccessTier, AccessTier.UNKNOWN): "nothing known about access",
    (AccessTier, AccessTier.PROTOCOL): "basic protocol known (POSIX file, zeroMQ queue)",
    (AccessTier, AccessTier.INTERFACE): "data I/O interface known (CSV, HDF5)",
    (AccessTier, AccessTier.QUERY): "query capability known (linear/random/declarative)",
    (SchemaTier, SchemaTier.UNKNOWN): "nothing known about structure",
    (SchemaTier, SchemaTier.OPAQUE): "opaque bytes with a format name",
    (SchemaTier, SchemaTier.DECLARED): "format name and version declared",
    (SchemaTier, SchemaTier.SELF_DESCRIBING): "field-level self-describing schema",
    (SemanticsTier, SemanticsTier.UNKNOWN): "nothing known about intended use",
    (SemanticsTier, SemanticsTier.DATA_FUSION): "ordering/consumption constraints (data fusion)",
    (SemanticsTier, SemanticsTier.FORMAT_EVOLUTION): "format version lineage (format evolution)",
    (SemanticsTier, SemanticsTier.DATASET_SEMANTICS): "dataset-level element roles",
    (GranularityTier, GranularityTier.BLACK_BOX): "black box",
    (GranularityTier, GranularityTier.COMPONENT): "component scale declared",
    (GranularityTier, GranularityTier.CONFIGURED): "explicit build/launch/execute configuration",
    (GranularityTier, GranularityTier.IO_SEMANTICS): "component I/O semantics captured",
    (CustomizabilityTier, CustomizabilityTier.NONE): "no customization points exposed",
    (CustomizabilityTier, CustomizabilityTier.EXPOSED): "relevant variables identified",
    (CustomizabilityTier, CustomizabilityTier.MODELED): "machine-actionable generation model",
    (CustomizabilityTier, CustomizabilityTier.RELATED): "parameter relationships + campaign context",
    (ProvenanceTier, ProvenanceTier.NONE): "no provenance",
    (ProvenanceTier, ProvenanceTier.EXECUTION_LOGS): "per-execution provenance logs",
    (ProvenanceTier, ProvenanceTier.CAMPAIGN_KNOWLEDGE): "campaign context for executions",
    (ProvenanceTier, ProvenanceTier.EXPORTABLE): "exportability policy for reuse objects",
}


def tier_description(tier) -> str:
    """Human-readable description of one tier value."""
    return TIER_DESCRIPTIONS[(type(tier), tier)]


def max_tier(gauge: Gauge) -> int:
    """Highest tier currently defined for ``gauge``."""
    return max(int(t) for t in TIER_TYPES[gauge])


def tier_matrix() -> list[tuple[str, int, str, str]]:
    """Flatten the Figure 1 matrix: (gauge, tier value, tier name, description)."""
    rows = []
    for gauge, tier_type in TIER_TYPES.items():
        for tier in tier_type:
            rows.append(
                (gauge.value, int(tier), tier.name, tier_description(tier))
            )
    return rows
