"""FAIR-principle alignment reporting.

The conclusion positions the gauge abstraction as "a refinement of the
requirements for community-specified metadata for Reusability and
Interoperability (particularly points R1.2, R1.3, and I3 from [11])".
This module makes that mapping executable: given a gauge profile, report
which FAIR sub-principles the captured metadata supports, partially
supports, or leaves unmet.

The mapping is deliberately conservative: a principle counts as *met*
only when every gauge it leans on has reached the stated tier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.gauges.levels import (
    AccessTier,
    CustomizabilityTier,
    Gauge,
    GranularityTier,
    ProvenanceTier,
    SchemaTier,
    SemanticsTier,
)
from repro.gauges.model import GaugeProfile


class Alignment(enum.Enum):
    """How fully a profile's metadata supports one FAIR sub-principle."""

    UNMET = "unmet"
    PARTIAL = "partial"
    MET = "met"


@dataclass(frozen=True)
class PrincipleMapping:
    """One FAIR sub-principle and the gauge tiers that realize it."""

    principle: str
    statement: str
    requirements: tuple  # tuple[(Gauge, minimum tier int), ...]

    def evaluate(self, profile: GaugeProfile) -> Alignment:
        satisfied = [
            int(profile.tier(gauge)) >= minimum for gauge, minimum in self.requirements
        ]
        if all(satisfied):
            return Alignment.MET
        if any(satisfied):
            return Alignment.PARTIAL
        return Alignment.UNMET


#: The paper's named principles plus the interoperability neighbours the
#: gauges naturally cover.
FAIR_MAPPINGS: tuple = (
    PrincipleMapping(
        "I1",
        "(meta)data use a formal, accessible, shared, broadly applicable "
        "language for knowledge representation",
        ((Gauge.DATA_SCHEMA, int(SchemaTier.DECLARED)),),
    ),
    PrincipleMapping(
        "I3",
        "(meta)data include qualified references to other (meta)data",
        (
            (Gauge.DATA_ACCESS, int(AccessTier.INTERFACE)),
            (Gauge.DATA_SEMANTICS, int(SemanticsTier.FORMAT_EVOLUTION)),
        ),
    ),
    PrincipleMapping(
        "R1",
        "meta(data) are richly described with a plurality of accurate and "
        "relevant attributes",
        (
            (Gauge.DATA_SCHEMA, int(SchemaTier.SELF_DESCRIBING)),
            (Gauge.DATA_SEMANTICS, int(SemanticsTier.DATA_FUSION)),
            (Gauge.SOFTWARE_GRANULARITY, int(GranularityTier.CONFIGURED)),
        ),
    ),
    PrincipleMapping(
        "R1.2",
        "(meta)data are associated with detailed provenance",
        ((Gauge.SOFTWARE_PROVENANCE, int(ProvenanceTier.CAMPAIGN_KNOWLEDGE)),),
    ),
    PrincipleMapping(
        "R1.3",
        "(meta)data meet domain-relevant community standards",
        (
            (Gauge.DATA_SCHEMA, int(SchemaTier.DECLARED)),
            (Gauge.SOFTWARE_CUSTOMIZABILITY, int(CustomizabilityTier.MODELED)),
        ),
    ),
)


def fair_alignment(profile: GaugeProfile) -> dict:
    """Evaluate the profile against every mapped FAIR sub-principle.

    Returns ``{principle: Alignment}``.
    """
    return {m.principle: m.evaluate(profile) for m in FAIR_MAPPINGS}


def fair_report(profile: GaugeProfile) -> str:
    """Human-readable alignment report."""
    lines = ["FAIR alignment (conservative: met only when every gauge is high enough)"]
    for mapping in FAIR_MAPPINGS:
        status = mapping.evaluate(profile)
        lines.append(f"  {mapping.principle:5s} [{status.value:7s}] {mapping.statement}")
        for gauge, minimum in mapping.requirements:
            current = int(profile.tier(gauge))
            mark = "ok " if current >= minimum else "LOW"
            lines.append(
                f"         {mark} {gauge.value}: tier {current} (needs >= {minimum})"
            )
    return "\n".join(lines)
