"""The six-gauge reusability abstraction — the paper's primary contribution.

Box I / Figure 1 of the paper define six *gauge properties*, three for
data and three for software::

    Data:     Access, Schema, Semantics
    Software: Granularity, Customizability, Provenance

Each gauge is a ladder of tiers of increasingly explicit, increasingly
machine-actionable metadata.  A gauge is *not* a metric: it tracks one
workflow's progress toward reusability, it does not score arbitrary
workflows against each other (§III-A).

Package contents:

- :mod:`repro.gauges.levels` — the gauge and tier enumerations plus the
  Figure 1 tier matrix.
- :mod:`repro.gauges.model` — :class:`GaugeProfile` (a point on all six
  ladders), :class:`WorkflowComponent` (a described artifact), and
  :func:`assess` (derive a profile mechanically from attached metadata,
  honoring the paper's cross-gauge dependencies).
- :mod:`repro.gauges.debt` — the technical-debt model: reuse scenarios as
  lists of manual steps, each automatable at some gauge tier; debt is the
  human time left un-automated.
- :mod:`repro.gauges.registry` — a metadata catalog of components with
  queries ("which components block automation of scenario X?").
- :mod:`repro.gauges.continuum` — trajectory tracking: snapshots of a
  profile over a workflow's life, with monotonicity auditing.
"""

from repro.gauges.levels import (
    Gauge,
    AccessTier,
    SchemaTier,
    SemanticsTier,
    GranularityTier,
    CustomizabilityTier,
    ProvenanceTier,
    TIER_TYPES,
    tier_matrix,
    tier_description,
)
from repro.gauges.model import (
    GaugeProfile,
    ComponentKind,
    DataPort,
    SoftwareMetadata,
    ParameterRelation,
    WorkflowComponent,
    AssessmentNote,
    ReusabilityAssessment,
    assess,
)
from repro.gauges.debt import (
    ManualStep,
    ReuseScenario,
    DebtReport,
    score,
    automation_gain,
    builtin_scenarios,
)
from repro.gauges.registry import ComponentRegistry
from repro.gauges.continuum import ReusabilityTrajectory, TrajectorySnapshot
from repro.gauges.fair import (
    Alignment,
    PrincipleMapping,
    FAIR_MAPPINGS,
    fair_alignment,
    fair_report,
)

__all__ = [
    "Gauge",
    "AccessTier",
    "SchemaTier",
    "SemanticsTier",
    "GranularityTier",
    "CustomizabilityTier",
    "ProvenanceTier",
    "TIER_TYPES",
    "tier_matrix",
    "tier_description",
    "GaugeProfile",
    "ComponentKind",
    "DataPort",
    "SoftwareMetadata",
    "ParameterRelation",
    "WorkflowComponent",
    "AssessmentNote",
    "ReusabilityAssessment",
    "assess",
    "ManualStep",
    "ReuseScenario",
    "DebtReport",
    "score",
    "automation_gain",
    "builtin_scenarios",
    "ComponentRegistry",
    "ReusabilityTrajectory",
    "TrajectorySnapshot",
    "Alignment",
    "PrincipleMapping",
    "FAIR_MAPPINGS",
    "fair_alignment",
    "fair_report",
]
