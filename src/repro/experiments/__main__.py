"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.experiments                 # all figures, print tables
    python -m repro.experiments --figure 3 7    # a subset
    python -m repro.experiments --out results/  # also write one file each
    python -m repro.experiments --figure 6 --trace fig6.json
                                                # + Chrome trace + metrics
    python -m repro.experiments --figure 6 --report fig6.report.json
                                                # + trace analytics report
    python -m repro.experiments --resilience --faults "mid-run-crash=0.2"
                                                # retry-policy recovery table
    python -m repro.experiments --resilience --campaign-dir runs/
    python -m repro.experiments --resilience --campaign-dir runs/ --resume
                                                # checkpointed campaign, resumed
    python -m repro.experiments --serve         # asyncio campaign service demo
    python -m repro.experiments --serve --campaigns 6 --service-workers 3

``--trace`` attaches a :class:`~repro.observability.TraceRecorder` around
every selected driver and writes one combined Chrome ``trace_event`` JSON
(load it at ``about:tracing`` / https://ui.perfetto.dev); a metrics
snapshot goes to ``<out>.metrics.json`` next to it.  ``--report``
additionally runs the trace analytics
(:mod:`repro.observability.analysis`) over the capture and writes the
per-campaign reports — critical path, wait-time attribution, stragglers,
utilization — in the standard report file format, ready for
``python -m repro.observability diff``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments import (
    fig1_gauge_matrix,
    fig2_manual_vs_skel,
    fig3_overhead_sweep,
    fig4_variation,
    fig5_policies,
    fig6_timeline,
    fig7_campaign,
    resilience_campaign,
    resilience_recovery,
)
from repro.experiments.harness import DEFAULT_FAULTS

DRIVERS = {
    1: fig1_gauge_matrix,
    2: fig2_manual_vs_skel,
    3: fig3_overhead_sweep,
    4: fig4_variation,
    5: fig5_policies,
    6: fig6_timeline,
    7: fig7_campaign,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the evaluation figures of 'Reusability First: "
        "Toward FAIR Workflows' (CLUSTER 2021).",
    )
    parser.add_argument(
        "--figure",
        type=int,
        nargs="+",
        choices=sorted(DRIVERS),
        default=sorted(DRIVERS),
        help="figure numbers to regenerate (default: all)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to write one table file per figure",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="OUT.json",
        help="record every run into one Chrome trace_event JSON "
        "(metrics snapshot lands beside it as OUT.metrics.json)",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        metavar="REPORTS.json",
        help="analyze the captured event stream and write per-campaign "
        "trace analytics reports (implies recording, even without --trace)",
    )
    parser.add_argument(
        "--resilience",
        action="store_true",
        help="run the resilience experiment instead of the numbered figures",
    )
    parser.add_argument(
        "--faults",
        default=DEFAULT_FAULTS,
        metavar="KIND=RATE,...",
        help="fault mix for --resilience: comma-separated kind=probability "
        "pairs over crash-on-start, mid-run-crash, straggler, transient-io "
        f"(default: {DEFAULT_FAULTS})",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=17,
        help="seed for the deterministic fault injector (default: 17)",
    )
    parser.add_argument(
        "--max-allocations",
        type=int,
        default=4,
        help="with --resilience --campaign-dir: allocation budget per "
        "invocation — set low to leave work pending, then --resume (default: 4)",
    )
    parser.add_argument(
        "--campaign-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="with --resilience: journal campaign progress into a Cheetah "
        "directory under DIR (enables --resume)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --resilience --campaign-dir: skip runs already recorded "
        "DONE and execute exactly the remainder",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="run the asyncio campaign-service demo instead of the numbered "
        "figures: concurrent multi-tenant submissions with priorities, one "
        "cancellation, fair-share interleaving (see docs/campaign_service.md)",
    )
    parser.add_argument(
        "--campaigns",
        type=int,
        default=4,
        help="with --serve: number of concurrent campaign submissions "
        "(default: 4)",
    )
    parser.add_argument(
        "--service-workers",
        type=int,
        default=2,
        help="with --serve: CampaignService worker-pool bound — how many "
        "submissions execute concurrently (default: 2)",
    )
    args = parser.parse_args(argv)

    if args.resume and args.campaign_dir is None:
        parser.error("--resume requires --campaign-dir")

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    recorder = None
    if args.trace is not None or args.report is not None:
        from repro.observability import TraceRecorder

        recorder = TraceRecorder()

    def run_driver(label: str, driver):
        t0 = time.perf_counter()
        result = driver()
        elapsed = time.perf_counter() - t0
        text = result.to_text()
        print(text)
        print(f"[{label} regenerated in {elapsed:.1f}s]\n")
        if args.out is not None:
            path = args.out / f"{label}.txt"
            path.write_text(text + "\n")
            print(f"[written to {path}]\n")

    if args.serve:
        from repro.experiments.service_demo import campaign_service_demo

        selected = [
            (
                "campaign-service",
                lambda: campaign_service_demo(
                    campaigns=args.campaigns,
                    max_workers=args.service_workers,
                ),
            )
        ]
    elif args.resilience:
        if args.campaign_dir is not None:
            selected = [
                (
                    "resilience-campaign",
                    lambda: resilience_campaign(
                        args.campaign_dir,
                        faults=args.faults,
                        fault_seed=args.fault_seed,
                        max_allocations=args.max_allocations,
                        resume=args.resume,
                    ),
                )
            ]
        else:
            selected = [
                (
                    "resilience-recovery",
                    lambda: resilience_recovery(
                        faults=args.faults, fault_seed=args.fault_seed
                    ),
                )
            ]
    else:
        selected = [
            (f"figure{number}", DRIVERS[number]) for number in args.figure
        ]

    if recorder is not None:
        with recorder.recording():
            for label, driver in selected:
                run_driver(label, driver)
        try:
            recorder.validate()
        except ValueError as exc:  # a capture stopped mid-span; still usable
            print(f"[trace contract warning: {exc}]")
        if args.trace is not None:
            trace_path = recorder.write_chrome_trace(args.trace)
            snapshot = recorder.metrics.snapshot()
            metrics_path = trace_path.with_suffix(".metrics.json")
            metrics_path.write_text(json.dumps(snapshot, indent=2) + "\n")
            counters = snapshot["counters"]
            print(
                f"[trace: {len(recorder.events)} events -> {trace_path}; "
                f"tasks launched={counters.get('tasks.launched', 0)} "
                f"done={counters.get('tasks.done', 0)}; "
                f"metrics -> {metrics_path}]"
            )
        if args.report is not None:
            from repro.observability.analysis import analyze_events, write_reports

            reports = analyze_events(recorder.events)
            write_reports(args.report, reports)
            for r in reports:
                h = r.headline()
                print(
                    f"[report: {h['campaign']}: makespan {h['makespan']:.0f}s, "
                    f"utilization {h['utilization']:.1%}, "
                    f"{h['stragglers']} straggler(s)]"
                )
            print(f"[{len(reports)} report(s) -> {args.report}]")
    else:
        for label, driver in selected:
            run_driver(label, driver)
    return 0


if __name__ == "__main__":
    sys.exit(main())
