"""Per-figure experiment drivers.

Substitutions relative to the paper's testbed are documented in
``DESIGN.md`` §5; the quantities and shapes each function reports are the
ones the corresponding figure shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import format_table


@dataclass
class ExperimentResult:
    """Tabular result of one figure reproduction."""

    name: str
    description: str
    headers: tuple
    rows: list
    notes: list = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    def to_text(self) -> str:
        parts = [f"== {self.name} ==", self.description, ""]
        parts.append(format_table(self.headers, self.rows))
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)


def run_with_trace(driver, *args, **kwargs):
    """Run a figure driver (or any callable) with a trace recorder attached.

    The recorder captures every event bus created inside the call — the
    drivers build their simulated clusters internally, so per-bus
    attachment is not an option here.  Returns ``(result, recorder)``;
    dump the capture with ``recorder.write_chrome_trace(path)`` and read
    the aggregates from ``recorder.metrics.snapshot()``.  This is the
    engine behind ``python -m repro.experiments --trace``.

    Example
    -------
    >>> from repro.experiments import fig6_timeline, run_with_trace
    >>> result, rec = run_with_trace(
    ...     fig6_timeline, n_tasks=8, nodes=4, walltime=7200.0, seed=3
    ... )
    >>> rec.metrics.snapshot()["counters"]["tasks.launched"] > 0
    True
    """
    from repro.observability import TraceRecorder

    recorder = TraceRecorder()
    with recorder.recording():
        result = driver(*args, **kwargs)
    return result, recorder


# ---------------------------------------------------------------------------
# Figure 1 — the gauge matrix


def fig1_gauge_matrix() -> ExperimentResult:
    """The six-gauge tier matrix plus three exemplar component assessments."""
    from repro.apps.gwas.workflow import workflow_components_before_after
    from repro.gauges import Gauge, assess, tier_matrix

    rows = list(tier_matrix())
    before, after = workflow_components_before_after()
    assessments = {
        "black-box script": assess(before).profile,
        "skel+cheetah workflow": assess(after).profile,
    }
    notes = [
        f"{name}: " + ", ".join(f"{g.value}={p.tier(g).name}" for g in Gauge)
        for name, p in assessments.items()
    ]
    return ExperimentResult(
        name="Figure 1 — gauge properties",
        description="Example properties for assessing workflow automatability "
        "using the six gauge principles.",
        headers=("gauge", "tier", "name", "description"),
        rows=rows,
        notes=notes,
        extra={"assessments": assessments},
    )


# ---------------------------------------------------------------------------
# Figure 2 — manual vs Skel script


def fig2_manual_vs_skel(num_files: int = 250, group_size: int = 100) -> ExperimentResult:
    """Manual-intervention fields: traditional script vs Skel model."""
    from repro.apps.gwas.workflow import manual_vs_generated, workflow_components_before_after
    from repro.gauges import builtin_scenarios, score

    counts = manual_vs_generated(num_files, group_size)
    before, after = workflow_components_before_after()
    scenario = builtin_scenarios()["new-dataset"]
    debt_before = score(before, scenario)
    debt_after = score(after, scenario)
    rows = [
        (
            "traditional",
            counts["traditional_edits_per_configuration"],
            counts["traditional_unique_fields"],
            debt_before.manual_minutes,
        ),
        ("skel-generated", counts["skel_edits_per_configuration"], 1, debt_after.manual_minutes),
    ]
    return ExperimentResult(
        name="Figure 2 — traditional vs Skel-based script",
        description=f"Manual edits per new run configuration "
        f"({num_files} files, sub-pastes of {group_size}).",
        headers=("workflow", "manual edits/config", "distinct fields", "debt (min, new-dataset)"),
        rows=rows,
        notes=[f"reduction factor: {counts['reduction_factor']:.0f}x"],
        extra=counts,
    )


# ---------------------------------------------------------------------------
# Figure 3 — checkpoints vs permitted I/O overhead


def fig3_overhead_sweep(
    overheads=(0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50),
    seed=7,
    config=None,
) -> ExperimentResult:
    """Checkpoints written as a function of the declared overhead budget."""
    from repro.apps.simulation.run import RunConfig, overhead_sweep

    config = config or RunConfig()
    series = overhead_sweep(overheads, config=config, seed=seed)
    rows = [(f"{o:.0%}", n, config.timesteps) for o, n in series]
    counts = [n for _o, n in series]
    monotone = all(a <= b for a, b in zip(counts, counts[1:]))
    return ExperimentResult(
        name="Figure 3 — checkpoints vs permitted I/O overhead",
        description=f"Overhead-budget policy on the reaction-diffusion benchmark "
        f"({config.timesteps} timesteps, {config.checkpoint_bytes / 1e12:.0f} TB/step, "
        f"{config.ranks} ranks / {config.nodes} nodes, simulated PFS).",
        headers=("max I/O overhead", "checkpoints written", "max possible"),
        rows=rows,
        notes=[f"monotone non-decreasing: {monotone}"],
        extra={"series": series, "monotone": monotone},
    )


# ---------------------------------------------------------------------------
# Figure 4 — run-to-run variation at a fixed budget


def fig4_variation(n_runs: int = 8, overhead: float = 0.10, seed=11, config=None) -> ExperimentResult:
    """Checkpoint-count variation across runs at one overhead budget."""
    from repro.apps.simulation.run import variation_study

    reports = variation_study(n_runs, overhead=overhead, seed=seed, config=config)
    rows = [
        (
            f"run-{i}",
            r.checkpoints_written,
            f"{r.config.compute_intensity:.2f}",
            f"{r.overhead_fraction:.1%}",
        )
        for i, r in enumerate(reports)
    ]
    counts = [r.checkpoints_written for r in reports]
    return ExperimentResult(
        name="Figure 4 — checkpoint variation at 10% budget",
        description=f"{n_runs} runs, overhead budget {overhead:.0%}: counts track "
        "application behaviour and filesystem state.",
        headers=("run", "checkpoints", "compute intensity", "achieved overhead"),
        rows=rows,
        notes=[
            f"spread: min={min(counts)}, max={max(counts)}, std={np.std(counts):.2f}"
        ],
        extra={"counts": counts, "reports": reports},
    )


# ---------------------------------------------------------------------------
# Figure 5 — generated communication + swappable selection policies


def _policy_catalog(rng_seed: int = 0):
    from repro.dataflow.policies import (
        DirectSelection,
        ForwardAll,
        SampleEveryK,
        SlidingWindowCount,
        SlidingWindowTime,
    )

    return {
        "forward-all": lambda: ForwardAll(),
        "window-count(16/8)": lambda: SlidingWindowCount(16, stride=8),
        "window-time(10.0)": lambda: SlidingWindowTime(10.0),
        "sample-every-10": lambda: SampleEveryK(10),
        "direct-selection": lambda: DirectSelection(lambda it: it.payload["v"] % 50 == 0),
    }


def fig5_policies(n_items: int = 5000) -> ExperimentResult:
    """Throughput per selection policy + communication-code reuse.

    One graph per policy (generated collector → scheduler → sink), plus a
    runtime-swap run measuring policy-install latency, plus the codegen
    reuse fractions across a policy swap and a schema change.
    """
    from repro.dataflow import (
        CommunicationCodegen,
        DataflowGraph,
        DataScheduler,
        Punctuation,
        Sink,
        generated_source_reuse,
    )
    from repro.dataflow.components import ControlSource
    from repro.metadata.schema import DataSchema, Field
    from repro.metadata.semantics import ConsumptionPattern, DataSemanticsDescriptor, Ordering

    schema = DataSchema(
        "telemetry", "1", (Field("v", "int64"), Field("t", "float64"))
    )
    semantics = DataSemanticsDescriptor(
        ordering=Ordering.ORDERED, consumption=ConsumptionPattern.ELEMENT
    )
    codegen = CommunicationCodegen()
    files = codegen.generate(schema, semantics)
    classes = codegen.materialize(files)
    collector_cls = classes["GeneratedTelemetryCollector"]

    rows = []
    for label, make_policy in _policy_catalog().items():
        graph = DataflowGraph(f"fig5-{label}")
        source = graph.add(
            collector_cls(
                "instrument",
                ({"v": i, "t": float(i)} for i in range(n_items)),
            )
        )
        sched = graph.add(DataScheduler("sched", subscribers=("consumer",)))
        sink = graph.add(Sink("consumer-sink"))
        ctrl = graph.add(
            ControlSource(
                "steer",
                [(0, Punctuation("install-policy", ("consumer", make_policy())))],
            )
        )
        graph.connect(source, "out", sched, "in")
        graph.connect(ctrl, "out", sched, "control")
        graph.connect(sched, "consumer", sink, "in")
        metrics = graph.run()
        rows.append(
            (
                label,
                n_items,
                len(sink.received),
                f"{metrics['throughput_items_per_s']:.0f}",
            )
        )

    # Runtime swap: install latency in items.
    from repro.dataflow.policies import SampleEveryK

    graph = DataflowGraph("fig5-swap")
    source = graph.add(
        collector_cls("instrument", ({"v": i, "t": float(i)} for i in range(n_items)))
    )
    sched = graph.add(DataScheduler("sched", subscribers=("consumer",)))
    sink = graph.add(Sink("consumer-sink"))
    swap_at = n_items // 2
    ctrl = graph.add(
        ControlSource(
            "steer",
            [(swap_at, Punctuation("install-policy", ("consumer", SampleEveryK(10))))],
            watch=sched,
        )
    )
    graph.connect(source, "out", sched, "in")
    graph.connect(ctrl, "out", sched, "control")
    graph.connect(sched, "consumer", sink, "in")
    graph.run()
    installed_at = sched.queues["consumer"].installs[0][0]
    install_latency = installed_at - swap_at

    # Codegen reuse: policy swap touches zero generated lines; a schema
    # change regenerates only marshalling lines.
    reuse_policy_swap = generated_source_reuse(files, files)
    wider = DataSchema(
        "telemetry",
        "1",
        (Field("v", "int64"), Field("t", "float64"), Field("q", "int8")),
    )
    reuse_schema_change = generated_source_reuse(files, codegen.generate(wider, semantics))

    return ExperimentResult(
        name="Figure 5 — selection policies over generated communication",
        description=f"Collection/selection/forwarding workflow, {n_items} items; "
        "communication components generated from the data descriptors.",
        headers=("policy", "items in", "items delivered", "items/s"),
        rows=rows,
        notes=[
            f"runtime policy-install latency: {install_latency} items after request",
            f"communication-code reuse across policy swap: {reuse_policy_swap:.0%}",
            f"communication-code reuse across schema change: {reuse_schema_change:.0%}",
        ],
        extra={
            "install_latency_items": install_latency,
            "reuse_policy_swap": reuse_policy_swap,
            "reuse_schema_change": reuse_schema_change,
        },
    )


# ---------------------------------------------------------------------------
# Figure 6 — utilization timeline, original vs Cheetah/Savanna


def _irf_tasks(n_tasks: int, seed, median=300.0, sigma=1.0, max_seconds=6600.0):
    from repro.apps.irf.loop import feature_run_durations
    from repro.cluster.job import Task

    durations = feature_run_durations(
        n_tasks, median_seconds=median, sigma=sigma, max_seconds=max_seconds, seed=seed
    )
    return [
        Task(name=f"irf-feature-{i:04d}", duration=float(d), payload={"feature": i})
        for i, d in enumerate(durations)
    ]


def _fig6_cluster(nodes: int, seed):
    from repro.cluster import ClusterSpec, SimulatedCluster

    spec = ClusterSpec(
        nodes=nodes, queue_sigma=0.0, queue_median_wait=120.0, node_mttf=2.0e6
    )
    return SimulatedCluster(spec, seed=seed)


def fig6_timeline(
    n_tasks: int = 120, nodes: int = 20, walltime: float = 7200.0, seed=21
) -> ExperimentResult:
    """Node-utilization comparison: set-synchronized vs dynamic pilot."""
    from repro.savanna import PilotExecutor, StaticSetExecutor

    results = {}
    for label, make in (
        ("original (set-synchronized)", lambda c: StaticSetExecutor(c, set_gap=60.0)),
        ("cheetah-savanna (dynamic)", lambda c: PilotExecutor(c)),
    ):
        cluster = _fig6_cluster(nodes, seed)
        executor = make(cluster)
        result = executor.run(
            _irf_tasks(n_tasks, seed), nodes=nodes, walltime=walltime, max_allocations=1
        )
        outcome = result.outcomes[0]
        trace = outcome.trace(end=min(outcome.allocation.deadline, outcome.last_activity()))
        results[label] = (result, outcome, trace)

    rows = []
    for label, (_result, outcome, trace) in results.items():
        rows.append(
            (
                label,
                outcome.completed_count,
                f"{trace.utilization():.1%}",
                f"{trace.idle_fraction():.1%}",
                f"{outcome.last_activity() - outcome.allocation.start:.0f}s",
            )
        )
    static_idle = results["original (set-synchronized)"][2].idle_fraction()
    dynamic_idle = results["cheetah-savanna (dynamic)"][2].idle_fraction()
    return ExperimentResult(
        name="Figure 6 — workflow timeline comparison",
        description=f"{n_tasks} iRF runs on {nodes} nodes, one "
        f"{walltime / 3600:.0f}h allocation; heavy-tailed run durations.",
        headers=("workflow", "runs completed", "utilization", "idle fraction", "active span"),
        rows=rows,
        notes=[
            f"idle fraction: static {static_idle:.1%} vs dynamic {dynamic_idle:.1%}",
            "timelines available in extra['timelines'] (ascii)",
        ],
        extra={
            "timelines": {
                label: trace.ascii_timeline() for label, (_r, _o, trace) in results.items()
            },
            "idle": {"static": static_idle, "dynamic": dynamic_idle},
            "results": {label: r for label, (r, _o, _t) in results.items()},
        },
    )


# ---------------------------------------------------------------------------
# Resilience — seeded faults, retry policies, campaign resume (ISSUE 2)


DEFAULT_FAULTS = "crash-on-start=0.25,mid-run-crash=0.2,transient-io=0.3,straggler=0.15"


def _fault_cluster(nodes: int, seed, injector):
    from repro.cluster import ClusterSpec, SimulatedCluster

    spec = ClusterSpec(
        nodes=nodes, queue_sigma=0.0, queue_median_wait=120.0, node_mttf=2.0e6
    )
    return SimulatedCluster(spec, seed=seed, faults=injector)


def _resilience_policies():
    from repro.resilience import ExponentialBackoffPolicy, FixedDelayPolicy, no_retry

    return (
        ("no-retry", lambda: no_retry()),
        ("fixed-delay(2x, 30s)", lambda: FixedDelayPolicy(max_retries=2, delay_seconds=30.0)),
        (
            "exp-backoff(3x, 30s base)",
            lambda: ExponentialBackoffPolicy(
                max_retries=3, base=30.0, factor=2.0, jitter=0.1, seed=5
            ),
        ),
    )


def resilience_recovery(
    n_tasks: int = 24,
    nodes: int = 8,
    walltime: float = 7200.0,
    max_allocations: int = 1,
    faults: str = DEFAULT_FAULTS,
    fault_seed: int = 17,
    seed=21,
) -> ExperimentResult:
    """Completed-runs-per-allocation under seeded faults, per retry policy.

    Every policy faces the *identical* fault schedule (the injector draws
    from ``[fault_seed, crc32(task), attempt]``, independent of execution
    order), so the table isolates what the retry policy buys: without
    retry every struck run stays failed until the next allocation; with a
    policy the pilot recovers it in place, inside the same batch job.
    """
    from repro.observability import TASK_FAULT_INJECTED, TASK_RETRY, TASK_TIMEOUT
    from repro.resilience import FaultInjector, parse_fault_specs
    from repro.savanna import PilotExecutor

    specs = parse_fault_specs(faults)
    rows = []
    per_alloc = {}
    details = {}
    for label, make_policy in _resilience_policies():
        injector = FaultInjector(specs, seed=fault_seed)
        cluster = _fault_cluster(nodes, seed, injector)
        counts = {TASK_RETRY: 0, TASK_TIMEOUT: 0, TASK_FAULT_INJECTED: 0}

        def count_event(event, counts=counts):
            if event.name in counts:
                counts[event.name] += 1

        cluster.bus.subscribe(count_event)
        executor = PilotExecutor(cluster, retry_policy=make_policy())
        result = executor.run(
            _irf_tasks(n_tasks, seed, median=600.0, sigma=1.2, max_seconds=0.9 * walltime),
            nodes=nodes,
            walltime=walltime,
            max_allocations=max_allocations,
            name=f"resilience-{label}",
        )
        mean = result.mean_completed_per_allocation()
        per_alloc[label] = mean
        details[label] = {"result": result, "events": counts}
        rows.append(
            (
                label,
                len(result.completed),
                len(result.outcomes),
                f"{mean:.1f}",
                counts[TASK_FAULT_INJECTED],
                counts[TASK_RETRY],
            )
        )
    baseline = per_alloc["no-retry"]
    best = max(v for k, v in per_alloc.items() if k != "no-retry")
    recovery_ratio = best / baseline if baseline > 0 else float("inf")
    return ExperimentResult(
        name="Resilience — recovery under injected faults",
        description=f"{n_tasks} iRF runs on {nodes} nodes, up to {max_allocations} "
        f"allocations of {walltime / 3600:.0f}h; faults: {faults} (seed {fault_seed}).",
        headers=(
            "retry policy",
            "completed",
            "allocations",
            "runs/allocation",
            "faults injected",
            "retries granted",
        ),
        rows=rows,
        notes=[
            f"completed-runs-per-allocation, best policy vs no-retry: {recovery_ratio:.1f}x",
            "identical fault schedule across policies (keyed, order-independent draws)",
        ],
        extra={
            "per_alloc": per_alloc,
            "recovery_ratio": recovery_ratio,
            "details": details,
        },
    )


def resilience_campaign(
    directory_root,
    n_tasks: int = 48,
    nodes: int = 8,
    walltime: float = 7200.0,
    max_allocations: int = 4,
    faults: str = DEFAULT_FAULTS,
    fault_seed: int = 17,
    seed=21,
    resume: bool = False,
) -> ExperimentResult:
    """One checkpointed campaign under faults; rerun with ``resume=True``.

    First invocation creates the Cheetah campaign directory under
    ``directory_root`` and journals per-run progress; a later invocation
    with ``resume=True`` (``--resume`` on the CLI) skips every run the
    journal records DONE and executes exactly the remainder.
    """
    from pathlib import Path

    from repro.apps.irf.loop import duration_model
    from repro.cheetah import AppSpec, Campaign, RangeParameter, Sweep, resolve_campaign_dir
    from repro.observability import GROUP_RESUMED
    from repro.resilience import ExponentialBackoffPolicy, FaultInjector, parse_fault_specs
    from repro.savanna import execute_manifest

    directory_root = Path(directory_root)
    campaign = Campaign(
        "resilience-recovery",
        app=AppSpec("irf"),
        objective="fault-tolerant feature sweep",
    )
    group = campaign.sweep_group("features", nodes=nodes, walltime=walltime)
    group.add(Sweep([RangeParameter("feature", 0, n_tasks)]))
    manifest = campaign.to_manifest()

    # Same resolution rule as the drive layer and the lint CLI.
    directory = resolve_campaign_dir(directory_root, manifest, create=True)

    injector = FaultInjector(parse_fault_specs(faults), seed=fault_seed)
    cluster = _fault_cluster(nodes, seed, injector)
    resumed = []
    cluster.bus.subscribe(
        lambda event: resumed.append(event) if event.name == GROUP_RESUMED else None
    )
    result = execute_manifest(
        manifest,
        duration_model(
            median_seconds=600.0, sigma=1.2, max_seconds=0.9 * walltime, seed=seed
        ),
        cluster,
        group="features",
        directory=directory,
        max_allocations=max_allocations,
        resume=resume,
        retry_policy=ExponentialBackoffPolicy(max_retries=3, base=30.0, jitter=0.1, seed=5),
    )
    summary = directory.summary()
    skipped = resumed[0].fields["skipped"] if resumed else 0
    rows = [
        (
            "resumed" if resume else "fresh",
            skipped,
            len(result.tasks),
            len(result.completed),
            summary.get("done", 0),
            summary.get("pending", 0) + summary.get("failed", 0),
        )
    ]
    return ExperimentResult(
        name="Resilience — checkpointed campaign",
        description=f"Campaign directory {directory.root}; faults: {faults} "
        f"(seed {fault_seed}); rerun with --resume to finish pending runs.",
        headers=(
            "invocation",
            "skipped (already done)",
            "executed",
            "completed now",
            "done (directory)",
            "remaining",
        ),
        rows=rows,
        notes=[
            "progress is journaled per task transition; a killed driver "
            "loses at most its in-flight attempts"
        ],
        extra={"result": result, "summary": summary, "directory": directory},
    )


# ---------------------------------------------------------------------------
# Real-execution scaling — threads vs processes on CPU-bound Python


def cpu_bound_fit(params: dict) -> float:
    """A GIL-holding stand-in for one iRF feature fit: pure-Python LCG
    feature scoring.  Module-level so the process pool can pickle it."""
    x = (params["feature"] + 1) * 2654435761 % (2**31)
    acc = 0
    for _ in range(params.get("iters", 200_000)):
        x = (1103515245 * x + 12345) % (2**31)
        acc += x & 1
    return acc / params.get("iters", 200_000)


def realexec_scaling(
    n_runs: int = 8,
    iters: int = 200_000,
    max_workers: int | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Wall-clock comparison of the two real pools on CPU-bound Python.

    The app holds the GIL for its whole attempt, so the thread pool
    serializes and ``local-processes`` should win roughly linearly in the
    core count — on a single-core box the two are expected to tie (modulo
    fork overhead), which the table records rather than hides.
    """
    import os

    from repro.cheetah import AppSpec, Campaign, RangeParameter, Sweep
    from repro.savanna import RealExecutor

    workers = max_workers or min(4, os.cpu_count() or 1)
    campaign = Campaign(
        "realexec-scaling",
        app=AppSpec("cpu-bound-fit"),
        objective="thread vs process pool on GIL-holding work",
    )
    group = campaign.sweep_group("fits", nodes=1, walltime=3600.0)
    group.add(
        Sweep(
            [
                RangeParameter("feature", 0, n_runs),
                RangeParameter("iters", iters, iters + 1),
            ]
        )
    )
    manifest = campaign.to_manifest()

    elapsed = {}
    rows = []
    for pool in ("threads", "processes"):
        executor = RealExecutor(max_workers=workers, pool=pool, seed=seed)
        result = executor.execute(manifest, cpu_bound_fit)
        assert result.all_done, f"{pool}: {result.summary()}"
        elapsed[pool] = result.elapsed
        rows.append(
            (
                f"local-{pool}",
                workers,
                len(result.results),
                f"{result.elapsed:.2f}s",
                f"{elapsed['threads'] / result.elapsed:.2f}x",
            )
        )
    speedup = elapsed["threads"] / elapsed["processes"]
    return ExperimentResult(
        name="Real execution — thread vs process pool scaling",
        description=f"{n_runs} CPU-bound fits ({iters} LCG iterations each), "
        f"{workers} workers, {os.cpu_count()} cores visible.",
        headers=("backend", "workers", "runs", "wall clock", "vs threads"),
        rows=rows,
        notes=[
            f"process-pool speedup over threads: {speedup:.2f}x",
            "GIL-holding app: threads serialize, processes scale with cores",
        ],
        extra={
            "elapsed": elapsed,
            "speedup": speedup,
            "workers": workers,
            "cpu_count": os.cpu_count(),
        },
    )


# ---------------------------------------------------------------------------
# Figure 7 — parameters explored per allocation (the >5x result)


def fig7_campaign(
    n_features: int = 1606,
    nodes: int = 20,
    walltime: float = 7200.0,
    max_allocations: int = 80,
    seed=33,
) -> ExperimentResult:
    """Average parameters explored per 2-hour/20-node allocation.

    Builds the census campaign (a sweep over all features), materializes
    tasks through the heavy-tailed duration model, and executes the full
    campaign under both workflows on identically seeded clusters.
    """
    from repro.apps.irf.loop import duration_model
    from repro.cheetah import AppSpec, Campaign, RangeParameter, Sweep
    from repro.savanna import PilotExecutor, StaticSetExecutor, tasks_from_manifest

    campaign = Campaign(
        "irf-loop-census",
        app=AppSpec("irf"),
        objective="all-to-all predictive network over census features",
    )
    group = campaign.sweep_group("features", nodes=nodes, walltime=walltime)
    group.add(Sweep([RangeParameter("feature", 0, n_features)]))
    manifest = campaign.to_manifest()

    results = {}
    for label, make, gap in (
        (
            "original (set-synchronized)",
            lambda c: StaticSetExecutor(c, set_gap=60.0),
            3600.0,  # manual curation + new submit script between allocations
        ),
        ("cheetah-savanna (dynamic)", lambda c: PilotExecutor(c), 0.0),
    ):
        cluster = _fig6_cluster(nodes, seed)
        tasks = tasks_from_manifest(
            manifest,
            duration_model(
                median_seconds=360.0, sigma=1.4, max_seconds=0.9 * walltime, seed=seed
            ),
        )
        executor = make(cluster)
        result = executor.run(
            tasks,
            nodes=nodes,
            walltime=walltime,
            max_allocations=max_allocations,
            inter_allocation_gap=gap,
        )
        results[label] = result

    rows = []
    per_alloc = {}
    for label, result in results.items():
        counts = result.completed_per_allocation()
        mean = result.mean_completed_per_allocation()
        per_alloc[label] = mean
        rows.append(
            (
                label,
                f"{mean:.1f}",
                len(result.outcomes),
                len(result.completed),
                f"{result.makespan() / 3600:.1f}h",
            )
        )
    per_alloc_speedup = (
        per_alloc["cheetah-savanna (dynamic)"]
        / per_alloc["original (set-synchronized)"]
        if per_alloc["original (set-synchronized)"] > 0
        else float("inf")
    )
    runtime_speedup = (
        results["original (set-synchronized)"].makespan()
        / results["cheetah-savanna (dynamic)"].makespan()
    )
    return ExperimentResult(
        name="Figure 7 — iRF-LOOP campaign throughput",
        description=f"{n_features}-feature sweep, {walltime / 3600:.0f}h allocations "
        f"of {nodes} nodes (paper: 1606 ACS features on Summit).",
        headers=(
            "workflow",
            "params/allocation (avg)",
            "allocations used",
            "total completed",
            "campaign makespan",
        ),
        rows=rows,
        notes=[
            f"total-runtime improvement: {runtime_speedup:.1f}x "
            "(the paper's headline: 'over 5x improvement in total runtime')",
            f"params-per-allocation improvement: {per_alloc_speedup:.1f}x",
        ],
        extra={
            "speedup": runtime_speedup,
            "per_alloc_speedup": per_alloc_speedup,
            "per_alloc": per_alloc,
            "results": results,
        },
    )
