"""Experiment harness: one entry point per paper figure.

Each ``figN_*`` function reproduces the data behind the corresponding
figure of the paper and returns an :class:`ExperimentResult` that renders
to the same rows/series the paper reports.  The benchmark files under
``benchmarks/`` are thin wrappers over these functions, so the paper's
evaluation can also be regenerated programmatically (see
``EXPERIMENTS.md``).
"""

from repro.experiments.harness import (
    ExperimentResult,
    fig1_gauge_matrix,
    fig2_manual_vs_skel,
    fig3_overhead_sweep,
    fig4_variation,
    fig5_policies,
    fig6_timeline,
    fig7_campaign,
    cpu_bound_fit,
    realexec_scaling,
    resilience_campaign,
    resilience_recovery,
    run_with_trace,
)
from repro.experiments.service_demo import campaign_service_demo, service_app

__all__ = [
    "ExperimentResult",
    "run_with_trace",
    "resilience_recovery",
    "resilience_campaign",
    "cpu_bound_fit",
    "realexec_scaling",
    "campaign_service_demo",
    "service_app",
    "fig1_gauge_matrix",
    "fig2_manual_vs_skel",
    "fig3_overhead_sweep",
    "fig4_variation",
    "fig5_policies",
    "fig6_timeline",
    "fig7_campaign",
]
