"""Campaign-service demo: many tenants, one service, live orchestration.

``python -m repro.experiments --serve`` runs this driver: several small
real-execution campaigns from different tenants with mixed priorities
are submitted concurrently to one :class:`~repro.savanna.CampaignService`
(one of them cancelled mid-flight), and the resulting lifecycle — queue
wait, fair-share interleaving, terminal states, service events — is
rendered as a table.  It is the runnable counterpart of
``docs/campaign_service.md`` and the engine behind CI's service-smoke
job (``tools/smoke_service.py`` asserts on its outcome).
"""

from __future__ import annotations

import asyncio
import time

from repro.experiments.harness import ExperimentResult


def service_app(params: dict) -> float:
    """The demo workload: a short, GIL-releasing stand-in for one run.

    Module-level so ``local-processes`` could pickle it too.
    """
    time.sleep(params.get("sleep", 0.02))
    return params["x"] * params["x"]


def _make_manifest(name: str, runs: int, sleep: float):
    from repro.cheetah import AppSpec, Campaign, RangeParameter, Sweep, SweepParameter

    campaign = Campaign(name, app=AppSpec("service-demo"),
                        objective="campaign-service orchestration demo")
    group = campaign.sweep_group("g", nodes=1, walltime=600.0)
    group.add(
        Sweep(
            [
                RangeParameter("x", 0, runs),
                SweepParameter("sleep", (sleep,)),
            ]
        )
    )
    return campaign.to_manifest()


def campaign_service_demo(
    campaigns: int = 4,
    runs_per_campaign: int = 6,
    max_workers: int = 2,
    backend: str = "local-threads",
    sleep: float = 0.02,
    cancel_one: bool = True,
) -> ExperimentResult:
    """Drive ``campaigns`` concurrent submissions through one service.

    Tenants alternate ``lab-a``/``lab-b``; the last submission gets
    ``priority=1`` so it jumps the queue; the second (when
    ``cancel_one``) is cancelled while queued or running.  Returns a
    table with one row per submission plus service-level notes (event
    counts, saturation behaviour).
    """
    from repro.savanna import CampaignService, SubmissionState

    async def drive():
        events = []
        service = CampaignService(
            max_workers=max_workers, max_queue_depth=max(campaigns, 2),
            serve_telemetry=True,
        )
        service.bus.subscribe(events.append)
        handles = []
        async with service:
            address = service.telemetry_server.address
            for i in range(campaigns):
                manifest = _make_manifest(
                    f"service-demo-{i}", runs_per_campaign, sleep
                )
                handles.append(
                    service.submit(
                        manifest,
                        backend=backend,
                        app_fn=service_app,
                        tenant="lab-a" if i % 2 == 0 else "lab-b",
                        priority=1 if i == campaigns - 1 else 0,
                        max_workers=2,
                    )
                )
            if cancel_one and len(handles) > 1:
                handles[1].cancel()
            await asyncio.gather(*(h.wait() for h in handles))
            telemetry = service.telemetry.status()
        return service, handles, events, address, telemetry

    t0 = time.perf_counter()
    service, handles, events, address, telemetry = asyncio.run(drive())
    elapsed = time.perf_counter() - t0

    from repro.savanna import SubmissionState

    rows = []
    for handle in handles:
        results = handle.result or {}
        done = sum(len(r.completed) for r in results.values())
        rows.append(
            (
                handle.id,
                handle.campaign,
                handle.tenant,
                handle.priority,
                handle.status().value,
                f"{done}/{runs_per_campaign}",
            )
        )
    service_events = [e for e in events if e.name.startswith("service.")]
    cancelled = sum(
        1 for s in service.submissions().values() if s is SubmissionState.CANCELLED
    )
    tenant_tasks = {
        tenant: stats["tasks_done"]
        for tenant, stats in sorted(telemetry["tenants"].items())
    }
    return ExperimentResult(
        name="campaign service",
        description=(
            f"{len(handles)} campaigns from 2 tenants through one "
            f"CampaignService (max_workers={max_workers}, backend={backend})"
        ),
        headers=("submission", "campaign", "tenant", "priority", "state", "runs"),
        rows=rows,
        notes=[
            f"{len(service_events)} service.* events, "
            f"{len(events) - len(service_events)} forwarded campaign events "
            f"on the monitoring bus",
            f"{cancelled} submission(s) cancelled, wall time {elapsed:.2f}s",
            f"live telemetry served at {address} "
            f"(tasks_done per tenant: {tenant_tasks}; "
            f"see docs/telemetry.md and `python -m repro.observability top`)",
        ],
        extra={
            "events": [e.name for e in service_events],
            "telemetry": telemetry,
        },
    )
