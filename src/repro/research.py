"""Reusable research objects — the Exportability tier's end product.

"Not all provenance that is useful to the original author is appropriate
to include in a distributable, reusable research object.  However, some
provenance is crucial when reusing workflow components in a new context"
(§III).  :func:`export_research_object` assembles exactly that
distributable bundle: the campaign manifest, per-run parameters and
status, the export-policy-filtered and sanitized provenance, the metric
catalog, and a generated OBJECT.md index — everything a stranger needs to
re-run or extend the study, nothing the policy says must stay home.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cheetah.catalog import CampaignCatalog
from repro.cheetah.directory import CampaignDirectory
from repro.cheetah.manifest import manifest_to_json
from repro.metadata.provenance import ExportPolicy, ProvenanceStore

OBJECT_FORMAT_VERSION = "1.0"


def export_research_object(
    dest: Path,
    directory: CampaignDirectory,
    store: ProvenanceStore | None = None,
    catalog: CampaignCatalog | None = None,
    policy: ExportPolicy | None = None,
) -> Path:
    """Write a self-contained, shareable research object under ``dest``.

    Layout::

        <dest>/
          OBJECT.md            human index (what this is, what's inside)
          manifest.json        the abstract campaign (re-runnable)
          status.json          per-run outcome record
          provenance.json      exported + sanitized records only
          catalog.json         metrics catalog (if provided)

    The provenance file contains **only** records the export policy
    admits, each sanitized (redacted environment keys removed) — the
    Exportability gauge as a concrete artifact rather than a score.
    """
    dest = Path(dest)
    dest.mkdir(parents=True, exist_ok=True)
    policy = policy or ExportPolicy()
    manifest = directory.manifest

    (dest / "manifest.json").write_text(manifest_to_json(manifest))
    status = {run_id: s.value for run_id, s in directory.read_status().items()}
    (dest / "status.json").write_text(json.dumps(status, indent=2, sort_keys=True))

    exported_count = 0
    withheld_count = 0
    if store is not None:
        exported = store.export(policy)
        exported_count = len(exported)
        withheld_count = len(store) - exported_count
        (dest / "provenance.json").write_text(
            json.dumps([r.to_dict() for r in exported], indent=2, sort_keys=True)
        )

    if catalog is not None:
        (dest / "catalog.json").write_text(catalog.to_json())

    done = sum(1 for s in status.values() if s == "done")
    lines = [
        f"# Research object: {manifest.campaign}",
        "",
        f"- format: fairflow research object v{OBJECT_FORMAT_VERSION}",
        f"- application: {manifest.app}",
        f"- objective: {manifest.objective or '(unspecified)'}",
        f"- runs: {len(manifest.runs)} ({done} done)",
        f"- sweep groups: {', '.join(g['name'] for g in manifest.groups) or '(none)'}",
        "",
        "## Contents",
        "",
        "| file | what it is |",
        "|---|---|",
        "| manifest.json | the abstract campaign — feed it to any executor backend |",
        "| status.json | per-run outcomes (pending runs are the resume set) |",
    ]
    if store is not None:
        lines.append(
            f"| provenance.json | {exported_count} exported records "
            f"({withheld_count} withheld by the export policy) |"
        )
    if catalog is not None:
        lines.append(f"| catalog.json | metrics for {len(catalog)} runs |")
    lines += [
        "",
        "## Reuse",
        "",
        "```python",
        "from repro.cheetah.manifest import manifest_from_json",
        'manifest = manifest_from_json(open("manifest.json").read())',
        "# any executor that reads this manifest can re-run or extend the study",
        "```",
    ]
    (dest / "OBJECT.md").write_text("\n".join(lines) + "\n")
    return dest


def load_research_object(path: Path) -> dict:
    """Read a research object back: manifest, status, provenance, catalog."""
    from repro.cheetah.manifest import manifest_from_json
    from repro.metadata.provenance import ProvenanceRecord

    path = Path(path)
    out: dict = {
        "manifest": manifest_from_json((path / "manifest.json").read_text()),
        "status": json.loads((path / "status.json").read_text()),
    }
    prov = path / "provenance.json"
    if prov.exists():
        out["provenance"] = [
            ProvenanceRecord.from_dict(d) for d in json.loads(prov.read_text())
        ]
    cat = path / "catalog.json"
    if cat.exists():
        out["catalog"] = CampaignCatalog.from_json(cat.read_text())
    return out
