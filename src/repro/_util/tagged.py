"""Lossless tagged JSON encoding for campaign records.

Run parameters and really-executed run values must *round-trip*: what
the catalog reads back has to equal what the application produced.  The
old encoder fell back to ``repr(value)`` for anything JSON could not
express, silently persisting a non-round-trippable string into
``result.json`` — the record looked fine and was quietly corrupt.

This codec encodes the known non-JSON types with an explicit tag::

    {"__repro__": "complex", "real": 1.0, "imag": 2.0}

and **raises** :class:`UnserializableValueError` for everything else,
so corruption is impossible by construction: a value either round-trips
exactly or is refused at write time, naming the offending type.

Tagged types: numpy arrays (dtype-preserving) and scalars, ``complex``,
``bytes``/``bytearray`` (base64), ``set``/``frozenset``,
``pathlib.Path``, ``datetime``/``date``.  Plain JSON types pass through
untouched, so documents written by older code still load.
"""

from __future__ import annotations

import base64
import datetime
import json
import pathlib

TAG = "__repro__"


class UnserializableValueError(TypeError):
    """A value cannot be encoded losslessly into a campaign record."""


def tagged_default(value):
    """``json.dumps(default=...)`` hook: tag known types, refuse the rest."""
    # numpy without importing numpy: scalars expose item(), arrays tolist().
    dtype = getattr(value, "dtype", None)
    if dtype is not None:
        if getattr(value, "shape", None) == () or not hasattr(value, "tolist"):
            item = getattr(value, "item", None)
            if callable(item):
                return _checked_scalar(value, item())
        if hasattr(value, "tolist"):
            if dtype.kind in "OV":  # object/void arrays do not round-trip
                raise UnserializableValueError(
                    f"numpy array of dtype {dtype!s} cannot be encoded losslessly"
                )
            return {TAG: "ndarray", "dtype": str(dtype), "data": value.tolist()}
    if isinstance(value, complex):
        return {TAG: "complex", "real": value.real, "imag": value.imag}
    if isinstance(value, (bytes, bytearray)):
        return {TAG: "bytes", "b64": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, (set, frozenset)):
        try:  # deterministic files when the elements are orderable
            items = sorted(value)
        except TypeError:
            items = list(value)
        return {TAG: "frozenset" if isinstance(value, frozenset) else "set",
                "items": items}
    if isinstance(value, pathlib.PurePath):
        return {TAG: "path", "value": str(value)}
    if isinstance(value, datetime.datetime):
        return {TAG: "datetime", "iso": value.isoformat()}
    if isinstance(value, datetime.date):
        return {TAG: "date", "iso": value.isoformat()}
    raise UnserializableValueError(
        f"value of type {type(value).__name__} cannot be encoded losslessly "
        f"into a campaign record (got {value!r}); return JSON-compatible "
        "values (or numpy/complex/bytes/set/Path/datetime, which are tagged)"
    )


def _checked_scalar(value, item):
    """A numpy scalar's ``item()`` — accepted only when itself JSON-safe."""
    if isinstance(item, (bool, int, float, str)) or item is None:
        return item
    if isinstance(item, complex):
        return {TAG: "complex", "real": item.real, "imag": item.imag}
    raise UnserializableValueError(
        f"numpy scalar {value!r} unwraps to non-JSON type {type(item).__name__}"
    )


def tagged_object_hook(obj: dict):
    """``json.loads(object_hook=...)`` inverse of :func:`tagged_default`."""
    tag = obj.get(TAG)
    if tag is None:
        return obj
    if tag == "ndarray":
        import numpy as np

        return np.array(obj["data"], dtype=obj["dtype"])
    if tag == "complex":
        return complex(obj["real"], obj["imag"])
    if tag == "bytes":
        return base64.b64decode(obj["b64"])
    if tag == "set":
        return set(obj["items"])
    if tag == "frozenset":
        return frozenset(obj["items"])
    if tag == "path":
        return pathlib.Path(obj["value"])
    if tag == "datetime":
        return datetime.datetime.fromisoformat(obj["iso"])
    if tag == "date":
        return datetime.date.fromisoformat(obj["iso"])
    return obj  # unknown tag from a future version: hand back verbatim


def dumps_tagged(value, **kwargs) -> str:
    """``json.dumps`` with the tagged encoder installed."""
    return json.dumps(value, default=tagged_default, **kwargs)


def loads_tagged(text: str):
    """``json.loads`` with the tagged decoder installed."""
    return json.loads(text, object_hook=tagged_object_hook)
