"""Small argument-validation helpers with uniform error messages."""

from __future__ import annotations


class ValidationError(ValueError):
    """Raised when a user-supplied model/parameter value is invalid.

    Subclasses :class:`ValueError` so generic callers may catch either.
    """


def check_positive(name: str, value) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value) -> None:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")


def check_fraction(name: str, value) -> None:
    """Require ``0 <= value <= 1``."""
    if not (0 <= value <= 1):
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")


def check_type(name: str, value, expected: type | tuple) -> None:
    """Require ``isinstance(value, expected)``."""
    if not isinstance(value, expected):
        exp = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise ValidationError(f"{name} must be {exp}, got {type(value).__name__}")
