"""Deterministic random-number plumbing.

Every stochastic component in :mod:`repro` takes either an integer seed or a
:class:`numpy.random.Generator`.  These helpers normalize that argument and
derive independent child streams so that composed systems (e.g. a cluster
simulator hosting a filesystem model hosting a failure injector) stay
reproducible without sharing one mutable stream.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an ``int``, a ``SeedSequence``, or an
    existing ``Generator`` (returned unchanged so callers can share streams
    deliberately).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, SeedSequence, or Generator, got {type(seed).__name__}"
    )


def spawn_children(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``seed``.

    Independent streams keep subsystem draws decoupled: adding a draw to one
    subsystem does not perturb another subsystem's sequence.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive from the generator's bit stream deterministically.
        ss = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    elif isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
