"""Shared internal helpers: deterministic RNG plumbing, validation, text tables.

Nothing in this package is part of the public API; modules elsewhere in
:mod:`repro` import from here freely, external users should not.
"""

from repro._util.io import atomic_write_text, path_lock
from repro._util.rng import as_generator, spawn_children
from repro._util.tables import format_table, format_series
from repro._util.tagged import (
    UnserializableValueError,
    dumps_tagged,
    loads_tagged,
    tagged_default,
    tagged_object_hook,
)
from repro._util.validate import (
    check_positive,
    check_nonnegative,
    check_fraction,
    check_type,
    ValidationError,
)

__all__ = [
    "atomic_write_text",
    "path_lock",
    "UnserializableValueError",
    "dumps_tagged",
    "loads_tagged",
    "tagged_default",
    "tagged_object_hook",
    "as_generator",
    "spawn_children",
    "format_table",
    "format_series",
    "check_positive",
    "check_nonnegative",
    "check_fraction",
    "check_type",
    "ValidationError",
]
