"""Crash-safe file primitives: atomic JSON-text writes and per-path locks.

Campaign metadata (``status.json``, ``report.json``, per-run
``result.json``) is the durable record that ``resume=True`` and the
catalog trust.  A bare ``Path.write_text`` truncates the destination
before writing, so a driver killed mid-write (SIGKILL, OOM, power loss)
leaves *torn JSON* — and a torn ``status.json`` silently breaks resume.

:func:`atomic_write_text` closes that hole with the classic recipe:
write the full payload to a temporary file *in the same directory*,
``fsync`` it, then ``os.replace`` it over the destination.  Readers see
either the old complete file or the new complete file, never a prefix.

:func:`path_lock` serializes read-modify-write cycles on one file: a
process-wide :class:`threading.RLock` per canonical path (two campaign
-service submissions sharing a directory in one process), combined with
an advisory ``flock`` on a sibling ``<name>.lock`` file where the
platform offers one (two *processes* sharing a directory).
"""

from __future__ import annotations

import os
import tempfile
import threading
from contextlib import contextmanager
from pathlib import Path

try:  # advisory cross-process locks: POSIX only, optional by design
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None


def atomic_write_text(path: Path, text: str, fsync: bool = True) -> Path:
    """Write ``text`` to ``path`` so a crash can never leave a torn file.

    The payload lands in a ``NamedTemporaryFile`` created in ``path``'s
    own directory (same filesystem, so the final ``os.replace`` is an
    atomic rename), is flushed and — by default — fsynced, and only then
    renamed over the destination.  ``fsync=False`` trades the
    power-loss guarantee for speed (crash-of-the-*process* safety is
    retained either way); benchmarks use it for the measured baseline,
    the campaign metadata writers do not.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


class _PathLockState:
    """One path's lock state: re-entrant in-process lock + flock depth.

    ``depth`` counts re-entries by the holding thread so the advisory
    ``flock`` is taken exactly once per outermost acquisition — a second
    ``flock`` on a fresh descriptor of the same lock file would deadlock
    against our own first one (flock conflicts are per open-file-
    description, not per process).
    """

    __slots__ = ("rlock", "depth")

    def __init__(self) -> None:
        self.rlock = threading.RLock()
        self.depth = 0


#: Canonical path -> lock state, shared process-wide.
_PATH_LOCKS: dict[str, _PathLockState] = {}
_PATH_LOCKS_GUARD = threading.Lock()


def _lock_for(path: Path) -> _PathLockState:
    key = os.path.realpath(str(path))
    with _PATH_LOCKS_GUARD:
        state = _PATH_LOCKS.get(key)
        if state is None:
            state = _PATH_LOCKS[key] = _PathLockState()
        return state


@contextmanager
def path_lock(path: Path, cross_process: bool = True):
    """Serialize a read-modify-write cycle on ``path``.

    In-process: one re-entrant lock per canonical path, so concurrent
    campaign-service submissions in one interpreter cannot interleave
    their read/modify/write halves and drop updates.

    Cross-process (``cross_process=True``, POSIX): an advisory
    ``flock(LOCK_EX)`` on ``<path>.lock`` next to the target, held for
    the outermost acquisition only and released with the context.
    Platforms without ``fcntl`` silently keep the in-process guarantee.
    """
    path = Path(path)
    state = _lock_for(path)
    with state.rlock:
        state.depth += 1
        try:
            if fcntl is None or not cross_process or state.depth > 1:
                yield
                return
            lock_path = path.with_name(path.name + ".lock")
            with open(lock_path, "a+") as lock_file:
                fcntl.flock(lock_file.fileno(), fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(lock_file.fileno(), fcntl.LOCK_UN)
        finally:
            state.depth -= 1
