"""Plain-text table/series rendering used by the experiment harness.

Benchmarks print paper-figure data as aligned text tables; keeping the
formatter here avoids each bench reinventing padding logic.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_series(name: str, xs: Sequence, ys: Sequence, *, xlabel: str = "x", ylabel: str = "y") -> str:
    """Render a named (x, y) series as a two-column table."""
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} xs vs {len(ys)} ys")
    body = format_table([xlabel, ylabel], zip(xs, ys))
    return f"{name}\n{body}"
