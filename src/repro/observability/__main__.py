"""Command-line entry point: ``python -m repro.observability``.

Usage::

    python -m repro.observability report fig6.trace.json
    python -m repro.observability report fig6.trace.json --format json
    python -m repro.observability report fig6.trace.json --out reports.json
    python -m repro.observability diff baseline.json candidate.json
    python -m repro.observability diff base.report.json new.trace.json \\
        --fail-on-regression 10
    python -m repro.observability top http://127.0.0.1:9178
    python -m repro.observability top http://127.0.0.1:9178 --once

``top`` attaches to a live :class:`~repro.savanna.service.CampaignService`
telemetry endpoint (``serve_telemetry=True``) and redraws a per-tenant /
per-backend / per-worker table every ``--interval`` seconds — the live
complement to the post-hoc commands below.  ``report`` analyzes a saved Chrome ``trace_event`` capture (any file
``--trace`` or the benchmarks wrote) and prints the critical path,
wait-time attribution, straggler list, retry hotspots, and concurrency
timeline per campaign found in it.  ``diff`` compares two report files
— either side may also be a raw trace, analyzed on the fly — and, with
``--fail-on-regression PCT``, exits 1 when any matched campaign's
makespan grew more than PCT percent (or a baseline campaign vanished):
the CI gate over ``benchmarks/results/``.

Exit status: 0 ok, 1 regression past the threshold, 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.observability.analysis import diff_reports, load_reports, write_reports


def _cmd_report(args) -> int:
    reports = load_reports(args.trace)
    if not reports:
        print(f"no campaign spans found in {args.trace}", file=sys.stderr)
        return 2
    if args.out is not None:
        write_reports(args.out, reports)
    if args.format == "json":
        from repro.observability.analysis import reports_to_dict

        print(json.dumps(reports_to_dict(reports), indent=1))
    else:
        print("\n\n".join(r.to_text() for r in reports))
        if args.out is not None:
            print(f"\n[{len(reports)} report(s) -> {args.out}]")
    return 0


def _cmd_diff(args) -> int:
    diff = diff_reports(load_reports(args.baseline), load_reports(args.candidate))
    if args.format == "json":
        print(json.dumps(diff.to_dict(), indent=1))
    else:
        print(diff.to_text())
    if args.fail_on_regression is not None:
        problems = diff.regressions(args.fail_on_regression)
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}", file=sys.stderr)
            return 1
        print(f"[gate ok: no makespan regression beyond {args.fail_on_regression:g}%]")
    return 0


def _cmd_top(args) -> int:
    from urllib.error import URLError

    from repro.observability.live import watch

    iterations = 1 if args.once else args.frames
    try:
        frames = watch(
            args.url,
            interval=args.interval,
            iterations=iterations,
            clear=not args.once,
        )
    except URLError as exc:
        print(f"cannot reach {args.url}: {exc.reason}", file=sys.stderr)
        return 2
    return 0 if frames else 2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability",
        description="Trace analytics: critical-path / straggler / regression "
        "reports over recorded event streams.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="analyze a Chrome trace (or report file) and print per-campaign analytics"
    )
    report.add_argument("trace", help="trace_event JSON (or an existing report file)")
    report.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    report.add_argument(
        "--out", default=None, metavar="REPORTS.json",
        help="also write the reports in the standard file format",
    )
    report.set_defaults(func=_cmd_report)

    diff = sub.add_parser(
        "diff", help="compare two reports/traces; optionally gate on makespan regression"
    )
    diff.add_argument("baseline", help="baseline report or trace JSON")
    diff.add_argument("candidate", help="candidate report or trace JSON")
    diff.add_argument(
        "--fail-on-regression",
        type=float,
        default=None,
        metavar="PCT",
        help="exit 1 when any matched campaign's makespan grew more than "
        "PCT%% over baseline (or a baseline campaign is missing)",
    )
    diff.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    diff.set_defaults(func=_cmd_diff)

    top = sub.add_parser(
        "top", help="live per-tenant table over a running service's /status endpoint"
    )
    top.add_argument(
        "url", help="telemetry server base URL, e.g. http://127.0.0.1:9178"
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh period (default: 1.0)",
    )
    top.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="stop after N refreshes (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single snapshot without clearing the screen and exit",
    )
    top.set_defaults(func=_cmd_top)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (FileNotFoundError, ValueError) as exc:
        parser.error(str(exc))
        return 2  # unreachable; parser.error exits


if __name__ == "__main__":
    sys.exit(main())
