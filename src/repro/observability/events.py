"""Structured events and the runtime event taxonomy.

An :class:`Event` is one observation emitted by the execution layers: a
point occurrence (``phase="instant"``) or one endpoint of a span
(``phase="begin"`` / ``phase="end"``).  Events are immutable, carry the
simulation time they happened at, and a per-bus sequence number that
makes emission order total even when many events share a timestamp (the
discrete-event simulator routinely fires whole cascades at one instant).

Taxonomy
--------
Every name the built-in layers emit is declared here as a constant, so
subscribers can filter without string literals and the docs/tests have a
single authority.  The contract (names, fields, ordering guarantees) is
documented in ``docs/observability.md``; in short:

===================  =======  ===============================================
name                 phase    fields
===================  =======  ===============================================
``campaign``         span     campaign, tasks / completed, allocations
``group``            span     campaign, group, runs / completed
``alloc``            span     alloc, job, nodes, deadline / reason
``alloc.submitted``  instant  job, nodes, walltime, eligible_at
``task``             span     task, task_id, node, nodes, attempt, payload /
                              outcome
``task.requeued``    instant  task, task_id, retries
``task.retry``       instant  task, task_id, retries, delay, reason
``task.timeout``     instant  task, task_id, node, timeout
``task.fault_injected``  instant  task, task_id, node, kind, ...
``group.resumed``    instant  campaign, total, skipped, pending
``node.busy``        instant  node
``node.idle``        instant  node
``campaign.composed``  instant  campaign, groups, runs
``campaign.report``  instant  campaign, group, makespan, utilization, ...
``campaign.interrupted``  instant  campaign, completed, pending
``service.submitted``  instant  submission, campaign, tenant, priority, backend
``service.started``  instant  submission, campaign, tenant, queued_for
``service.finished`` instant  submission, campaign, tenant, outcome, elapsed
``service.cancelled``  instant  submission, campaign, tenant, while
``service.saturated``  instant  queued, limit, campaign, tenant
``worker.sample``    instant  worker, pid, cpu_seconds, cpu_pct, rss_bytes,
                              trace_id
===================  =======  ===============================================

The real-execution engine (:mod:`repro.savanna.realexec`) emits the same
``campaign``/``alloc``/``task`` taxonomy over wall-clock time — worker
slots stand in for nodes — so trace analytics read simulated and real
runs identically.  ``campaign.interrupted`` is its Ctrl-C marker: the
driver caught ``KeyboardInterrupt``, cancelled the queued work, and
returned partial results.

Ordering guarantees
-------------------
- ``time`` is non-decreasing per bus (the simulator clock never moves
  backwards) and ``seq`` is strictly increasing per bus.
- A span's ``begin`` precedes its ``end``; task spans never outlive the
  enclosing ``alloc`` span; ``alloc`` spans never outlive ``campaign``.
- Subscribers observe events synchronously, in emission order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# -- phases ------------------------------------------------------------------

BEGIN = "begin"
END = "end"
INSTANT = "instant"

PHASES = (BEGIN, END, INSTANT)

# -- span names --------------------------------------------------------------

CAMPAIGN = "campaign"  # one run_campaign() multi-allocation loop
GROUP = "group"  # one SweepGroup execution (execute_manifest)
ALLOC = "alloc"  # one granted batch allocation, grant -> reclaim
TASK = "task"  # one task attempt, launch -> end

# -- instant names -----------------------------------------------------------

ALLOC_SUBMITTED = "alloc.submitted"  # batch job queued, before grant
TASK_REQUEUED = "task.requeued"  # failed task re-entered the pending queue
TASK_RETRY = "task.retry"  # a retry policy granted another attempt
TASK_TIMEOUT = "task.timeout"  # an attempt exceeded its per-task timeout
TASK_FAULT_INJECTED = "task.fault_injected"  # the fault injector struck an attempt
GROUP_RESUMED = "group.resumed"  # a resumed SweepGroup skipped completed runs
NODE_BUSY = "node.busy"  # a node started executing work
NODE_IDLE = "node.idle"  # a node finished executing work
CAMPAIGN_COMPOSED = "campaign.composed"  # a Cheetah campaign was materialized
CAMPAIGN_LINTED = "campaign.linted"  # pre-run static analysis ran over a manifest
CAMPAIGN_REPORT = "campaign.report"  # post-run trace analytics summary
CAMPAIGN_INTERRUPTED = "campaign.interrupted"  # a real driver caught Ctrl-C

# -- campaign-service instants ------------------------------------------------
# Emitted by repro.savanna.service.CampaignService on its (thread-safe,
# wall-clock) monitoring bus; ``submission`` carries the service-assigned
# submission id so concurrent campaigns are attributable.

SERVICE_SUBMITTED = "service.submitted"  # a campaign entered the service queue
SERVICE_STARTED = "service.started"  # a worker picked the submission up
SERVICE_FINISHED = "service.finished"  # a submission reached done/failed
SERVICE_CANCELLED = "service.cancelled"  # a submission was cancelled
SERVICE_SATURATED = "service.saturated"  # submit() hit the queue-depth bound

# -- live-telemetry instants ---------------------------------------------------

WORKER_SAMPLE = "worker.sample"  # one resource-profiler reading of a pool worker


def new_trace_id() -> str:
    """Mint one trace id (16 hex chars) for a drive/submission.

    Trace ids tie every observation of one campaign execution together
    across process boundaries: the campaign service stamps its
    lifecycle instants with it, the drive pipeline stamps group/task
    events, the real-execution engine carries it inside each picklable
    :class:`~repro.savanna.realexec.RealTaskSpec` so the *worker
    process* can echo it back, and the structured-log adapter
    (:class:`~repro.observability.live.JsonLogSubscriber`) surfaces it
    as a first-class log field — grep one id, see the whole story.
    """
    import uuid

    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class Event:
    """One structured observation.

    Parameters
    ----------
    name:
        Taxonomy name (see module docstring); dots namespace, e.g.
        ``task.requeued``.
    time:
        Simulation seconds at emission (buses are clocked by their
        cluster's simulator; a standalone bus defaults to 0.0).
    phase:
        ``"begin"`` / ``"end"`` for span endpoints, ``"instant"`` for
        point events.
    seq:
        Strictly increasing per bus; totalizes ordering at equal times.
    pid:
        The emitting bus's identifier — one per simulated machine, used
        as the Chrome-trace process id so multi-cluster captures do not
        interleave.
    fields:
        JSON-serializable payload (task names, node indices, outcomes).
    """

    name: str
    time: float
    phase: str = INSTANT
    seq: int = 0
    pid: int = 0
    fields: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise ValueError(f"phase must be one of {PHASES}, got {self.phase!r}")

    @property
    def is_span(self) -> bool:
        return self.phase in (BEGIN, END)


def span_key(event: Event):
    """The identity that pairs a span's ``begin`` with its ``end``.

    Task spans pair on ``task_id`` (names may repeat across retries in
    the same instant), allocation spans on ``alloc``, everything else on
    the event name alone (campaign/group spans do not self-nest).
    """
    if event.name == TASK:
        return (event.pid, TASK, event.fields.get("task_id"))
    if event.name == ALLOC:
        return (event.pid, ALLOC, event.fields.get("alloc"))
    return (event.pid, event.name)


def validate_event_stream(events) -> None:
    """Check the ordering contract over a recorded stream.

    Raises ``ValueError`` on: backwards timestamps (per pid), non-increasing
    sequence numbers (per pid), an ``end`` without a matching open
    ``begin``, or spans left open at the end of the stream.
    """
    last_time: dict[int, float] = {}
    last_seq: dict[int, int] = {}
    open_spans: dict[tuple, Event] = {}
    for event in events:
        if event.time < last_time.get(event.pid, float("-inf")):
            raise ValueError(
                f"time went backwards at {event.name!r}: "
                f"{event.time} < {last_time[event.pid]}"
            )
        if event.seq <= last_seq.get(event.pid, -1):
            raise ValueError(
                f"sequence not increasing at {event.name!r}: "
                f"{event.seq} <= {last_seq[event.pid]}"
            )
        last_time[event.pid] = event.time
        last_seq[event.pid] = event.seq
        if event.phase == BEGIN:
            key = span_key(event)
            if key in open_spans:
                raise ValueError(f"span {key} opened twice")
            open_spans[key] = event
        elif event.phase == END:
            key = span_key(event)
            if key not in open_spans:
                raise ValueError(f"span {key} ended without begin")
            del open_spans[key]
    if open_spans:
        raise ValueError(f"spans left open: {sorted(k[1] for k in open_spans)}")
