"""Close the loop: provenance records and gauge tiers from live traces.

The paper's Software Provenance gauge ladders from per-execution logs up
to campaign knowledge and exportability (§III).  Historically those
records were reconstructed *after* a run from executor bookkeeping
(:mod:`repro.savanna.provenance`); this module builds them straight from
the runtime's own event stream instead — the provenance is emitted by the
thing that executed, which is exactly what the gauge rewards.

Given a recorded event stream:

- :func:`provenance_store_from_trace` materializes one
  :class:`~repro.metadata.provenance.ProvenanceRecord` per task attempt
  (begin/end span pair) into a
  :class:`~repro.metadata.provenance.ProvenanceStore`;
- :func:`observed_provenance_tier` reports the
  :class:`~repro.gauges.levels.ProvenanceTier` the trace itself
  establishes;
- :func:`observed_software_metadata` packages that evidence as
  :class:`~repro.gauges.model.SoftwareMetadata` inputs so
  :func:`~repro.gauges.model.assess` raises the gauge mechanically.
"""

from __future__ import annotations

from repro.gauges.levels import ProvenanceTier
from repro.observability.events import BEGIN, CAMPAIGN, END, GROUP, TASK, Event
from repro.metadata.provenance import (
    CampaignContext,
    ExportClass,
    ExportPolicy,
    ProvenanceRecord,
    ProvenanceStore,
)


def task_attempts(events) -> list[tuple[Event, Event]]:
    """Pair task ``begin``/``end`` events into attempts, in begin order.

    Attempts whose ``end`` never arrived (a capture stopped mid-flight)
    are dropped — same policy as
    :func:`~repro.savanna.provenance.record_campaign_result`.
    """
    open_begins: dict[tuple, Event] = {}
    pairs: list[tuple[Event, Event]] = []
    for event in events:
        if event.name != TASK:
            continue
        key = (event.pid, event.fields.get("task_id"))
        if event.phase == BEGIN:
            open_begins[key] = event
        elif event.phase == END and key in open_begins:
            pairs.append((open_begins.pop(key), event))
    return pairs


def campaign_names(events) -> tuple:
    """Campaign names asserted by campaign/group spans, in first-seen order."""
    names = []
    for event in events:
        if event.name in (CAMPAIGN, GROUP) and event.phase == BEGIN:
            name = event.fields.get("campaign")
            if name and name not in names:
                names.append(name)
    return tuple(names)


def provenance_store_from_trace(
    events,
    context: CampaignContext | None = None,
    store: ProvenanceStore | None = None,
    export_class: ExportClass = ExportClass.INTERNAL,
    environment: dict | None = None,
) -> ProvenanceStore:
    """Build a queryable provenance store from a recorded event stream.

    Every completed task attempt becomes one record: component = task
    name, start/end = span endpoints, parameters = the task payload the
    executor put on the ``begin`` event, outcome = the ``end`` outcome.
    With ``context`` given, records are grouped under that campaign
    (registering it if needed); pass an existing ``store`` to accumulate
    several captures.
    """
    store = store or ProvenanceStore()
    if context is not None and context.name not in {c.name for c in store.campaigns}:
        store.register_campaign(context)
    for begin, end in task_attempts(events):
        store.add(
            ProvenanceRecord(
                component=begin.fields.get("task", f"task-{begin.fields.get('task_id')}"),
                start_time=begin.time,
                end_time=end.time,
                parameters=dict(begin.fields.get("payload") or {}),
                environment=dict(environment or {}),
                campaign=context.name if context is not None else None,
                outcome=end.fields.get("outcome", "unknown"),
                export_class=export_class,
            )
        )
    return store


def observed_provenance_tier(
    events, export_policy: ExportPolicy | None = None
) -> ProvenanceTier:
    """The Provenance gauge tier this trace establishes by itself.

    - task attempts recorded        → ``EXECUTION_LOGS``
    - plus campaign/group context   → ``CAMPAIGN_KNOWLEDGE``
    - plus an export policy in hand → ``EXPORTABLE`` (a policy is a
      decision, not an observation, so the caller must supply it)
    """
    if not task_attempts(events):
        return ProvenanceTier.NONE
    if not campaign_names(events):
        return ProvenanceTier.EXECUTION_LOGS
    if export_policy is None:
        return ProvenanceTier.CAMPAIGN_KNOWLEDGE
    return ProvenanceTier.EXPORTABLE


def observed_software_metadata(
    events,
    base=None,
    context: CampaignContext | None = None,
    export_policy: ExportPolicy | None = None,
):
    """Fold trace evidence into :class:`~repro.gauges.model.SoftwareMetadata`.

    Returns a copy of ``base`` (default: a fresh descriptor) with
    ``has_execution_logs`` set when the trace holds task attempts and
    ``campaign`` set to ``context`` (or a minimal context synthesized
    from the trace's campaign spans).  Run the result through
    :func:`~repro.gauges.model.assess` and the Software Provenance gauge
    rises to exactly :func:`observed_provenance_tier` — the tier is now
    *earned by the runtime*, not asserted by hand.
    """
    from dataclasses import replace

    from repro.gauges.model import SoftwareMetadata

    base = base or SoftwareMetadata()
    has_logs = bool(task_attempts(events))
    if context is None:
        names = campaign_names(events)
        if names:
            context = CampaignContext(name=names[0], objective="observed from trace")
    return replace(
        base,
        has_execution_logs=base.has_execution_logs or has_logs,
        campaign=base.campaign or context,
        export_policy=base.export_policy or export_policy,
    )
