"""The event bus: synchronous pub/sub with span support.

One :class:`EventBus` per simulated machine (created by
:class:`~repro.cluster.cluster.SimulatedCluster`); the execution layers
emit into it and any number of subscribers — trace recorders, metrics
aggregators, ad-hoc test probes — observe synchronously, in emission
order.

Two subscription scopes exist:

- **instance** subscribers (:meth:`EventBus.subscribe`) see one bus;
- **global** subscribers (:func:`subscribe_all`) see every bus in the
  process, which is how a recorder captures runs whose clusters are
  created deep inside a figure driver it does not control.

Emission is near-free when nobody listens: ``emit`` returns ``None``
without building an :class:`Event`, so instrumented hot paths cost one
truthiness check per event in unobserved runs.

Batched emission: hot paths that produce many events at one code site
(the vectorized executors, trace replay, bench harnesses) can hand the
bus a whole batch at once via :meth:`EventBus.publish_batch`.  Ordering
and sequence numbering are identical to the equivalent ``emit`` loop —
subscribers that only understand single events observe the exact same
stream — but subscribers that declare an ``on_batch`` method (the
Chrome-trace recorder, the streaming report builder) receive the batch
in one call, dropping the per-event Python function-call overhead.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Callable

from repro.observability.events import BEGIN, END, INSTANT, Event


class SubscriberError(UserWarning):
    """Warning category for exceptions raised inside bus subscribers.

    Delivery is isolated: a raising subscriber (a buggy analyzer, a
    broken metrics sink) must not kill the simulation it observes, so
    ``emit`` catches the exception, issues one warning per subscriber
    *per event name* — each warning names the event that triggered it,
    so a subscriber that chokes on ``task`` events and later on
    ``alloc`` events reports both without a local repro — and keeps
    delivering to the rest.  Filter with
    ``warnings.filterwarnings("error", category=SubscriberError)`` to
    surface subscriber bugs hard in tests.
    """

#: Process-wide subscribers: every bus delivers to these after its own.
_GLOBAL_SUBSCRIBERS: list[Callable[[Event], None]] = []

_bus_ids = iter(range(1 << 30))


def subscribe_all(callback: Callable[[Event], None]) -> Callable[[], None]:
    """Observe every bus in the process; returns an unsubscribe callable."""
    _GLOBAL_SUBSCRIBERS.append(callback)

    def unsubscribe() -> None:
        if callback in _GLOBAL_SUBSCRIBERS:
            _GLOBAL_SUBSCRIBERS.remove(callback)

    return unsubscribe


class EventBus:
    """Synchronous, ordered event delivery with span bookkeeping.

    Parameters
    ----------
    clock:
        Zero-argument callable giving the current time in seconds; the
        cluster wires in its simulator's clock.  A standalone bus reads
        0.0 (explicitly pass ``time=`` to :meth:`emit` to override).
    name:
        Human label for the bus (defaults to ``bus-<pid>``); shows up in
        recorder output when several machines are captured at once.

    Example
    -------
    >>> bus = EventBus()
    >>> seen = []
    >>> _ = bus.subscribe(seen.append)
    >>> _ = bus.emit("task", phase="begin", task_id=1)
    >>> seen[0].name, seen[0].fields["task_id"]
    ('task', 1)
    """

    def __init__(self, clock: Callable[[], float] | None = None, name: str | None = None):
        self.clock = clock
        self.pid = next(_bus_ids)
        self.name = name or f"bus-{self.pid}"
        self._subscribers: list[Callable[[Event], None]] = []
        self._seq = 0
        self._warned: set[int] = set()

    # -- subscription --------------------------------------------------------

    def subscribe(self, callback: Callable[[Event], None]) -> Callable[[], None]:
        """Deliver every event on this bus to ``callback``.

        Returns an unsubscribe callable (idempotent).  Subscribers run
        synchronously in subscription order.  An exception in one is
        *isolated*: it is reported as a :class:`SubscriberError` warning
        (once per subscriber per event name per bus, naming the event
        that triggered it) and delivery continues — an observer bug must
        not alter, let alone kill, the run it observes.

        A subscriber object may additionally expose an ``on_batch(events)``
        method; :meth:`publish_batch` will then deliver whole batches in
        one call instead of one call per event.
        """
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

        return unsubscribe

    @property
    def has_subscribers(self) -> bool:
        return bool(self._subscribers) or bool(_GLOBAL_SUBSCRIBERS)

    # -- emission ------------------------------------------------------------

    def emit(
        self,
        name: str,
        phase: str = INSTANT,
        time: float | None = None,
        **fields,
    ) -> Event | None:
        """Build and deliver one event; returns it (or ``None`` if unobserved).

        ``time`` defaults to the bus clock; fields must stay
        JSON-serializable so traces export losslessly.
        """
        if not self._subscribers and not _GLOBAL_SUBSCRIBERS:
            return None
        if time is None:
            time = self.clock() if self.clock is not None else 0.0
        event = Event(
            name=name,
            time=float(time),
            phase=phase,
            seq=self._seq,
            pid=self.pid,
            fields=fields,
        )
        self._seq += 1
        for callback in (*self._subscribers, *_GLOBAL_SUBSCRIBERS):
            try:
                callback(event)
            except Exception as exc:
                self._warn_subscriber(callback, name, exc)
        return event

    def publish_batch(self, specs) -> list[Event] | None:
        """Build and deliver many events in one call; returns them.

        ``specs`` is an iterable of ``(name, phase, time, fields)``
        tuples (``phase``/``time``/``fields`` optional — ``None`` means
        the :meth:`emit` default).  Sequence numbers are assigned in
        input order, so the resulting stream is indistinguishable from
        the equivalent ``emit`` loop; returns ``None`` without building
        anything when nobody listens.

        Subscribers exposing an ``on_batch(events)`` method receive the
        whole batch in a single call (the Chrome-trace recorder and the
        streaming report builder do); plain callables are invoked once
        per event, in order.  Isolation matches :meth:`emit`: a raising
        subscriber is warned about (with the event name that triggered
        it) and the rest of the delivery proceeds.
        """
        if not self._subscribers and not _GLOBAL_SUBSCRIBERS:
            return None
        default_time = None
        events: list[Event] = []
        seq = self._seq
        for spec in specs:
            name, phase, time, fields = spec
            if phase is None:
                phase = INSTANT
            if time is None:
                if default_time is None:
                    default_time = self.clock() if self.clock is not None else 0.0
                time = default_time
            events.append(
                Event(
                    name=name,
                    time=float(time),
                    phase=phase,
                    seq=seq,
                    pid=self.pid,
                    fields=dict(fields) if fields else {},
                )
            )
            seq += 1
        self._seq = seq
        if not events:
            return events
        for callback in (*self._subscribers, *_GLOBAL_SUBSCRIBERS):
            batch_cb = getattr(callback, "on_batch", None)
            if batch_cb is not None:
                try:
                    batch_cb(events)
                except Exception as exc:
                    self._warn_subscriber(callback, events[0].name, exc, batch=len(events))
                continue
            for event in events:
                try:
                    callback(event)
                except Exception as exc:
                    self._warn_subscriber(callback, event.name, exc)
        return events

    def _warn_subscriber(self, callback, name: str, exc: Exception, batch: int = 0) -> None:
        """Report one isolated subscriber failure (once per event name)."""
        key = (id(callback), name)
        if key in self._warned:
            return
        self._warned.add(key)
        where = f"batch of {batch} events starting at {name!r}" if batch else f"event {name!r}"
        warnings.warn(
            f"subscriber {callback!r} on {self.name} raised {exc!r} at "
            f"{where}; it stays subscribed and delivery continues (further "
            f"failures of this subscriber at {name!r} are silent)",
            SubscriberError,
            stacklevel=3,
        )

    @contextmanager
    def span(self, name: str, **fields):
        """Emit ``begin``/``end`` around a code block, exception-safely.

        On a clean exit the ``end`` event carries ``outcome="ok"``; if the
        block raises, the ``end`` still fires (so no span dangles) with
        ``outcome="error"`` and the exception's repr, and the exception
        propagates.  The begin/end timestamps come from the bus clock, so
        a span wrapped around ``cluster.run()`` covers simulated time.
        """
        self.emit(name, phase=BEGIN, **fields)
        try:
            yield self
        except BaseException as exc:
            self.emit(name, phase=END, outcome="error", error=repr(exc), **fields)
            raise
        else:
            self.emit(name, phase=END, outcome="ok", **fields)
