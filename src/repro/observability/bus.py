"""The event bus: synchronous pub/sub with span support.

One :class:`EventBus` per simulated machine (created by
:class:`~repro.cluster.cluster.SimulatedCluster`); the execution layers
emit into it and any number of subscribers — trace recorders, metrics
aggregators, ad-hoc test probes — observe synchronously, in emission
order.

Two subscription scopes exist:

- **instance** subscribers (:meth:`EventBus.subscribe`) see one bus;
- **global** subscribers (:func:`subscribe_all`) see every bus in the
  process, which is how a recorder captures runs whose clusters are
  created deep inside a figure driver it does not control.

Emission is near-free when nobody listens: ``emit`` returns ``None``
without building an :class:`Event`, so instrumented hot paths cost one
truthiness check per event in unobserved runs.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Callable

from repro.observability.events import BEGIN, END, INSTANT, Event


class SubscriberError(UserWarning):
    """Warning category for exceptions raised inside bus subscribers.

    Delivery is isolated: a raising subscriber (a buggy analyzer, a
    broken metrics sink) must not kill the simulation it observes, so
    ``emit`` catches the exception, issues one warning per subscriber,
    and keeps delivering to the rest.  Filter with
    ``warnings.filterwarnings("error", category=SubscriberError)`` to
    surface subscriber bugs hard in tests.
    """

#: Process-wide subscribers: every bus delivers to these after its own.
_GLOBAL_SUBSCRIBERS: list[Callable[[Event], None]] = []

_bus_ids = iter(range(1 << 30))


def subscribe_all(callback: Callable[[Event], None]) -> Callable[[], None]:
    """Observe every bus in the process; returns an unsubscribe callable."""
    _GLOBAL_SUBSCRIBERS.append(callback)

    def unsubscribe() -> None:
        if callback in _GLOBAL_SUBSCRIBERS:
            _GLOBAL_SUBSCRIBERS.remove(callback)

    return unsubscribe


class EventBus:
    """Synchronous, ordered event delivery with span bookkeeping.

    Parameters
    ----------
    clock:
        Zero-argument callable giving the current time in seconds; the
        cluster wires in its simulator's clock.  A standalone bus reads
        0.0 (explicitly pass ``time=`` to :meth:`emit` to override).
    name:
        Human label for the bus (defaults to ``bus-<pid>``); shows up in
        recorder output when several machines are captured at once.

    Example
    -------
    >>> bus = EventBus()
    >>> seen = []
    >>> _ = bus.subscribe(seen.append)
    >>> _ = bus.emit("task", phase="begin", task_id=1)
    >>> seen[0].name, seen[0].fields["task_id"]
    ('task', 1)
    """

    def __init__(self, clock: Callable[[], float] | None = None, name: str | None = None):
        self.clock = clock
        self.pid = next(_bus_ids)
        self.name = name or f"bus-{self.pid}"
        self._subscribers: list[Callable[[Event], None]] = []
        self._seq = 0
        self._warned: set[int] = set()

    # -- subscription --------------------------------------------------------

    def subscribe(self, callback: Callable[[Event], None]) -> Callable[[], None]:
        """Deliver every event on this bus to ``callback``.

        Returns an unsubscribe callable (idempotent).  Subscribers run
        synchronously in subscription order.  An exception in one is
        *isolated*: it is reported as a :class:`SubscriberError` warning
        (once per subscriber per bus) and delivery continues — an
        observer bug must not alter, let alone kill, the run it
        observes.
        """
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

        return unsubscribe

    @property
    def has_subscribers(self) -> bool:
        return bool(self._subscribers) or bool(_GLOBAL_SUBSCRIBERS)

    # -- emission ------------------------------------------------------------

    def emit(
        self,
        name: str,
        phase: str = INSTANT,
        time: float | None = None,
        **fields,
    ) -> Event | None:
        """Build and deliver one event; returns it (or ``None`` if unobserved).

        ``time`` defaults to the bus clock; fields must stay
        JSON-serializable so traces export losslessly.
        """
        if not self._subscribers and not _GLOBAL_SUBSCRIBERS:
            return None
        if time is None:
            time = self.clock() if self.clock is not None else 0.0
        event = Event(
            name=name,
            time=float(time),
            phase=phase,
            seq=self._seq,
            pid=self.pid,
            fields=fields,
        )
        self._seq += 1
        for callback in (*self._subscribers, *_GLOBAL_SUBSCRIBERS):
            try:
                callback(event)
            except Exception as exc:
                if id(callback) not in self._warned:
                    self._warned.add(id(callback))
                    warnings.warn(
                        f"subscriber {callback!r} on {self.name} raised "
                        f"{exc!r} at event {name!r}; it stays subscribed "
                        "and delivery continues (further failures of this "
                        "subscriber are silent)",
                        SubscriberError,
                        stacklevel=2,
                    )
        return event

    @contextmanager
    def span(self, name: str, **fields):
        """Emit ``begin``/``end`` around a code block, exception-safely.

        On a clean exit the ``end`` event carries ``outcome="ok"``; if the
        block raises, the ``end`` still fires (so no span dangles) with
        ``outcome="error"`` and the exception's repr, and the exception
        propagates.  The begin/end timestamps come from the bus clock, so
        a span wrapped around ``cluster.run()`` covers simulated time.
        """
        self.emit(name, phase=BEGIN, **fields)
        try:
            yield self
        except BaseException as exc:
            self.emit(name, phase=END, outcome="error", error=repr(exc), **fields)
            raise
        else:
            self.emit(name, phase=END, outcome="ok", **fields)
