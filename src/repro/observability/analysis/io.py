"""Report files: load/save, and trace-vs-report detection.

One on-disk format for everything the analyzer writes::

    {"schema": "repro.observability.report/v1", "reports": [ {...}, ... ]}

:func:`load_reports` additionally accepts a raw Chrome ``trace_event``
JSON (list form, or dict with ``traceEvents``) and analyzes it on the
fly — so ``python -m repro.observability diff`` takes any mix of trace
files and report files, and a CI job can diff a freshly captured trace
against a committed baseline report without an intermediate step.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.observability.analysis.report import REPORT_SCHEMA, CampaignReport, analyze_events
from repro.observability.recorder import events_from_trace


def reports_to_dict(reports) -> dict:
    """The serialized file form of a list of reports."""
    return {
        "schema": REPORT_SCHEMA,
        "reports": [r.to_dict() for r in reports],
    }


def write_reports(path, reports) -> Path:
    """Write reports in the standard file format; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(reports_to_dict(reports), indent=1) + "\n")
    return path


def load_reports(source) -> list[CampaignReport]:
    """Load reports from a report file, report dict, or Chrome trace.

    - a dict with ``reports`` (our file format, any ``schema`` /v1+): the
      reports are deserialized directly;
    - a single report dict (has ``campaign`` and ``makespan``): wrapped;
    - a ``trace_event`` list or ``{"traceEvents": [...]}`` dict: parsed
      through :func:`~repro.observability.recorder.events_from_trace`
      and analyzed.

    ``source`` may also be a path to a JSON file holding any of these.
    """
    if isinstance(source, (str, Path)):
        data = json.loads(Path(source).read_text())
    else:
        data = source
    if isinstance(data, dict) and "reports" in data:
        return [CampaignReport.from_dict(r) for r in data["reports"]]
    if isinstance(data, dict) and "campaign" in data and "makespan" in data:
        return [CampaignReport.from_dict(data)]
    if isinstance(data, (list, dict)):  # a Chrome trace, list or object form
        return analyze_events(events_from_trace(data, validate=False))
    raise ValueError(
        f"unrecognized report/trace source of type {type(data).__name__}"
    )
