"""Streaming campaign analytics: fold the event stream as it arrives.

:class:`StreamingCampaignReport` is the incremental counterpart of
:func:`~repro.observability.analysis.report.analyze_events`.  The batch
entry point needs the whole stream in memory first — a recorder (or the
drive loop) buffers every event, then analysis replays the buffer.  The
streaming builder instead subscribes directly to the bus and folds each
event into analysis state the moment it is emitted:

- span reconstruction reuses :meth:`SpanTrace.feed` — one span record
  per task attempt / allocation / campaign, never the raw events;
- instants (retries, faults, timeouts) collapse into O(1) counters and
  the event object is dropped on the spot;
- running aggregates (tasks done/failed/killed, busy node-second
  integral, peak concurrency, summed backoff) are maintained per event,
  so :meth:`progress` answers "how is the campaign doing" *mid-run*
  without any replay.

Memory is therefore O(1) per event on top of the span tree that batch
analysis would have to build anyway; the unbounded raw-event buffer is
gone.  The builder is batch-aware (:meth:`on_batch`), so the vectorized
executors' ``publish_batch`` emissions fold in one call per batch.

Equivalence is exact, not approximate: :meth:`reports` runs the same
:func:`~repro.observability.analysis.report.report_for_campaign` passes
over the incrementally-built :class:`SpanTrace`, so the result matches
``analyze_events`` on the identical stream field for field (the test
suite replays the committed Chrome traces through both and compares
serialized output).
"""

from __future__ import annotations

from repro.observability.analysis.report import CampaignReport, report_for_campaign
from repro.observability.analysis.spans import SpanTrace
from repro.observability.events import BEGIN, END, TASK, TASK_RETRY


class StreamingCampaignReport:
    """Incrementally fold bus events into campaign reports.

    Example
    -------
    >>> from repro.observability import EventBus
    >>> bus = EventBus()
    >>> builder = StreamingCampaignReport().attach(bus)
    >>> with bus.span("campaign", campaign="c"):
    ...     with bus.span("task", task_id=0, task="t0", node=0):
    ...         pass
    >>> builder.detach()
    >>> [r.campaign for r in builder.reports()]
    ['c']
    """

    def __init__(self) -> None:
        self.trace = SpanTrace()
        self._unsubscribers: list = []
        self._reports: list[CampaignReport] | None = None
        # Running aggregates, updated in O(1) per event.
        self._done = 0
        self._failed = 0
        self._killed = 0
        self._started = 0
        self._backoff = 0.0
        self._busy_node_seconds = 0.0
        self._peak_concurrency = 0
        # Per-pid concurrency step function: (level, last change time).
        self._level: dict[int, tuple[float, float]] = {}

    # -- attachment ----------------------------------------------------------

    def attach(self, bus) -> "StreamingCampaignReport":
        """Subscribe to one bus (chainable).

        The builder subscribes as itself, so ``publish_batch`` sees its
        :meth:`on_batch` hook and delivers whole batches in one call.
        """
        self._unsubscribers.append(bus.subscribe(self))
        return self

    def detach(self) -> None:
        """Drop every subscription this builder holds."""
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers.clear()

    # -- folding -------------------------------------------------------------

    def feed(self, event) -> None:
        """Fold one event; raw event objects are not retained."""
        if self._reports is not None:
            raise RuntimeError(
                "StreamingCampaignReport already finalized; create a new "
                "builder for a new stream"
            )
        self.trace.feed(event)
        name = event.name
        if name == TASK:
            width = max(1, len(event.fields.get("nodes") or ()) or 1)
            if event.phase == BEGIN:
                self._started += 1
                self._step_level(event.pid, event.time, width)
            elif event.phase == END:
                outcome = event.fields.get("outcome")
                if outcome == "done":
                    self._done += 1
                elif outcome == "failed":
                    self._failed += 1
                elif outcome == "killed":
                    self._killed += 1
                self._step_level(event.pid, event.time, -width)
        elif name == TASK_RETRY:
            self._backoff += float(event.fields.get("delay") or 0.0)

    #: Builders are plain callables, so ``bus.subscribe(builder)`` works.
    __call__ = feed

    def on_batch(self, events) -> None:
        """Batch-aware subscriber hook (see ``EventBus.publish_batch``)."""
        feed = self.feed
        for event in events:
            feed(event)

    def _step_level(self, pid: int, time: float, delta: float) -> None:
        level, since = self._level.get(pid, (0.0, time))
        if time > since:
            self._busy_node_seconds += level * (time - since)
        level += delta
        if level > self._peak_concurrency:
            self._peak_concurrency = level
        self._level[pid] = (level, max(since, time))

    # -- reading back --------------------------------------------------------

    def progress(self) -> dict:
        """A mid-stream snapshot of the running aggregates (O(1) to read).

        Available at any point while the stream is still flowing — this
        is the payload a live dashboard or a periodic log line would
        poll, and it never touches the span tree.
        """
        return {
            "events": self.trace.n_events,
            "last_time": self.trace.last_time,
            "attempts_started": self._started,
            "done": self._done,
            "failed": self._failed,
            "killed": self._killed,
            "running": self._started - self._done - self._failed - self._killed,
            "retry_backoff": self._backoff,
            "busy_node_seconds": self._busy_node_seconds,
            "peak_concurrency": self._peak_concurrency,
            "campaigns_seen": len(self.trace.campaigns),
        }

    def reports(self) -> list[CampaignReport]:
        """Finalize and return one report per campaign span, in order.

        Matches ``analyze_events`` on the same stream exactly.  The
        first call closes any spans the stream left open and caches the
        result; feeding further events afterwards is an error.
        """
        if self._reports is None:
            self.trace.close_open()
            self._reports = [
                report_for_campaign(self.trace, campaign)
                for campaign in self.trace.campaigns
            ]
        return self._reports
