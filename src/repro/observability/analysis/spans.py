"""Span-tree reconstruction: from a flat event stream back to structure.

The execution layers emit a *flat*, ordered stream (see
``repro.observability.events``); analysis needs the structure back — which
task attempts ran inside which allocation, which allocation inside which
campaign, how long every queue wait and backoff delay lasted.
:class:`SpanTrace` rebuilds exactly that, from a live capture
(``recorder.events``) or a loaded Chrome trace
(:func:`~repro.observability.recorder.events_from_trace`) — the two are
indistinguishable here.

Reconstruction is tolerant by design: a capture cut mid-run (a crashed
driver, a trace written from a partial recording) leaves spans open, and
an open span is closed at the stream's last observed time with
``outcome=None`` rather than dropped — the analyzer must be able to
answer "why was this campaign slow" about the runs that went *wrong*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.events import (
    ALLOC,
    ALLOC_SUBMITTED,
    BEGIN,
    CAMPAIGN,
    END,
    GROUP,
    GROUP_RESUMED,
    TASK,
    TASK_FAULT_INJECTED,
    TASK_REQUEUED,
    TASK_RETRY,
    TASK_TIMEOUT,
)


@dataclass
class TaskSpan:
    """One task attempt: the reconstructed ``task`` begin/end pair."""

    pid: int
    task_id: int
    name: str
    node: int | None
    nodes: tuple
    attempt: int
    start: float
    end: float | None = None
    outcome: str | None = None
    payload: dict = field(default_factory=dict)
    alloc: int | None = None  # enclosing alloc span's grant index
    group: str | None = None  # enclosing group span's name
    campaign: str | None = None  # enclosing campaign span's name
    retries_granted: int = 0  # task.retry instants for this task_id so far
    backoff: float = 0.0  # summed policy delays granted to this task_id
    faults: int = 0  # task.fault_injected instants inside this attempt
    timed_out: bool = False

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass
class AllocSpan:
    """One granted batch allocation, submission to reclaim."""

    pid: int
    index: int
    job: str | None
    nodes: tuple
    start: float
    end: float | None = None
    deadline: float | None = None
    reason: str | None = None
    submitted: float | None = None  # alloc.submitted time, if observed
    campaign: str | None = None

    @property
    def queue_wait(self) -> float:
        if self.submitted is None:
            return 0.0
        return max(0.0, self.start - self.submitted)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass
class CampaignSpan:
    """One campaign-loop span (``run_campaign`` begin/end)."""

    pid: int
    name: str
    start: float
    end: float | None = None
    tasks: int | None = None
    completed: int | None = None
    allocations: int | None = None
    group: str | None = None  # enclosing drive-level group span, if any
    resumed_skipped: int = 0  # runs skipped by resume, from group.resumed


@dataclass
class SpanTrace:
    """Every reconstructed span plus the instants analysis cares about.

    Two ways to build one:

    - :meth:`from_events` — the classic one-shot pass over a complete
      stream (live capture or loaded trace);
    - :meth:`feed` one event at a time (or :meth:`feed_batch`), then
      :meth:`close_open` when the stream ends — the incremental form the
      streaming report builder (:mod:`.streaming`) drives directly off
      the bus.  Both produce identical traces for identical streams:
      ``from_events`` *is* the feed loop.
    """

    campaigns: list = field(default_factory=list)  # list[CampaignSpan]
    allocs: list = field(default_factory=list)  # list[AllocSpan]
    tasks: list = field(default_factory=list)  # list[TaskSpan]
    requeues: list = field(default_factory=list)  # raw task.requeued events
    retries_by_task: dict = field(default_factory=dict)  # (pid, task_id) -> grants
    backoff_by_task: dict = field(default_factory=dict)  # (pid, task_id) -> seconds
    last_time: float = 0.0
    n_events: int = 0

    def __post_init__(self) -> None:
        # Per-pid open-span state.  The emission contract nests spans
        # physically (task inside alloc inside campaign), so "the open
        # alloc on this pid" is unambiguous at any point in the stream.
        self._open_campaign: dict[int, CampaignSpan] = {}
        self._open_group: dict[int, dict] = {}
        self._open_alloc: dict[int, AllocSpan] = {}
        self._open_tasks: dict[tuple, TaskSpan] = {}
        self._pending_submits: dict[tuple, float] = {}  # (pid, job) -> submit

    @classmethod
    def from_events(cls, events) -> "SpanTrace":
        """One ordered pass over the stream; see the module docstring."""
        trace = cls()
        feed = trace.feed
        for event in events:
            feed(event)
        trace.close_open()
        return trace

    def feed_batch(self, events) -> None:
        """Fold a batch of events, in order (``EventBus.publish_batch``)."""
        feed = self.feed
        for event in events:
            feed(event)

    def feed(self, event) -> None:
        """Fold one event into the span tree as it arrives."""
        open_campaign = self._open_campaign
        open_group = self._open_group
        open_alloc = self._open_alloc
        open_tasks = self._open_tasks
        pending_submits = self._pending_submits
        retries = self.retries_by_task
        backoffs = self.backoff_by_task

        self.n_events += 1
        self.last_time = max(self.last_time, event.time)
        pid, f = event.pid, event.fields
        if event.name == CAMPAIGN:
            if event.phase == BEGIN:
                span = CampaignSpan(
                    pid=pid,
                    name=f.get("campaign", "(campaign)"),
                    start=event.time,
                    tasks=f.get("tasks"),
                    group=(open_group.get(pid) or {}).get("group"),
                )
                open_campaign[pid] = span
                self.campaigns.append(span)
            elif event.phase == END and pid in open_campaign:
                span = open_campaign.pop(pid)
                span.end = event.time
                span.completed = f.get("completed")
                span.allocations = f.get("allocations")
        elif event.name == GROUP and event.phase == BEGIN:
            open_group[pid] = dict(f)
        elif event.name == GROUP and event.phase == END:
            open_group.pop(pid, None)
        elif event.name == GROUP_RESUMED:
            campaign = open_campaign.get(pid)
            if campaign is not None:
                campaign.resumed_skipped = f.get("skipped", 0)
        elif event.name == ALLOC_SUBMITTED:
            pending_submits[(pid, f.get("job"))] = event.time
        elif event.name == ALLOC:
            if event.phase == BEGIN:
                span = AllocSpan(
                    pid=pid,
                    index=f.get("alloc", len(self.allocs)),
                    job=f.get("job"),
                    nodes=tuple(f.get("nodes", ())),
                    start=event.time,
                    deadline=f.get("deadline"),
                    submitted=pending_submits.pop((pid, f.get("job")), None),
                    campaign=getattr(open_campaign.get(pid), "name", None),
                )
                open_alloc[pid] = span
                self.allocs.append(span)
            elif event.phase == END and pid in open_alloc:
                span = open_alloc.pop(pid)
                span.end = event.time
                span.reason = f.get("reason")
        elif event.name == TASK:
            key = (pid, f.get("task_id"))
            if event.phase == BEGIN:
                alloc = open_alloc.get(pid)
                span = TaskSpan(
                    pid=pid,
                    task_id=f.get("task_id"),
                    name=f.get("task", "(task)"),
                    node=f.get("node"),
                    nodes=tuple(f.get("nodes") or ((f.get("node"),) if f.get("node") is not None else ())),
                    attempt=f.get("attempt", 1),
                    start=event.time,
                    payload=dict(f.get("payload") or {}),
                    alloc=alloc.index if alloc is not None else None,
                    group=(open_group.get(pid) or {}).get("group"),
                    campaign=getattr(open_campaign.get(pid), "name", None),
                )
                open_tasks[key] = span
                self.tasks.append(span)
            elif event.phase == END and key in open_tasks:
                span = open_tasks.pop(key)
                span.end = event.time
                span.outcome = f.get("outcome")
                span.retries_granted = retries.get(key, 0)
                span.backoff = backoffs.get(key, 0.0)
        elif event.name == TASK_RETRY:
            key = (pid, f.get("task_id"))
            retries[key] = retries.get(key, 0) + 1
            backoffs[key] = backoffs.get(key, 0.0) + float(f.get("delay") or 0.0)
        elif event.name == TASK_TIMEOUT:
            span = open_tasks.get((pid, f.get("task_id")))
            if span is not None:
                span.timed_out = True
        elif event.name == TASK_FAULT_INJECTED:
            span = open_tasks.get((pid, f.get("task_id")))
            if span is not None:
                span.faults += 1
        elif event.name == TASK_REQUEUED:
            self.requeues.append(event)

    def close_open(self) -> None:
        """Close anything the stream left open at the last observed time.

        Durations stay finite and analyzable for truncated captures
        (a crashed driver, a partial recording).  Idempotent; call when
        the stream ends — further :meth:`feed` calls still work, but a
        span closed here stays closed.
        """
        for span in (
            *self._open_tasks.values(),
            *self._open_alloc.values(),
            *self._open_campaign.values(),
        ):
            if span.end is None:
                span.end = self.last_time

    # -- selection -----------------------------------------------------------

    def campaign_window(self, campaign: CampaignSpan) -> tuple[float, float]:
        """The time interval a campaign span covers."""
        end = campaign.end if campaign.end is not None else self.last_time
        return campaign.start, end

    def allocs_of(self, campaign: CampaignSpan) -> list:
        return [a for a in self.allocs if a.pid == campaign.pid and a.campaign == campaign.name]

    def tasks_of(self, campaign: CampaignSpan) -> list:
        return [t for t in self.tasks if t.pid == campaign.pid and t.campaign == campaign.name]
