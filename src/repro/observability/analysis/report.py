"""Campaign performance analytics: the queryable face of a trace.

:func:`analyze_events` turns any event stream (live capture or loaded
Chrome trace) into one :class:`CampaignReport` per campaign span found,
answering the questions the write-only trace left manual:

- **critical path** — the chain of alloc/task spans that bounds the
  campaign makespan (walked backward from the last-ending work, through
  node-occupancy predecessors, dispatch waits, queue waits, and
  resubmission gaps), with per-span slack;
- **wait-time attribution** — allocated node-seconds split into
  execution vs ramp/gap/tail idle, and wall-clock split into queue wait
  vs in-allocation time, plus summed retry backoff;
- **stragglers & retry hotspots** — attempts far beyond a robust
  median+MAD threshold of their sweep-group siblings, tasks burning the
  retry budget, nodes with outlier failure/fault counts;
- **utilization/concurrency timeline** — busy-node step function over
  the campaign window, bucketed for text rendering.

Quantiles come from :func:`repro.observability.metrics.percentile` — the
same code behind ``Histogram.summary()`` — so "p95 task duration" means
the same thing in a metrics snapshot and in a report.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

from repro.observability.analysis.spans import SpanTrace
from repro.observability.metrics import percentile

#: Version tag carried by every serialized report (see analysis.io).
REPORT_SCHEMA = "repro.observability.report/v1"

#: Consistency constant for the normal distribution: MAD * 1.4826 ~ sigma.
_MAD_SCALE = 1.4826

#: Stragglers: attempts beyond median + _STRAGGLER_K * scaled-MAD of their
#: sweep-group siblings (and at least 1.5x the median, so degenerate
#: zero-spread groups flag nothing spurious).
_STRAGGLER_K = 3.5
_STRAGGLER_MIN_RATIO = 1.5
_STRAGGLER_MIN_SIBLINGS = 4

_EPS = 1e-9


def mad(values) -> float:
    """Median absolute deviation (unscaled)."""
    med = percentile(values, 50.0)
    return percentile([abs(v - med) for v in values], 50.0)


def robust_threshold(values, k: float = _STRAGGLER_K) -> float:
    """``median + k * 1.4826 * MAD`` — outlier cut resistant to the
    outliers themselves (a mean/stddev cut is not: one 10x straggler
    inflates the stddev enough to hide itself)."""
    return percentile(values, 50.0) + k * _MAD_SCALE * mad(values)


@dataclass
class CampaignReport:
    """Analytics for one campaign span.  Every field is JSON-ready."""

    campaign: str
    pid: int = 0
    group: str | None = None
    start: float = 0.0
    end: float = 0.0
    makespan: float = 0.0
    counts: dict = field(default_factory=dict)
    durations: dict = field(default_factory=dict)
    critical_path: list = field(default_factory=list)
    critical_path_seconds: float = 0.0
    attribution: dict = field(default_factory=dict)
    stragglers: list = field(default_factory=list)
    retry_hotspots: dict = field(default_factory=dict)
    utilization: dict = field(default_factory=dict)
    allocations: list = field(default_factory=list)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignReport":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def headline(self) -> dict:
        """The compact summary the ``campaign.report`` event carries."""
        return {
            "campaign": self.campaign,
            "group": self.group,
            "makespan": self.makespan,
            "utilization": self.utilization.get("utilization"),
            "critical_path_seconds": self.critical_path_seconds,
            "stragglers": len(self.stragglers),
            "queue_wait": self.attribution.get("wall_clock", {}).get("queue_wait"),
            "tasks_done": self.counts.get("done"),
        }

    # -- rendering -----------------------------------------------------------

    def to_text(self) -> str:
        c, u = self.counts, self.utilization
        lines = [
            f"== campaign report: {self.campaign}"
            + (f" / {self.group}" if self.group else "")
            + f" (pid {self.pid}) ==",
            f"makespan {self.makespan:.0f}s over {c.get('allocations', 0)} "
            f"allocation(s); {c.get('attempts', 0)} attempts / "
            f"{c.get('unique_tasks', 0)} tasks "
            f"({c.get('done', 0)} done, {c.get('failed', 0)} failed, "
            f"{c.get('killed', 0)} killed"
            + (f", {c.get('resumed_skipped', 0)} skipped by resume" if c.get("resumed_skipped") else "")
            + ")",
        ]
        if u:
            lines.append(
                f"utilization {u['utilization']:.1%} "
                f"(mean {u['mean_concurrency']:.1f} / peak {u['peak_concurrency']:.0f} busy nodes)"
            )
        d = self.durations
        if d.get("p50") is not None:
            lines.append(
                f"task durations: p50 {d['p50']:.0f}s  p95 {d['p95']:.0f}s  "
                f"p99 {d['p99']:.0f}s  max {d['max']:.0f}s"
            )
        lines.append("")
        lines.append(
            f"-- critical path ({len(self.critical_path)} spans, "
            f"{self.critical_path_seconds:.0f}s = "
            + (
                f"{self.critical_path_seconds / self.makespan:.1%} of makespan)"
                if self.makespan > 0
                else "n/a)"
            )
            + " --"
        )
        for el in self.critical_path:
            where = f"  node {el['node']}" if el.get("node") is not None else ""
            slack = f"  slack {el['slack']:.0f}s" if el.get("slack") is not None else ""
            lines.append(
                f"  {el['kind']:<14}{el['duration']:>9.0f}s  {el['label']}{where}{slack}"
            )
        a = self.attribution
        if a:
            ns, wc = a["node_seconds"], a["wall_clock"]
            lines.append("")
            lines.append("-- wait-time attribution --")
            cap = ns.get("capacity") or 0.0
            pct = (lambda v: f" ({v / cap:.1%})") if cap > 0 else (lambda v: "")
            lines.append(f"  allocated capacity {cap:.0f} node-s:")
            for key in ("execution", "idle_ramp", "idle_gaps", "idle_tail"):
                lines.append(f"    {key:<12}{ns[key]:>12.0f} node-s{pct(ns[key])}")
            lines.append(
                f"  wall clock: queue wait {wc['queue_wait']:.0f}s, "
                f"in allocation {wc['in_allocation']:.0f}s, "
                f"resubmit gaps {wc['resubmit_gaps']:.0f}s"
            )
            lines.append(f"  retry backoff (summed per task): {a['retry_backoff']:.0f}s")
        lines.append("")
        if self.stragglers:
            lines.append(f"-- stragglers ({len(self.stragglers)}) --")
            for s in self.stragglers:
                lines.append(
                    f"  {s['task']:<28}{s['duration']:>9.0f}s  "
                    f"{s['ratio']:.1f}x group median  node {s['node']}"
                )
        else:
            lines.append("-- stragglers: none --")
        hot = self.retry_hotspots
        if hot.get("tasks") or hot.get("nodes"):
            lines.append("-- retry hotspots --")
            for t in hot.get("tasks", []):
                lines.append(
                    f"  task {t['task']:<24}{t['retries']} retries, "
                    f"backoff {t['backoff']:.0f}s"
                )
            for n in hot.get("nodes", []):
                lines.append(
                    f"  node {n['node']:<4} {n['failed']} failed attempts, "
                    f"{n['faults']} faults injected"
                )
        else:
            lines.append("-- retry hotspots: none --")
        timeline = u.get("timeline") or []
        if timeline:
            peak = max((b["busy"] for b in timeline), default=0.0) or 1.0
            lines.append("")
            lines.append("-- concurrency timeline (mean busy nodes per bucket) --")
            for b in timeline:
                bar = "#" * int(round(24 * b["busy"] / peak))
                lines.append(
                    f"  {b['start']:>8.0f}-{b['end']:<8.0f} {bar:<24} {b['busy']:.1f}"
                )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# analysis passes


def _busy_intervals_by_node(tasks):
    """node -> sorted [(start, end, task)] occupancy from task spans."""
    by_node: dict = {}
    for t in tasks:
        for node in t.nodes or ((t.node,) if t.node is not None else ()):
            by_node.setdefault(node, []).append(t)
    for spans in by_node.values():
        spans.sort(key=lambda t: (t.start, t.end))
    return by_node


def _slack_by_task(tasks, window_end: float) -> dict:
    """Task -> seconds it could slip before extending the makespan.

    In this greedy schedule, delaying a task pushes every later task on
    its node(s); the absorbable delay is the summed idle gaps behind it
    on the node plus the node's tail gap to the campaign end.  A
    multi-node task takes the tightest of its nodes.
    """
    by_node = _busy_intervals_by_node(tasks)
    node_slack: dict = {}  # (node, task id) -> slack
    for node, spans in by_node.items():
        tail = max(0.0, window_end - spans[-1].end)
        # Walk backward accumulating the gaps behind each task.
        acc = tail
        for i in range(len(spans) - 1, -1, -1):
            node_slack[(node, id(spans[i]))] = acc
            if i > 0:
                acc += max(0.0, spans[i].start - spans[i - 1].end)
    slack = {}
    for t in tasks:
        keys = [(n, id(t)) for n in (t.nodes or ((t.node,) if t.node is not None else ()))]
        vals = [node_slack[k] for k in keys if k in node_slack]
        slack[id(t)] = min(vals) if vals else max(0.0, window_end - t.end)
    return slack


def _critical_path(tasks, allocs, window, slack):
    """Backward walk from the last-ending work to the campaign start."""
    start, _end = window
    elements: list[dict] = []

    def span_el(kind, label, t0, t1, node=None, el_slack=None):
        elements.append(
            {
                "kind": kind,
                "label": label,
                "start": t0,
                "end": t1,
                "duration": max(0.0, t1 - t0),
                "node": node,
                "slack": el_slack,
            }
        )

    alloc_by_index = {a.index: a for a in allocs}
    visited: set[int] = set()

    def node_pred(cur):
        cur_nodes = set(cur.nodes or ((cur.node,) if cur.node is not None else ()))
        best = None
        for t in tasks:
            if t is cur or id(t) in visited or t.end > cur.start + _EPS:
                continue
            t_nodes = set(t.nodes or ((t.node,) if t.node is not None else ()))
            if not (cur_nodes & t_nodes):
                continue
            if best is None or t.end > best.end:
                best = t
        return best

    def any_pred(before: float):
        best = None
        for t in tasks:
            if id(t) in visited or t.end > before + _EPS:
                continue
            if best is None or t.end > best.end:
                best = t
        return best

    cur = max(tasks, key=lambda t: t.end) if tasks else None
    if cur is None and allocs:
        # A campaign that granted allocations but launched nothing:
        # the path is just the first allocation's queue wait.
        alloc = max(allocs, key=lambda a: a.end or a.start)
        if alloc.queue_wait > _EPS:
            span_el("queue-wait", f"job {alloc.job}", alloc.submitted, alloc.start)
        elements.reverse()
        return elements

    while cur is not None:
        visited.add(id(cur))
        span_el(
            "task",
            f"{cur.name} (attempt {cur.attempt}, {cur.outcome or 'open'})",
            cur.start,
            cur.end,
            node=cur.node,
            el_slack=slack.get(id(cur)),
        )
        pred = node_pred(cur)
        if pred is not None:
            gap = cur.start - pred.end
            if gap > _EPS:
                kind = "retry-backoff" if cur.attempt > 1 else "node-wait"
                span_el(kind, f"before {cur.name}", pred.end, cur.start, node=cur.node)
            cur = pred
            continue
        # First task on its node(s): the allocation grant precedes it.
        alloc = alloc_by_index.get(cur.alloc)
        if alloc is None:
            break
        if cur.start - alloc.start > _EPS:
            span_el("dispatch-wait", f"in job {alloc.job}", alloc.start, cur.start, node=cur.node)
        if alloc.queue_wait > _EPS:
            span_el("queue-wait", f"job {alloc.job}", alloc.submitted, alloc.start)
        submit = alloc.submitted if alloc.submitted is not None else alloc.start
        pred = any_pred(submit)
        if pred is None:
            if submit - start > _EPS:
                span_el("campaign-lead", "before first submission", start, submit)
            break
        gap = submit - pred.end
        if gap > _EPS:
            span_el("resubmit-gap", f"before job {alloc.job}", pred.end, submit)
        cur = pred

    elements.reverse()
    return elements


def _attribution(tasks, allocs, window, retry_backoff: float = 0.0):
    """Node-seconds + wall-clock split; see the module docstring."""
    start, end = window
    capacity = 0.0
    idle_ramp = idle_gaps = idle_tail = 0.0
    execution = sum(t.duration * max(1, len(t.nodes) or 1) for t in tasks)
    by_node = _busy_intervals_by_node(tasks)
    for alloc in allocs:
        alloc_end = alloc.end if alloc.end is not None else end
        width = len(alloc.nodes) or 1
        capacity += max(0.0, alloc_end - alloc.start) * width
        for node in alloc.nodes or range(width):
            spans = [
                t
                for t in by_node.get(node, ())
                if t.alloc == alloc.index and t.end > alloc.start - _EPS
            ]
            if not spans:
                idle_tail += max(0.0, alloc_end - alloc.start)
                continue
            idle_ramp += max(0.0, spans[0].start - alloc.start)
            for a, b in zip(spans, spans[1:]):
                idle_gaps += max(0.0, b.start - a.end)
            idle_tail += max(0.0, alloc_end - spans[-1].end)
    queue_wait = sum(a.queue_wait for a in allocs)
    in_allocation = sum(
        max(0.0, (a.end if a.end is not None else end) - a.start) for a in allocs
    )
    resubmit_gaps = max(0.0, (end - start) - queue_wait - in_allocation)
    return {
        "node_seconds": {
            "capacity": capacity,
            "execution": execution,
            "idle_ramp": idle_ramp,
            "idle_gaps": idle_gaps,
            "idle_tail": idle_tail,
        },
        "wall_clock": {
            "queue_wait": queue_wait,
            "in_allocation": in_allocation,
            "resubmit_gaps": resubmit_gaps,
        },
        "retry_backoff": retry_backoff,
        "per_node": _per_node(tasks),
        "per_group": _per_group(tasks),
    }


def _per_node(tasks) -> dict:
    out: dict = {}
    for t in tasks:
        for node in t.nodes or ((t.node,) if t.node is not None else ()):
            row = out.setdefault(
                str(node), {"busy": 0.0, "attempts": 0, "failed": 0, "faults": 0}
            )
            row["busy"] += t.duration
            row["attempts"] += 1
            if t.outcome not in ("done", None):
                row["failed"] += 1
            row["faults"] += t.faults
    return out


def _group_of(task) -> str:
    return task.group or "(ungrouped)"


def _per_group(tasks) -> dict:
    groups: dict = {}
    for t in tasks:
        groups.setdefault(_group_of(t), []).append(t)
    out = {}
    for name, members in sorted(groups.items()):
        done = [t.duration for t in members if t.outcome == "done"]
        row = {
            "attempts": len(members),
            "unique_tasks": len({t.name for t in members}),
            "execution": sum(t.duration for t in members),
        }
        if done:
            row.update(
                p50=percentile(done, 50.0),
                p95=percentile(done, 95.0),
                p99=percentile(done, 99.0),
            )
        out[name] = row
    return out


def _stragglers(tasks) -> list:
    """Done attempts far beyond their sweep-group siblings (median+MAD)."""
    groups: dict = {}
    for t in tasks:
        if t.outcome == "done":
            groups.setdefault(_group_of(t), []).append(t)
    flagged = []
    for name, members in sorted(groups.items()):
        if len(members) < _STRAGGLER_MIN_SIBLINGS:
            continue
        durations = [t.duration for t in members]
        median = percentile(durations, 50.0)
        if median <= 0:
            continue
        cut = max(robust_threshold(durations), _STRAGGLER_MIN_RATIO * median)
        for t in members:
            if t.duration > cut:
                flagged.append(
                    {
                        "task": t.name,
                        "group": name,
                        "node": t.node,
                        "duration": t.duration,
                        "ratio": t.duration / median,
                        "threshold": cut,
                    }
                )
    flagged.sort(key=lambda s: -s["duration"])
    return flagged


def _retry_hotspots(tasks, trace: SpanTrace, pid: int) -> dict:
    task_names = {}  # task_id -> name (last attempt wins; names are stable)
    for t in tasks:
        task_names[t.task_id] = t.name
    hot_tasks = []
    for (p, task_id), retries in sorted(trace.retries_by_task.items()):
        if p != pid or task_id not in task_names or retries < 2:
            continue
        hot_tasks.append(
            {
                "task": task_names[task_id],
                "retries": retries,
                "backoff": trace.backoff_by_task.get((p, task_id), 0.0),
            }
        )
    hot_tasks.sort(key=lambda t: (-t["retries"], t["task"]))

    per_node = _per_node(tasks)
    counts = {node: row["failed"] + row["faults"] for node, row in per_node.items()}
    hot_nodes = []
    if counts:
        cut = max(robust_threshold(list(counts.values())), 3.0)
        for node, count in sorted(counts.items(), key=lambda kv: -kv[1]):
            if count > cut:
                row = per_node[node]
                hot_nodes.append(
                    {"node": node, "failed": row["failed"], "faults": row["faults"]}
                )
    return {"tasks": hot_tasks[:15], "nodes": hot_nodes}


def _utilization(tasks, allocs, window, buckets: int = 16) -> dict:
    start, end = window
    if end - start <= _EPS:
        return {
            "utilization": 0.0,
            "mean_concurrency": 0.0,
            "peak_concurrency": 0,
            "busy_node_seconds": 0.0,
            "capacity_node_seconds": 0.0,
            "timeline": [],
        }
    deltas: dict[float, float] = {}
    for t in tasks:
        width = max(1, len(t.nodes) or 1)
        deltas[t.start] = deltas.get(t.start, 0.0) + width
        deltas[t.end] = deltas.get(t.end, 0.0) - width
    times = sorted(deltas)
    # Integrate the step function into fixed buckets.
    busy_seconds = 0.0
    peak = 0.0
    bucket_width = (end - start) / buckets
    bucket_busy = [0.0] * buckets

    def integrate(lo: float, hi: float, level: float) -> float:
        nonlocal peak
        contribution = level * (hi - lo)
        peak = max(peak, level)
        b0 = min(buckets - 1, int((lo - start) / bucket_width))
        b1 = min(buckets - 1, int((hi - start - _EPS) / bucket_width))
        for b in range(b0, b1 + 1):
            seg_lo = max(lo, start + b * bucket_width)
            seg_hi = min(hi, start + (b + 1) * bucket_width)
            if seg_hi > seg_lo:
                bucket_busy[b] += level * (seg_hi - seg_lo)
        return contribution

    level = 0.0
    prev = start
    for time in times:
        clamped = min(max(time, start), end)
        if clamped > prev:
            busy_seconds += integrate(prev, clamped, level)
            prev = clamped
        level += deltas[time]
    if end > prev:
        busy_seconds += integrate(prev, end, level)
    capacity = sum(
        max(0.0, ((a.end if a.end is not None else end) - a.start)) * (len(a.nodes) or 1)
        for a in allocs
    )
    return {
        "utilization": busy_seconds / capacity if capacity > 0 else 0.0,
        "mean_concurrency": busy_seconds / (end - start),
        "peak_concurrency": peak,
        "busy_node_seconds": busy_seconds,
        "capacity_node_seconds": capacity,
        "timeline": [
            {
                "start": start + b * bucket_width,
                "end": start + (b + 1) * bucket_width,
                "busy": bucket_busy[b] / bucket_width,
            }
            for b in range(buckets)
        ],
    }


# ---------------------------------------------------------------------------
# entry points


def report_for_campaign(trace: SpanTrace, campaign) -> CampaignReport:
    """Build the full report for one reconstructed campaign span."""
    window = trace.campaign_window(campaign)
    tasks = trace.tasks_of(campaign)
    allocs = trace.allocs_of(campaign)
    done = [t.duration for t in tasks if t.outcome == "done"]
    slack = _slack_by_task(tasks, window[1])
    critical_path = _critical_path(tasks, allocs, window, slack)
    task_ids = {t.task_id for t in tasks}
    retry_backoff = sum(
        seconds
        for (pid, task_id), seconds in trace.backoff_by_task.items()
        if pid == campaign.pid and task_id in task_ids
    )
    counts = {
        "attempts": len(tasks),
        "unique_tasks": len({t.task_id for t in tasks}),
        "done": sum(1 for t in tasks if t.outcome == "done"),
        "failed": sum(1 for t in tasks if t.outcome == "failed"),
        "killed": sum(1 for t in tasks if t.outcome == "killed"),
        "allocations": len(allocs),
        "resumed_skipped": campaign.resumed_skipped,
    }
    durations: dict = {"count": len(done)}
    if done:
        durations.update(
            p50=percentile(done, 50.0),
            p95=percentile(done, 95.0),
            p99=percentile(done, 99.0),
            mean=sum(done) / len(done),
            max=max(done),
        )
    else:
        durations.update(p50=None, p95=None, p99=None, mean=None, max=None)
    return CampaignReport(
        campaign=campaign.name,
        pid=campaign.pid,
        group=campaign.group,
        start=window[0],
        end=window[1],
        makespan=window[1] - window[0],
        counts=counts,
        durations=durations,
        critical_path=critical_path,
        critical_path_seconds=sum(el["duration"] for el in critical_path),
        attribution=_attribution(tasks, allocs, window, retry_backoff),
        stragglers=_stragglers(tasks),
        retry_hotspots=_retry_hotspots(tasks, trace, campaign.pid),
        utilization=_utilization(tasks, allocs, window),
        allocations=[
            {
                "job": a.job,
                "start": a.start,
                "end": a.end,
                "queue_wait": a.queue_wait,
                "nodes": len(a.nodes),
                "reason": a.reason,
            }
            for a in allocs
        ],
    )


def analyze_events(events) -> list[CampaignReport]:
    """One report per campaign span found in the stream, in trace order."""
    trace = SpanTrace.from_events(events)
    return [report_for_campaign(trace, campaign) for campaign in trace.campaigns]
