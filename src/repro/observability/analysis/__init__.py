"""repro.observability.analysis — trace analytics over the event stream.

PR 1 taught every layer to *emit* structured events; this package reads
them back out: span-tree reconstruction (:mod:`.spans`), the campaign
performance report — critical path, wait-time attribution, stragglers,
retry hotspots, utilization timeline — (:mod:`.report`), baseline/candidate
diffing with a CI regression gate (:mod:`.diff`), the report file
format (:mod:`.io`), and the streaming builder that folds a live stream
into the same reports without buffering it (:mod:`.streaming`).

Entry points:

- ``analyze_events(recorder.events)`` — reports for a live capture;
- ``StreamingCampaignReport().attach(bus)`` — the same reports folded
  incrementally off the live bus (O(1) memory per event, mid-run
  ``progress()`` snapshots), no event buffer;
- ``analyze_events(events_from_trace("fig6.trace.json"))`` — the same for
  a saved Chrome trace;
- ``python -m repro.observability report <trace.json>`` /
  ``... diff <baseline> <candidate> --fail-on-regression <pct>`` — the CLI;
- ``savanna`` drive with ``report=True`` — a live analyzer that emits a
  ``campaign.report`` event and writes ``report.json`` into the campaign
  directory.

The report schema and CLI are documented in ``docs/observability.md``
("Reading traces back").
"""

from repro.observability.analysis.diff import CampaignDiff, ReportDiff, diff_reports
from repro.observability.analysis.io import load_reports, reports_to_dict, write_reports
from repro.observability.analysis.report import (
    REPORT_SCHEMA,
    CampaignReport,
    analyze_events,
    mad,
    report_for_campaign,
    robust_threshold,
)
from repro.observability.analysis.spans import AllocSpan, CampaignSpan, SpanTrace, TaskSpan
from repro.observability.analysis.streaming import StreamingCampaignReport

__all__ = [
    "REPORT_SCHEMA",
    "AllocSpan",
    "CampaignDiff",
    "CampaignReport",
    "CampaignSpan",
    "ReportDiff",
    "SpanTrace",
    "StreamingCampaignReport",
    "TaskSpan",
    "analyze_events",
    "diff_reports",
    "load_reports",
    "mad",
    "report_for_campaign",
    "reports_to_dict",
    "robust_threshold",
    "write_reports",
]
