"""Report diffing: did this change regress the campaign?

Two report sets (each from :func:`~repro.observability.analysis.report.analyze_events`
or loaded from disk) are matched campaign-by-campaign and compared on
the metrics that matter for the paper's figures: makespan, utilization,
queue wait, p95 task duration, critical-path length.  The **gate** is
makespan: ``python -m repro.observability diff A B --fail-on-regression 10``
exits non-zero when any matched campaign's makespan grew more than 10%
over baseline (or a baseline campaign disappeared) — a CI job can hold
the line on the ROADMAP's "every PR makes hot paths measurably faster".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.analysis.report import CampaignReport

#: (label, extractor, higher_is_better) rows rendered per campaign.
_METRICS = (
    ("makespan", lambda r: r.makespan, False),
    ("utilization", lambda r: r.utilization.get("utilization"), True),
    ("queue_wait", lambda r: r.attribution.get("wall_clock", {}).get("queue_wait"), False),
    ("retry_backoff", lambda r: r.attribution.get("retry_backoff"), False),
    ("p95_task_duration", lambda r: r.durations.get("p95"), False),
    ("critical_path", lambda r: r.critical_path_seconds, False),
    ("tasks_done", lambda r: r.counts.get("done"), True),
    ("stragglers", lambda r: len(r.stragglers), False),
)


@dataclass
class CampaignDiff:
    """One matched campaign's metric deltas."""

    campaign: str
    rows: list = field(default_factory=list)  # {metric, baseline, candidate, delta, pct}
    makespan_pct: float | None = None

    def regressed(self, threshold_pct: float) -> bool:
        return self.makespan_pct is not None and self.makespan_pct > threshold_pct


@dataclass
class ReportDiff:
    """Baseline vs candidate across every matched campaign."""

    diffs: list = field(default_factory=list)  # list[CampaignDiff]
    missing: list = field(default_factory=list)  # baseline campaigns not in candidate
    added: list = field(default_factory=list)  # candidate campaigns not in baseline

    def regressions(self, threshold_pct: float) -> list[str]:
        """Human-readable regression lines; empty means the gate passes."""
        problems = [
            f"{d.campaign}: makespan +{d.makespan_pct:.1f}% over baseline "
            f"(threshold {threshold_pct:g}%)"
            for d in self.diffs
            if d.regressed(threshold_pct)
        ]
        problems.extend(
            f"{name}: present in baseline but missing from candidate" for name in self.missing
        )
        return problems

    def to_dict(self) -> dict:
        return {
            "campaigns": [
                {
                    "campaign": d.campaign,
                    "makespan_pct": d.makespan_pct,
                    "metrics": d.rows,
                }
                for d in self.diffs
            ],
            "missing": self.missing,
            "added": self.added,
        }

    def to_text(self) -> str:
        lines = []
        for d in self.diffs:
            lines.append(f"== diff: {d.campaign} ==")
            header = f"{'metric':<20}{'baseline':>14}{'candidate':>14}{'delta':>12}{'pct':>9}"
            lines.append(header)
            lines.append("-" * len(header))
            for row in d.rows:
                base, cand = row["baseline"], row["candidate"]
                fmt = lambda v: "n/a" if v is None else (f"{v:.4g}")
                pct = "" if row["pct"] is None else f"{row['pct']:+.1f}%"
                delta = "" if row["delta"] is None else f"{row['delta']:+.4g}"
                marker = "  <-- regression" if row.get("regression") else ""
                lines.append(
                    f"{row['metric']:<20}{fmt(base):>14}{fmt(cand):>14}"
                    f"{delta:>12}{pct:>9}{marker}"
                )
            lines.append("")
        for name in self.missing:
            lines.append(f"!! {name}: in baseline, missing from candidate")
        for name in self.added:
            lines.append(f"++ {name}: new in candidate (no baseline)")
        return "\n".join(lines).rstrip()


def _labels(reports) -> list[str]:
    """Stable per-report labels: campaign name, disambiguated by order."""
    seen: dict[str, int] = {}
    labels = []
    for r in reports:
        base = r.campaign if r.group is None else f"{r.campaign}/{r.group}"
        n = seen.get(base, 0)
        seen[base] = n + 1
        labels.append(base if n == 0 else f"{base}#{n}")
    return labels


def diff_reports(baseline, candidate) -> ReportDiff:
    """Match report lists by campaign label and compute metric deltas.

    ``baseline``/``candidate`` are lists of :class:`CampaignReport` (or
    dicts, which are upgraded).  Matching is by campaign (+ group) name;
    duplicate names pair up in order, so a two-executor comparison trace
    (Figure 6 runs both) diffs each executor against its counterpart.
    """
    baseline = [r if isinstance(r, CampaignReport) else CampaignReport.from_dict(r) for r in baseline]
    candidate = [r if isinstance(r, CampaignReport) else CampaignReport.from_dict(r) for r in candidate]
    base_by_label = dict(zip(_labels(baseline), baseline))
    cand_by_label = dict(zip(_labels(candidate), candidate))

    out = ReportDiff()
    out.missing = [label for label in base_by_label if label not in cand_by_label]
    out.added = [label for label in cand_by_label if label not in base_by_label]
    for label, base in base_by_label.items():
        cand = cand_by_label.get(label)
        if cand is None:
            continue
        diff = CampaignDiff(campaign=label)
        for metric, extract, higher_is_better in _METRICS:
            b, c = extract(base), extract(cand)
            delta = (c - b) if (b is not None and c is not None) else None
            pct = (100.0 * delta / b) if (delta is not None and b) else None
            worse = (
                delta is not None
                and delta != 0
                and (delta < 0 if higher_is_better else delta > 0)
            )
            diff.rows.append(
                {
                    "metric": metric,
                    "baseline": b,
                    "candidate": c,
                    "delta": delta,
                    "pct": pct,
                    "regression": worse,
                }
            )
            if metric == "makespan":
                diff.makespan_pct = pct
        out.diffs.append(diff)
    return out
