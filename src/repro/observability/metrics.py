"""Counters, gauges, and histograms — the metrics half of observability.

A :class:`MetricsRegistry` is a named bag of instruments with
get-or-create semantics (``registry.counter("tasks.done").inc()``), and a
``snapshot()`` that renders everything into one JSON-serializable dict.
Instruments are deliberately minimal — no labels, no time series — which
is exactly enough to answer "did the run do what the trace says it did"
and to diff two runs in a test.  Anything fancier belongs in a subscriber
that consumes the event stream directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from zlib import crc32


def percentile(values, q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    ``q`` is in [0, 100].  This is the one quantile implementation the
    observability layer owns: :meth:`Histogram.quantile` and the trace
    analyzer's straggler thresholds
    (:mod:`repro.observability.analysis.report`) both call it, so a test
    pinning its interpolation rule pins every consumer.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    data = sorted(values)
    if not data:
        raise ValueError("percentile of an empty sequence")
    if len(data) == 1:
        return float(data[0])
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r}: inc must be >= 0, got {n}")
        self.value += n


@dataclass
class GaugeMetric:
    """A settable level with peak tracking (e.g. busy-node count).

    Named ``GaugeMetric`` to stay unambiguous next to the paper's
    reusability :class:`~repro.gauges.levels.Gauge`.
    """

    name: str
    value: float = 0.0
    peak: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        self.peak = max(self.peak, value)

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


@dataclass
class Histogram:
    """Streaming summary of observed values, with quantiles.

    The running count/sum/min/max are exact.  Quantiles come from a
    bounded **seeded reservoir** (Vitter's algorithm R): the first
    ``max_samples`` observations are kept verbatim, after which each new
    observation replaces a uniformly-chosen retained one with probability
    ``max_samples / count`` — so a histogram inside a long-lived service
    (the live telemetry plane feeds one per tenant, forever) stays at a
    fixed memory bound while the retained set remains a uniform sample of
    *everything* observed, not just the first window.  Replacement draws
    come from a private :class:`random.Random` seeded from ``seed`` and
    ``name`` alone (no process entropy), so ``summary()`` is
    deterministic for a given observation sequence and seed — tests can
    pin quantiles, and two replicas fed the same stream agree.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))
    max_samples: int = 4096
    seed: int = 0
    samples: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.max_samples < 1:
            raise ValueError(
                f"histogram {self.name!r}: max_samples must be >= 1, "
                f"got {self.max_samples}"
            )
        # crc32, not hash(): str hashing is per-process randomized.
        self._rng = random.Random(crc32(f"{self.seed}:{self.name}".encode()))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if len(self.samples) < self.max_samples:
            self.samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.max_samples:
                self.samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the retained observations."""
        return percentile(self.samples, q)

    def summary(self) -> dict:
        if not self.count:
            return {
                "count": 0, "sum": 0.0, "min": None, "max": None, "mean": None,
                "p50": None, "p95": None, "p99": None,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(50.0),
            "p95": self.quantile(95.0),
            "p99": self.quantile(99.0),
        }


class MetricsRegistry:
    """Named instruments with get-or-create lookup.

    Example
    -------
    >>> reg = MetricsRegistry()
    >>> reg.counter("tasks.done").inc(3)
    >>> reg.snapshot()["counters"]["tasks.done"]
    3
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, GaugeMetric] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> GaugeMetric:
        return self._gauges.setdefault(name, GaugeMetric(name))

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram(name))

    def snapshot(self) -> dict:
        """One JSON-serializable view of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                n: {"value": g.value, "peak": g.peak}
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }
