"""repro.observability — event bus, span tracing, metrics, trace export.

The runtime emits its own record of "what ran, where, and why": every
execution layer (cluster scheduler and nodes, Savanna executors, the
multi-allocation campaign loop, the campaign driver) publishes structured
events onto an :class:`EventBus`; a :class:`TraceRecorder` turns any run
into a Chrome ``trace_event`` JSON plus a metrics snapshot; and
:mod:`repro.observability.provenance` folds the stream back into the
paper's Software Provenance gauge.

Entry points:

- ``cluster.bus`` — every :class:`~repro.cluster.cluster.SimulatedCluster`
  owns a bus clocked by its simulator;
- ``TraceRecorder().attach(cluster.bus)`` — capture one machine;
- ``with TraceRecorder().recording(): ...`` — capture every machine
  created inside the block (how ``python -m repro.experiments --trace``
  works);
- ``python -m repro.experiments --figure 6 --trace fig6.json`` — capture
  a figure reproduction from the command line;
- ``events_from_trace("fig6.json")`` — read a saved trace back into a
  validated event stream, and :mod:`repro.observability.analysis` — turn
  it into a :class:`~repro.observability.analysis.CampaignReport`
  (critical path, wait-time attribution, stragglers, utilization);
- ``python -m repro.observability report <trace.json>`` / ``... diff`` —
  the same analytics from the command line, with a CI regression gate;
- :mod:`repro.observability.live` — the *live* telemetry plane for a
  running :class:`~repro.savanna.service.CampaignService`: Prometheus
  ``/metrics`` + JSON ``/status`` exposition, JSON-lines structured
  logs, worker resource profiling, and ``python -m repro.observability
  top`` (contract in ``docs/telemetry.md``).

The full events contract lives in ``docs/observability.md``.
"""

from repro.observability.bus import EventBus, SubscriberError, subscribe_all
from repro.observability.events import (
    ALLOC,
    ALLOC_SUBMITTED,
    BEGIN,
    CAMPAIGN,
    CAMPAIGN_COMPOSED,
    CAMPAIGN_INTERRUPTED,
    CAMPAIGN_LINTED,
    CAMPAIGN_REPORT,
    END,
    GROUP,
    GROUP_RESUMED,
    INSTANT,
    NODE_BUSY,
    NODE_IDLE,
    SERVICE_CANCELLED,
    SERVICE_FINISHED,
    SERVICE_SATURATED,
    SERVICE_STARTED,
    SERVICE_SUBMITTED,
    TASK,
    TASK_FAULT_INJECTED,
    TASK_REQUEUED,
    TASK_RETRY,
    TASK_TIMEOUT,
    WORKER_SAMPLE,
    Event,
    new_trace_id,
    span_key,
    validate_event_stream,
)
from repro.observability.live import (
    JsonLogSubscriber,
    TelemetrySampler,
    TelemetryServer,
    WorkerResourceProfiler,
)
from repro.observability.metrics import (
    Counter,
    GaugeMetric,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.observability.provenance import (
    campaign_names,
    observed_provenance_tier,
    observed_software_metadata,
    provenance_store_from_trace,
    task_attempts,
)
from repro.observability.recorder import TraceRecorder, events_from_trace

__all__ = [
    "Event",
    "EventBus",
    "SubscriberError",
    "subscribe_all",
    "span_key",
    "validate_event_stream",
    "BEGIN",
    "END",
    "INSTANT",
    "CAMPAIGN",
    "CAMPAIGN_COMPOSED",
    "CAMPAIGN_INTERRUPTED",
    "CAMPAIGN_LINTED",
    "CAMPAIGN_REPORT",
    "GROUP",
    "GROUP_RESUMED",
    "SERVICE_SUBMITTED",
    "SERVICE_STARTED",
    "SERVICE_FINISHED",
    "SERVICE_CANCELLED",
    "SERVICE_SATURATED",
    "ALLOC",
    "ALLOC_SUBMITTED",
    "TASK",
    "TASK_REQUEUED",
    "TASK_RETRY",
    "TASK_TIMEOUT",
    "TASK_FAULT_INJECTED",
    "NODE_BUSY",
    "NODE_IDLE",
    "WORKER_SAMPLE",
    "new_trace_id",
    "TelemetrySampler",
    "TelemetryServer",
    "JsonLogSubscriber",
    "WorkerResourceProfiler",
    "Counter",
    "GaugeMetric",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    "TraceRecorder",
    "events_from_trace",
    "task_attempts",
    "campaign_names",
    "provenance_store_from_trace",
    "observed_provenance_tier",
    "observed_software_metadata",
]
