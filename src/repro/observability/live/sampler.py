"""Live running aggregates over the service monitoring bus.

:class:`TelemetrySampler` is the stateful heart of the live telemetry
plane: it subscribes to a :class:`~repro.savanna.service.CampaignService`
monitoring bus (or any bus carrying the same taxonomy) and folds every
event into O(1) running aggregates, maintained **per tenant** and **per
backend**:

- queue depth and active/finished/failed/cancelled submission counts;
- fair-share service counts (``started`` — how often each tenant has
  been picked);
- queue-wait and end-to-end latency distributions, each a seeded
  bounded-reservoir :class:`~repro.observability.metrics.Histogram`
  (memory stays flat no matter how long the service lives);
- task outcomes, retry/timeout/fault counters;
- worker-pool saturation (running submissions vs. the service's
  ``max_workers`` capacity) and the latest ``worker.sample`` resource
  reading per pool worker.

Unlike the post-hoc analyzers in :mod:`repro.observability.analysis`,
nothing here buffers events: each observation is folded and dropped, so
an operator can ask a *running* service "what is queue depth, which
tenant is starved, which worker is pinning a core" at any moment via
:meth:`status` / :meth:`tenant_status` / :meth:`prometheus` — the three
views the :class:`~repro.observability.live.TelemetryServer` exposes
over HTTP.

Counter algebra (the reconciliation contract, property-tested under
randomized interleavings in ``tests/test_telemetry_churn.py``)::

    submitted == queued + started + cancelled_queued
    started   == active + finished + failed + cancelled_running

Thread safety: folding and reading are serialized by one internal lock,
so the HTTP server (its own thread) can snapshot while the service's
worker threads emit.
"""

from __future__ import annotations

import threading
import time

from repro.observability.events import (
    BEGIN,
    END,
    SERVICE_CANCELLED,
    SERVICE_FINISHED,
    SERVICE_SATURATED,
    SERVICE_STARTED,
    SERVICE_SUBMITTED,
    TASK,
    TASK_FAULT_INJECTED,
    TASK_RETRY,
    TASK_TIMEOUT,
    WORKER_SAMPLE,
)
from repro.observability.metrics import Histogram

#: ``status()`` document schema identifier (also served at ``/status``).
STATUS_SCHEMA = "repro.telemetry.status/v1"

#: Reservoir bound for the per-scope latency histograms.
DEFAULT_RESERVOIR = 4096


class _ScopeStats:
    """Running aggregates for one scope (a tenant, or a backend)."""

    __slots__ = (
        "submitted", "started", "finished", "failed",
        "cancelled_queued", "cancelled_running", "queued", "active",
        "tasks_done", "tasks_failed", "retries", "timeouts", "faults",
        "queue_wait", "latency",
    )

    def __init__(self, label: str, reservoir: int):
        self.submitted = 0
        self.started = 0  # == fair-share "served" count for a tenant
        self.finished = 0
        self.failed = 0
        self.cancelled_queued = 0
        self.cancelled_running = 0
        self.queued = 0
        self.active = 0
        self.tasks_done = 0
        self.tasks_failed = 0
        self.retries = 0
        self.timeouts = 0
        self.faults = 0
        self.queue_wait = Histogram(f"{label}.queue_wait", max_samples=reservoir)
        self.latency = Histogram(f"{label}.latency", max_samples=reservoir)

    @property
    def cancelled(self) -> int:
        return self.cancelled_queued + self.cancelled_running

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "queued": self.queued,
            "active": self.active,
            "started": self.started,
            "finished": self.finished,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "cancelled_queued": self.cancelled_queued,
            "cancelled_running": self.cancelled_running,
            "tasks_done": self.tasks_done,
            "tasks_failed": self.tasks_failed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "faults": self.faults,
            "queue_wait": self.queue_wait.summary(),
            "latency": self.latency.summary(),
        }


class TelemetrySampler:
    """Fold monitoring-bus events into live per-tenant/per-backend state.

    Parameters
    ----------
    capacity:
        The service's ``max_workers`` (optional) — lets
        :meth:`status` report worker-pool saturation as
        ``active / capacity``.
    reservoir:
        Bound on retained latency samples per histogram (see
        :class:`~repro.observability.metrics.Histogram`).

    Example
    -------
    >>> from repro.observability import EventBus
    >>> bus = EventBus()
    >>> sampler = TelemetrySampler().attach(bus)
    >>> _ = bus.emit("service.submitted", submission="s0", tenant="lab",
    ...              backend="local-threads")
    >>> sampler.status()["tenants"]["lab"]["queued"]
    1
    """

    def __init__(self, capacity: int | None = None,
                 reservoir: int = DEFAULT_RESERVOIR):
        self.capacity = capacity
        self.reservoir = reservoir
        self._lock = threading.Lock()
        self._t0 = time.monotonic()
        self._tenants: dict[str, _ScopeStats] = {}
        self._backends: dict[str, _ScopeStats] = {}
        # {submission id: (tenant, backend)} for lifecycle events that do
        # not carry the backend themselves; pruned on terminal events.
        self._routes: dict[str, tuple[str, str | None]] = {}
        self._workers: dict[str, dict] = {}
        self._saturated = 0
        self._running = 0
        self._running_peak = 0
        self._events_seen = 0
        self._unsubscribers: list = []

    # -- attachment ----------------------------------------------------------

    def attach(self, bus) -> "TelemetrySampler":
        """Subscribe to one bus (chainable); batch-aware."""
        self._unsubscribers.append(bus.subscribe(self))
        return self

    def detach(self) -> None:
        """Drop every subscription this sampler holds."""
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers.clear()

    # -- folding -------------------------------------------------------------

    def _scope(self, table: dict, key: str) -> _ScopeStats:
        stats = table.get(key)
        if stats is None:
            stats = table[key] = _ScopeStats(key, self.reservoir)
        return stats

    def _scopes_for(self, fields: dict) -> list[_ScopeStats]:
        """The tenant and backend scopes one event updates.

        The backend rides on ``service.submitted`` and on forwarded
        execution events (:class:`~repro.savanna.service.ThreadSafeBus`
        tagging); later lifecycle instants fall back to the route map
        built at submission time.
        """
        submission = fields.get("submission")
        tenant = fields.get("tenant")
        backend = fields.get("backend")
        if submission is not None:
            route = self._routes.get(submission)
            if route is not None:
                tenant = tenant if tenant is not None else route[0]
                backend = backend if backend is not None else route[1]
        scopes = []
        if tenant is not None:
            scopes.append(self._scope(self._tenants, tenant))
        if backend is not None:
            scopes.append(self._scope(self._backends, backend))
        return scopes

    def feed(self, event) -> None:
        """Fold one event; the event object is not retained."""
        with self._lock:
            self._feed(event)

    #: Samplers are plain callables, so ``bus.subscribe(sampler)`` works.
    __call__ = feed

    def on_batch(self, events) -> None:
        """Batch-aware subscriber hook (one lock round per batch)."""
        with self._lock:
            for event in events:
                self._feed(event)

    def _feed(self, event) -> None:
        self._events_seen += 1
        name = event.name
        fields = event.fields
        if name == SERVICE_SUBMITTED:
            submission = fields.get("submission")
            if submission is not None:
                self._routes[submission] = (
                    fields.get("tenant", "default"),
                    fields.get("backend"),
                )
            for s in self._scopes_for(fields):
                s.submitted += 1
                s.queued += 1
        elif name == SERVICE_STARTED:
            wait = fields.get("queued_for")
            for s in self._scopes_for(fields):
                s.started += 1
                s.queued -= 1
                s.active += 1
                if wait is not None:
                    s.queue_wait.observe(float(wait))
            self._running += 1
            self._running_peak = max(self._running_peak, self._running)
        elif name == SERVICE_FINISHED:
            outcome = fields.get("outcome", "done")
            elapsed = fields.get("elapsed")
            for s in self._scopes_for(fields):
                s.active -= 1
                if outcome == "failed":
                    s.failed += 1
                else:
                    s.finished += 1
                if elapsed is not None:
                    s.latency.observe(float(elapsed))
            self._running -= 1
            self._routes.pop(fields.get("submission"), None)
        elif name == SERVICE_CANCELLED:
            while_ = fields.get("while", "queued")
            for s in self._scopes_for(fields):
                if while_ == "running":
                    s.active -= 1
                    s.cancelled_running += 1
                else:
                    s.queued -= 1
                    s.cancelled_queued += 1
            if while_ == "running":
                self._running -= 1
            self._routes.pop(fields.get("submission"), None)
        elif name == SERVICE_SATURATED:
            self._saturated += 1
        elif name == TASK and event.phase == END:
            outcome = fields.get("outcome")
            if outcome in ("done", "failed"):
                for s in self._scopes_for(fields):
                    if outcome == "done":
                        s.tasks_done += 1
                    else:
                        s.tasks_failed += 1
        elif name == TASK_RETRY:
            for s in self._scopes_for(fields):
                s.retries += 1
        elif name == TASK_TIMEOUT:
            for s in self._scopes_for(fields):
                s.timeouts += 1
        elif name == TASK_FAULT_INJECTED:
            for s in self._scopes_for(fields):
                s.faults += 1
        elif name == WORKER_SAMPLE:
            worker = str(fields.get("worker", fields.get("pid", "?")))
            self._workers[worker] = {
                "pid": fields.get("pid"),
                "cpu_seconds": fields.get("cpu_seconds"),
                "cpu_pct": fields.get("cpu_pct"),
                "rss_bytes": fields.get("rss_bytes"),
                "trace_id": fields.get("trace_id"),
                "at": event.time,
            }

    # -- views ---------------------------------------------------------------

    @property
    def uptime(self) -> float:
        return time.monotonic() - self._t0

    def status(self) -> dict:
        """One JSON-serializable snapshot of everything (the ``/status``
        document; schema :data:`STATUS_SCHEMA`)."""
        with self._lock:
            saturation = (
                self._running / self.capacity
                if self.capacity else None
            )
            return {
                "schema": STATUS_SCHEMA,
                "uptime": self.uptime,
                "events": self._events_seen,
                "service": {
                    "capacity": self.capacity,
                    "running": self._running,
                    "running_peak": self._running_peak,
                    "saturation": saturation,
                    "saturated_total": self._saturated,
                    "queued": sum(s.queued for s in self._tenants.values()),
                    "active": sum(s.active for s in self._tenants.values()),
                },
                "tenants": {
                    name: s.as_dict() for name, s in sorted(self._tenants.items())
                },
                "backends": {
                    name: s.as_dict() for name, s in sorted(self._backends.items())
                },
                "workers": {
                    name: dict(w) for name, w in sorted(self._workers.items())
                },
            }

    def tenant_status(self, tenant: str) -> dict | None:
        """The ``/status/<tenant>`` document (None for unknown tenants)."""
        with self._lock:
            stats = self._tenants.get(tenant)
            if stats is None:
                return None
            return {"schema": STATUS_SCHEMA, "tenant": tenant, **stats.as_dict()}

    # -- Prometheus exposition -----------------------------------------------

    def prometheus(self) -> str:
        """Render the current state in Prometheus text format (0.0.4).

        Naming follows the exposition conventions (documented in
        ``docs/telemetry.md``): counters end in ``_total``, gauges name
        the instant quantity, distributions are exported as summaries
        with ``quantile`` labels plus ``_sum``/``_count``, and every
        per-scope family carries exactly one of the ``tenant=`` /
        ``backend=`` labels.
        """
        with self._lock:
            lines: list[str] = []

            def family(name: str, kind: str, help_text: str, samples) -> None:
                rendered = list(samples)
                if not rendered:
                    return
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                lines.extend(rendered)

            def sample(name: str, value, **labels) -> str:
                if value is None:
                    value = "NaN"
                body = ",".join(
                    f'{k}="{_escape(v)}"' for k, v in labels.items()
                )
                return f"{name}{{{body}}} {value}" if body else f"{name} {value}"

            family(
                "repro_service_uptime_seconds", "gauge",
                "Seconds since the telemetry sampler attached.",
                [sample("repro_service_uptime_seconds", f"{self.uptime:.6f}")],
            )
            family(
                "repro_service_running_submissions", "gauge",
                "Submissions currently executing on service workers.",
                [sample("repro_service_running_submissions", self._running)],
            )
            if self.capacity:
                family(
                    "repro_service_worker_saturation", "gauge",
                    "Running submissions over max_workers capacity.",
                    [sample(
                        "repro_service_worker_saturation",
                        f"{self._running / self.capacity:.6f}",
                    )],
                )
            family(
                "repro_service_saturated_total", "counter",
                "Submissions refused because the queue was full.",
                [sample("repro_service_saturated_total", self._saturated)],
            )

            def scope_families(scope_label: str, table: dict) -> None:
                pre = "repro_service"
                counters = (
                    ("submitted_total", "submitted",
                     "Submissions accepted into the queue."),
                    ("started_total", "started",
                     "Submissions picked up by a worker (fair-share service count)."),
                    ("finished_total", "finished",
                     "Submissions completed successfully."),
                    ("failed_total", "failed",
                     "Submissions that raised out of the drive pipeline."),
                    ("cancelled_total", "cancelled",
                     "Submissions cancelled (queued or running)."),
                    ("tasks_done_total", "tasks_done",
                     "Per-run task attempts that completed."),
                    ("tasks_failed_total", "tasks_failed",
                     "Per-run task attempts that failed."),
                    ("task_retries_total", "retries",
                     "Retry grants across all submissions."),
                    ("task_timeouts_total", "timeouts",
                     "Per-attempt timeout expiries."),
                    ("task_faults_total", "faults",
                     "Injected faults observed."),
                )
                for suffix, attr, help_text in counters:
                    family(
                        f"{pre}_{suffix}", "counter", help_text,
                        [
                            sample(f"{pre}_{suffix}", getattr(s, attr),
                                   **{scope_label: key})
                            for key, s in sorted(table.items())
                        ],
                    )
                for suffix, attr, help_text in (
                    ("queue_depth", "queued", "Submissions waiting in the queue."),
                    ("active_submissions", "active", "Submissions currently running."),
                ):
                    family(
                        f"{pre}_{suffix}", "gauge", help_text,
                        [
                            sample(f"{pre}_{suffix}", getattr(s, attr),
                                   **{scope_label: key})
                            for key, s in sorted(table.items())
                        ],
                    )
                for suffix, attr, help_text in (
                    ("queue_wait_seconds", "queue_wait",
                     "Queue wait from submit to worker pickup."),
                    ("latency_seconds", "latency",
                     "End-to-end submission latency (started to terminal)."),
                ):
                    rows: list[str] = []
                    for key, s in sorted(table.items()):
                        hist: Histogram = getattr(s, attr)
                        summary = hist.summary()
                        if summary["count"]:
                            for q, p in (("0.5", "p50"), ("0.95", "p95"),
                                         ("0.99", "p99")):
                                rows.append(sample(
                                    f"{pre}_{suffix}",
                                    f"{summary[p]:.6f}",
                                    **{scope_label: key, "quantile": q},
                                ))
                        rows.append(sample(
                            f"{pre}_{suffix}_sum", f"{summary['sum']:.6f}",
                            **{scope_label: key},
                        ))
                        rows.append(sample(
                            f"{pre}_{suffix}_count", summary["count"],
                            **{scope_label: key},
                        ))
                    family(f"{pre}_{suffix}", "summary", help_text, rows)

            scope_families("tenant", self._tenants)
            scope_families("backend", self._backends)

            family(
                "repro_worker_cpu_seconds_total", "counter",
                "Cumulative CPU seconds per pool worker.",
                [
                    sample("repro_worker_cpu_seconds_total",
                           w["cpu_seconds"], worker=name)
                    for name, w in sorted(self._workers.items())
                    if w.get("cpu_seconds") is not None
                ],
            )
            family(
                "repro_worker_cpu_percent", "gauge",
                "CPU utilization of each pool worker over the last sample interval.",
                [
                    sample("repro_worker_cpu_percent",
                           f"{w['cpu_pct']:.3f}", worker=name)
                    for name, w in sorted(self._workers.items())
                    if w.get("cpu_pct") is not None
                ],
            )
            family(
                "repro_worker_rss_bytes", "gauge",
                "Resident set size of each pool worker.",
                [
                    sample("repro_worker_rss_bytes", w["rss_bytes"], worker=name)
                    for name, w in sorted(self._workers.items())
                    if w.get("rss_bytes") is not None
                ],
            )
            return "\n".join(lines) + "\n"


def _escape(value) -> str:
    """Escape one Prometheus label value."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )
