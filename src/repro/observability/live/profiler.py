"""Worker resource profiling: CPU and RSS of pool workers, while running.

The post-run :class:`~repro.observability.analysis.CampaignReport` can
tell you *which run was* a straggler; this module tells you *which
worker is one right now*.  :class:`WorkerResourceProfiler` runs a
sampling thread that, every ``interval`` seconds, reads CPU time and
resident-set size for each worker of a real-execution pool and publishes
one ``worker.sample`` instant per worker — the
:class:`~repro.observability.live.TelemetrySampler` folds them into the
``/metrics`` worker families, and ``repro top`` renders them live.

Sampling sources, most portable first that applies:

- ``/proc/<pid>/stat`` (Linux): utime+stime clock ticks and RSS pages —
  works for *any* pid, which is what a ``local-processes`` pool needs;
- ``resource.getrusage(RUSAGE_SELF)``: the calling process only — the
  fallback for ``local-threads`` pools (all work shares the driver
  process) on platforms without ``/proc``;
- neither available for a foreign pid → that worker is skipped for the
  tick (no exception, no partial sample).

The profiler never touches the bus directly: it is handed an ``emit``
callable by its owner (:meth:`~repro.savanna.realexec.RealExecutor.execute`
passes its lock-serialized emitter), so publication respects whatever
thread-safety discipline the owning bus requires.
"""

from __future__ import annotations

import os
import sys
import threading
import time

from repro.observability.events import WORKER_SAMPLE

#: Default sampling period (seconds).
DEFAULT_INTERVAL = 0.25

_TICKS = None
_PAGE = None


def _units() -> tuple[float, int]:
    """(clock ticks per second, page size in bytes), cached."""
    global _TICKS, _PAGE
    if _TICKS is None:
        try:
            _TICKS = float(os.sysconf("SC_CLK_TCK"))
            _PAGE = int(os.sysconf("SC_PAGE_SIZE"))
        except (AttributeError, ValueError, OSError):  # pragma: no cover
            _TICKS, _PAGE = 100.0, 4096
    return _TICKS, _PAGE


def sample_process(pid: int) -> dict | None:
    """One resource reading for ``pid``: ``{"cpu_seconds", "rss_bytes"}``.

    Reads ``/proc/<pid>/stat`` when available; for the calling process
    on non-/proc platforms, falls back to ``resource.getrusage``.
    Returns ``None`` when the pid cannot be sampled (gone, foreign pid
    without /proc) — callers skip the tick rather than crash.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as fh:
            raw = fh.read().decode("ascii", "replace")
    except OSError:
        raw = None
    if raw is not None:
        try:
            # comm (field 2) may contain spaces/parens: split after the
            # *last* ')' so the fixed-position tail parses reliably.
            tail = raw[raw.rindex(")") + 2:].split()
            ticks, page = _units()
            utime, stime = int(tail[11]), int(tail[12])  # fields 14, 15
            rss_pages = int(tail[21])  # field 24
            return {
                "cpu_seconds": (utime + stime) / ticks,
                "rss_bytes": rss_pages * page,
            }
        except (ValueError, IndexError):  # pragma: no cover - malformed stat
            return None
    if pid != os.getpid():
        return None
    try:  # portable self-sampling fallback
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
    except (ImportError, OSError):  # pragma: no cover - e.g. Windows
        return None
    # ru_maxrss is KiB on Linux, bytes on macOS.
    scale = 1 if sys.platform == "darwin" else 1024
    return {
        "cpu_seconds": usage.ru_utime + usage.ru_stime,
        "rss_bytes": int(usage.ru_maxrss) * scale,
    }


class WorkerResourceProfiler:
    """Sample a changing set of worker pids and publish ``worker.sample``.

    Parameters
    ----------
    emit:
        ``callable(name, **fields)`` used to publish each sample — the
        owner decides which bus and what locking.
    pids:
        Zero-argument callable returning the *current* ``{label: pid}``
        map; re-evaluated every tick, so lazily-spawned pool workers
        appear as soon as they exist.
    interval:
        Seconds between sampling rounds.
    trace_id:
        Optional trace id stamped on every sample (ties worker load to
        the campaign execution it belongs to).
    """

    def __init__(self, emit, pids, interval: float = DEFAULT_INTERVAL,
                 trace_id: str | None = None):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._emit = emit
        self._pids = pids
        self.interval = interval
        self.trace_id = trace_id
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # {pid: (cpu_seconds, monotonic)} for utilization deltas.
        self._last: dict[int, tuple[float, float]] = {}
        self.samples = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WorkerResourceProfiler":
        """Spawn the sampling thread (idempotent, chainable)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="worker-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Take one final sample round, then stop the thread."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "WorkerResourceProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            stopping = self._stop.wait(self.interval)
            self.sample_once()
            if stopping:
                return

    def sample_once(self) -> int:
        """One sampling round over the current pid map; returns how many
        workers were successfully sampled (also runs inside the thread —
        public so tests and the ``top`` attach path can poll without one).
        """
        try:
            pids = dict(self._pids())
        except Exception:  # noqa: BLE001 - pool may be tearing down
            return 0
        sampled = 0
        mono = time.monotonic()
        for label, pid in sorted(pids.items()):
            reading = sample_process(pid)
            if reading is None:
                continue
            cpu_pct = None
            last = self._last.get(pid)
            if last is not None and mono > last[1]:
                cpu_pct = max(
                    0.0, 100.0 * (reading["cpu_seconds"] - last[0]) / (mono - last[1])
                )
            self._last[pid] = (reading["cpu_seconds"], mono)
            self._emit(
                WORKER_SAMPLE,
                worker=str(label),
                pid=pid,
                cpu_seconds=reading["cpu_seconds"],
                cpu_pct=cpu_pct,
                rss_bytes=reading["rss_bytes"],
                trace_id=self.trace_id,
            )
            sampled += 1
            self.samples += 1
        return sampled
