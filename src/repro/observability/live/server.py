"""Stdlib-only HTTP exposition for the live telemetry plane.

:class:`TelemetryServer` serves a :class:`~repro.observability.live.TelemetrySampler`
over plain ``http.server`` — no third-party dependency, off by default,
enabled per service with ``CampaignService(serve_telemetry=True)``:

- ``GET /metrics`` — Prometheus text format 0.0.4 (scrape it, or point
  ``python -m repro.observability top`` at the sibling ``/status``);
- ``GET /status`` — the full JSON snapshot (schema
  ``repro.telemetry.status/v1``: service totals, per-tenant and
  per-backend aggregates, worker resource samples);
- ``GET /status/<tenant>`` — one tenant's aggregates (404 for unknown
  tenants).

The server binds ``127.0.0.1`` on an ephemeral port by default (pass
``port=`` to pin one) and runs on a daemon thread; ``start()`` returns
once the socket is listening, so :attr:`address` is immediately
scrapeable.  Request handling is threaded and each read takes the
sampler's lock only long enough to snapshot — scraping never blocks the
service's event emission for more than one fold.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

#: Content type Prometheus scrapers expect from a text-format endpoint.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class TelemetryServer:
    """Serve one sampler's live state at ``/metrics`` and ``/status``.

    Example (in-process scrape)::

        sampler = TelemetrySampler().attach(service.bus)
        server = TelemetryServer(sampler).start()
        urllib.request.urlopen(server.address + "/metrics").read()
        server.stop()
    """

    def __init__(self, sampler, host: str = "127.0.0.1", port: int = 0):
        self.sampler = sampler
        self.host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "TelemetryServer":
        """Bind the socket and start serving (idempotent, chainable)."""
        if self._httpd is not None:
            return self
        handler = _make_handler(self.sampler)
        self._httpd = ThreadingHTTPServer((self.host, self._requested_port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="telemetry-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- addressing ----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (the ephemeral one when ``port=0`` was asked)."""
        if self._httpd is None:
            raise RuntimeError("telemetry server is not running")
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        """``http://host:port`` of the live listener."""
        return f"http://{self.host}:{self.port}"


def _make_handler(sampler):
    """A request-handler class closed over one sampler."""

    class _TelemetryHandler(BaseHTTPRequestHandler):
        server_version = "repro-telemetry/1"

        def do_GET(self):  # noqa: N802 - http.server contract
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/metrics":
                body = sampler.prometheus().encode("utf-8")
                self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == "/status":
                body = json.dumps(sampler.status(), indent=1).encode("utf-8")
                self._reply(200, "application/json", body)
            elif path.startswith("/status/"):
                tenant = path[len("/status/"):]
                doc = sampler.tenant_status(tenant)
                if doc is None:
                    self._reply(
                        404, "application/json",
                        json.dumps({"error": f"unknown tenant {tenant!r}"}).encode(),
                    )
                else:
                    self._reply(200, "application/json",
                                json.dumps(doc, indent=1).encode("utf-8"))
            else:
                self._reply(
                    404, "application/json",
                    json.dumps({
                        "error": f"no route {path!r}",
                        "routes": ["/metrics", "/status", "/status/<tenant>"],
                    }).encode(),
                )

        def _reply(self, code: int, content_type: str, body: bytes) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            """Silence per-request stderr lines; the bus is the log."""

    return _TelemetryHandler
