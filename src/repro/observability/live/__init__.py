"""repro.observability.live — the live telemetry plane.

Where :mod:`repro.observability.analysis` answers "what happened" from a
saved trace, this package answers "what is happening" from a running
service:

- :class:`TelemetrySampler` — subscribe to a service monitoring bus and
  keep O(1) per-tenant / per-backend running aggregates (queue depth,
  lifecycle counts, fair-share service counts, bounded-reservoir
  queue-wait and latency distributions, retry/fault counters, worker
  saturation);
- :class:`TelemetryServer` — stdlib-only HTTP exposition: Prometheus
  text at ``/metrics``, JSON at ``/status`` and ``/status/<tenant>``;
- :class:`JsonLogSubscriber` — one JSON log line per bus event, with
  submission / tenant / backend / trace-id correlation keys promoted;
- :class:`WorkerResourceProfiler` — a sampling thread publishing
  ``worker.sample`` CPU/RSS readings for real-execution pool workers;
- :func:`watch` / :func:`render_top` — the ``repro top`` table, usable
  against a URL or in-process against a sampler.

Everything is opt-in and stdlib-only: a service constructed without
``serve_telemetry=True`` runs exactly as before, and the overhead of a
fully enabled plane is gated below 5% by
``benchmarks/bench_telemetry_overhead.py``.  The full contract lives in
``docs/telemetry.md``.
"""

from repro.observability.live.logs import PROMOTED_FIELDS, JsonLogSubscriber
from repro.observability.live.profiler import (
    DEFAULT_INTERVAL,
    WorkerResourceProfiler,
    sample_process,
)
from repro.observability.live.sampler import (
    DEFAULT_RESERVOIR,
    STATUS_SCHEMA,
    TelemetrySampler,
)
from repro.observability.live.server import PROMETHEUS_CONTENT_TYPE, TelemetryServer
from repro.observability.live.top import fetch_status, render_top, watch

__all__ = [
    "TelemetrySampler",
    "TelemetryServer",
    "JsonLogSubscriber",
    "WorkerResourceProfiler",
    "sample_process",
    "fetch_status",
    "render_top",
    "watch",
    "STATUS_SCHEMA",
    "DEFAULT_RESERVOIR",
    "DEFAULT_INTERVAL",
    "PROMETHEUS_CONTENT_TYPE",
    "PROMOTED_FIELDS",
]
