"""``repro top``: a refreshing per-tenant table over a live service.

``python -m repro.observability top http://127.0.0.1:9178`` polls the
telemetry server's ``/status`` endpoint and redraws one screen per
interval — queue depth, active/finished/failed/cancelled counts,
fair-share service counts, and queue-wait / latency quantiles per
tenant, plus a backend table and the per-worker CPU/RSS readings from
the resource profiler.  It is deliberately shaped like ``top``: glance
at it while a campaign fleet runs and see which tenant is starved and
which worker is pinning a core.

The same renderer also attaches **in-process**: :func:`watch` accepts a
URL, a :class:`~repro.observability.live.TelemetrySampler`, or a
:class:`~repro.savanna.service.CampaignService` started with
``serve_telemetry=True`` — anything that can produce a status document.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request

from repro._util.tables import format_table

#: ANSI "clear screen, home cursor" prefix used between refreshes.
CLEAR = "\x1b[2J\x1b[H"


def fetch_status(url: str, timeout: float = 5.0) -> dict:
    """GET ``<url>/status`` and parse the JSON document."""
    target = url.rstrip("/")
    if not target.endswith("/status"):
        target += "/status"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _status_of(source) -> dict:
    """Resolve one status document from a URL / sampler / service."""
    if isinstance(source, str):
        return fetch_status(source)
    telemetry = getattr(source, "telemetry", None)
    if telemetry is not None and hasattr(telemetry, "status"):
        return telemetry.status()  # a CampaignService(serve_telemetry=True)
    if hasattr(source, "status"):
        return source.status()  # a TelemetrySampler
    raise TypeError(
        f"cannot read telemetry from {type(source).__name__}: pass a URL, "
        "a TelemetrySampler, or a CampaignService(serve_telemetry=True)"
    )


def _quantiles(summary: dict) -> str:
    if not summary or not summary.get("count"):
        return "-"
    return f"{summary['p50']:.3f}/{summary['p95']:.3f}"


def render_top(status: dict) -> str:
    """Render one ``/status`` document as the full ``top`` screen."""
    service = status.get("service", {})
    saturation = service.get("saturation")
    header = (
        f"repro top — uptime {status.get('uptime', 0.0):7.1f}s   "
        f"events {status.get('events', 0)}   "
        f"running {service.get('running', 0)}"
        + (f"/{service.get('capacity')}" if service.get("capacity") else "")
        + (f" ({saturation:.0%} saturated)" if saturation is not None else "")
        + f"   queued {service.get('queued', 0)}   "
        f"refused {service.get('saturated_total', 0)}"
    )
    sections = [header]

    tenants = status.get("tenants", {})
    if tenants:
        rows = [
            (
                name,
                s["queued"], s["active"], s["started"],
                s["finished"], s["failed"], s["cancelled"],
                f"{s['tasks_done']}/{s['tasks_done'] + s['tasks_failed']}",
                _quantiles(s.get("queue_wait", {})),
                _quantiles(s.get("latency", {})),
            )
            for name, s in sorted(tenants.items())
        ]
        sections.append(format_table(
            ("tenant", "queued", "active", "served", "done", "fail",
             "canc", "tasks", "qwait p50/p95", "latency p50/p95"),
            rows,
        ))

    backends = status.get("backends", {})
    if backends:
        rows = [
            (
                name, s["active"], s["tasks_done"], s["tasks_failed"],
                s["retries"], s["timeouts"],
            )
            for name, s in sorted(backends.items())
        ]
        sections.append(format_table(
            ("backend", "active", "tasks done", "tasks fail",
             "retries", "timeouts"),
            rows,
        ))

    workers = status.get("workers", {})
    if workers:
        rows = []
        for name, w in sorted(workers.items()):
            cpu_pct = w.get("cpu_pct")
            rss = w.get("rss_bytes")
            rows.append((
                name,
                w.get("pid", "-"),
                f"{w['cpu_seconds']:.2f}" if w.get("cpu_seconds") is not None else "-",
                f"{cpu_pct:.0f}%" if cpu_pct is not None else "-",
                f"{rss / 1e6:.1f}MB" if rss is not None else "-",
            ))
        sections.append(format_table(
            ("worker", "pid", "cpu s", "cpu %", "rss"), rows
        ))

    return "\n\n".join(sections)


def watch(
    source,
    interval: float = 1.0,
    iterations: int | None = None,
    out=None,
    clear: bool = True,
) -> int:
    """Poll ``source`` and redraw the table until interrupted.

    ``iterations=None`` runs until Ctrl-C; a number renders that many
    frames (what ``--once`` and the tests use).  Returns the number of
    frames rendered.
    """
    out = out if out is not None else sys.stdout
    frames = 0
    try:
        while iterations is None or frames < iterations:
            screen = render_top(_status_of(source))
            out.write((CLEAR if clear and frames else "") + screen + "\n")
            out.flush()
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return frames
