"""Structured JSON-lines logging: bus events as operator-grepable lines.

:class:`JsonLogSubscriber` is the log half of the live telemetry plane:
subscribe it to a service monitoring bus (or any
:class:`~repro.observability.EventBus`) and every event becomes exactly
one JSON object on one line — the format every log shipper and ``jq``
pipeline already speaks.

Line schema (documented in ``docs/telemetry.md``): the promoted keys
come first and are always present when the event carries them —

``ts``
    event time (seconds on the emitting bus's clock);
``event`` / ``phase`` / ``seq`` / ``bus``
    taxonomy name, span phase, per-bus sequence number, bus pid;
``submission`` / ``tenant`` / ``backend`` / ``trace_id`` / ``campaign`` / ``task``
    the correlation fields: ``grep`` one trace id and you see the same
    submission's service lifecycle, drive pipeline, and in-worker
    events side by side;
``fields``
    every remaining event field, verbatim.

Emission is serialized by an internal lock (the service's monitoring
bus delivers from many threads) and each line is flushed, so ``tail
-f`` keeps up with a live service.
"""

from __future__ import annotations

import json
import sys
import threading

#: Event fields promoted to top-level log keys, in output order.
PROMOTED_FIELDS = ("submission", "tenant", "backend", "trace_id",
                   "campaign", "task")


class JsonLogSubscriber:
    """Write one JSON line per bus event to a stream.

    Parameters
    ----------
    stream:
        A writable text stream (default ``sys.stderr`` — keep stdout for
        the program's own output).
    events:
        Optional name filter: an iterable of exact names and/or
        ``"prefix.*"`` patterns (e.g. ``("service.*", "worker.sample")``).
        ``None`` logs everything.

    Example
    -------
    >>> import io
    >>> from repro.observability import EventBus
    >>> buffer = io.StringIO()
    >>> bus = EventBus()
    >>> log = JsonLogSubscriber(stream=buffer).attach(bus)
    >>> _ = bus.emit("service.submitted", submission="sub-0000", tenant="lab")
    >>> json.loads(buffer.getvalue())["submission"]
    'sub-0000'
    """

    def __init__(self, stream=None, events=None):
        self.stream = stream if stream is not None else sys.stderr
        self._exact: set[str] = set()
        self._prefixes: tuple[str, ...] = ()
        if events is not None:
            prefixes = []
            for pattern in events:
                if pattern.endswith(".*"):
                    prefixes.append(pattern[:-1])  # keep the dot
                else:
                    self._exact.add(pattern)
            self._prefixes = tuple(prefixes)
        self._filter = events is not None
        self._lock = threading.Lock()
        self._unsubscribers: list = []
        self.lines = 0

    # -- attachment ----------------------------------------------------------

    def attach(self, bus) -> "JsonLogSubscriber":
        """Subscribe to one bus (chainable)."""
        self._unsubscribers.append(bus.subscribe(self))
        return self

    def detach(self) -> None:
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers.clear()

    # -- emission ------------------------------------------------------------

    def _wants(self, name: str) -> bool:
        if not self._filter:
            return True
        return name in self._exact or name.startswith(self._prefixes)

    def __call__(self, event) -> None:
        if not self._wants(event.name):
            return
        line = json.dumps(self.format(event), default=repr)
        with self._lock:
            self.stream.write(line + "\n")
            self.stream.flush()
            self.lines += 1

    def on_batch(self, events) -> None:
        """Batch-aware hook: one write + flush per delivered batch."""
        lines = [
            json.dumps(self.format(e), default=repr)
            for e in events
            if self._wants(e.name)
        ]
        if not lines:
            return
        with self._lock:
            self.stream.write("\n".join(lines) + "\n")
            self.stream.flush()
            self.lines += len(lines)

    @staticmethod
    def format(event) -> dict:
        """One event's log-line document (ordered, JSON-serializable)."""
        record = {
            "ts": event.time,
            "event": event.name,
            "phase": event.phase,
            "seq": event.seq,
            "bus": event.pid,
        }
        rest = dict(event.fields)
        for key in PROMOTED_FIELDS:
            if key in rest:
                record[key] = rest.pop(key)
        if rest:
            record["fields"] = rest
        return record
