"""The trace recorder: capture an event stream, export a Chrome trace.

:class:`TraceRecorder` subscribes to one bus (:meth:`TraceRecorder.attach`)
or to every bus in the process (:meth:`TraceRecorder.recording`), records
each event verbatim, and keeps a standard :class:`MetricsRegistry` up to
date from the task/allocation/node lifecycle as it streams by.  After the
run:

- :meth:`to_chrome_trace` renders the stream in Chrome's ``trace_event``
  JSON format (a list of ``{name, ph, ts, pid, tid}`` dicts) — load it at
  ``about:tracing`` or https://ui.perfetto.dev to see the campaign,
  allocation, and per-node task timelines;
- :attr:`metrics` answers "how many tasks completed / failed / were
  requeued, what did task durations look like, how many nodes ran hot";
- :meth:`validate` re-checks the ordering contract
  (:func:`~repro.observability.events.validate_event_stream`).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path

from repro.observability.bus import EventBus, subscribe_all
from repro.observability.events import (
    ALLOC,
    ALLOC_SUBMITTED,
    BEGIN,
    CAMPAIGN,
    END,
    GROUP,
    NODE_BUSY,
    NODE_IDLE,
    TASK,
    TASK_REQUEUED,
    Event,
    validate_event_stream,
)
from repro.observability.metrics import MetricsRegistry

#: Chrome trace_event phase letters for our three phases.
_CHROME_PHASE = {BEGIN: "B", END: "E", "instant": "i"}

#: tid 0 carries campaign/group/alloc spans; node-scoped events go to
#: tid = node index + 1 so Chrome renders one row per node (Figure 6 live).
_CONTROL_TID = 0


class TraceRecorder:
    """Record events from one or many buses; export trace + metrics.

    Example
    -------
    >>> from repro.observability import EventBus
    >>> bus = EventBus()
    >>> rec = TraceRecorder().attach(bus)
    >>> with bus.span("task", task_id=0, task="t0", node=0):
    ...     pass
    >>> [e.phase for e in rec.events]
    ['begin', 'end']
    """

    def __init__(self) -> None:
        self.events: list[Event] = []
        self.metrics = MetricsRegistry()
        self._unsubscribers: list = []
        self._open_tasks: dict[tuple, float] = {}

    # -- attachment ----------------------------------------------------------

    def attach(self, bus: EventBus) -> "TraceRecorder":
        """Subscribe to one bus (chainable); see also :meth:`recording`.

        The recorder subscribes as *itself* (it is callable), so the bus
        sees its :meth:`on_batch` method and delivers batched emissions
        (:meth:`EventBus.publish_batch`) in one call per batch.
        """
        self._unsubscribers.append(bus.subscribe(self))
        return self

    def detach(self) -> None:
        """Drop every subscription this recorder holds."""
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers.clear()

    @contextmanager
    def recording(self):
        """Capture *every* bus in the process for the duration of the block.

        This is how the experiments CLI traces figure drivers that build
        their clusters internally::

            rec = TraceRecorder()
            with rec.recording():
                fig6_timeline()
            rec.write_chrome_trace("fig6.json")
        """
        unsubscribe = subscribe_all(self)
        try:
            yield self
        finally:
            unsubscribe()

    # -- recording -----------------------------------------------------------

    def record(self, event: Event) -> None:
        """Append one event and fold it into the standard metrics."""
        self.events.append(event)
        self._update_metrics(event)

    #: Recorders are plain callables too, so ``bus.subscribe(rec)`` works
    #: and per-event delivery hits :meth:`record` directly.
    __call__ = record

    def record_batch(self, events: list[Event]) -> None:
        """Append a whole batch (one list extend, then metric folds)."""
        self.events.extend(events)
        update = self._update_metrics
        for event in events:
            update(event)

    #: Batch-aware subscriber protocol hook (see ``EventBus.publish_batch``).
    on_batch = record_batch

    def _update_metrics(self, event: Event) -> None:
        m = self.metrics
        name, phase = event.name, event.phase
        if name == TASK:
            key = (event.pid, event.fields.get("task_id"))
            if phase == BEGIN:
                m.counter("tasks.launched").inc()
                self._open_tasks[key] = event.time
            elif phase == END:
                outcome = event.fields.get("outcome", "unknown")
                m.counter(f"tasks.{outcome}").inc()
                start = self._open_tasks.pop(key, None)
                if start is not None:
                    m.histogram("task.elapsed").observe(event.time - start)
        elif name == TASK_REQUEUED:
            m.counter("tasks.requeued").inc()
        elif name == ALLOC:
            m.counter("allocations.granted" if phase == BEGIN else "allocations.ended").inc()
        elif name == ALLOC_SUBMITTED:
            m.counter("allocations.submitted").inc()
        elif name == NODE_BUSY:
            m.gauge("nodes.busy").add(1)
        elif name == NODE_IDLE:
            m.gauge("nodes.busy").add(-1)
        elif name == CAMPAIGN:
            m.counter("campaigns.started" if phase == BEGIN else "campaigns.finished").inc()
        elif name == GROUP and phase == BEGIN:
            m.counter("groups.started").inc()

    # -- export --------------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` if the recorded stream breaks the contract."""
        validate_event_stream(self.events)

    def to_chrome_trace(self) -> list[dict]:
        """Render the stream as Chrome ``trace_event`` dicts.

        ``ts`` is microseconds (Chrome's unit; simulation seconds * 1e6),
        ``pid`` is the emitting bus (one per simulated machine), and
        ``tid`` places task/node events on one row per node with
        campaign/group/allocation spans on row 0.
        """
        out = []
        for event in self.events:
            node = event.fields.get("node")
            tid = _CONTROL_TID if node is None else int(node) + 1
            entry = {
                "name": event.name,
                "ph": _CHROME_PHASE[event.phase],
                "ts": event.time * 1e6,
                "pid": event.pid,
                "tid": tid,
                "args": dict(event.fields),
                # Not part of Chrome's format (viewers ignore unknown
                # keys); carried so events_from_trace() round-trips the
                # stream exactly, bus sequence numbers included.
                "seq": event.seq,
                "t": event.time,
            }
            if entry["ph"] == "i":
                entry["s"] = "t"  # thread-scoped instant
            out.append(entry)
        return out

    def write_chrome_trace(self, path) -> Path:
        """Write :meth:`to_chrome_trace` as JSON; returns the path.

        Missing parent directories are created — a capture is often the
        product of a long simulation, and failing at write time would
        throw it away.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace(), indent=1) + "\n")
        return path


# -- import -------------------------------------------------------------------

#: Inverse of _CHROME_PHASE, for reading traces back.
_PHASE_FROM_CHROME = {ph: phase for phase, ph in _CHROME_PHASE.items()}


def events_from_trace(source, validate: bool = True) -> list[Event]:
    """Parse a saved Chrome ``trace_event`` JSON back into an event stream.

    The inverse of :meth:`TraceRecorder.write_chrome_trace`: traces stop
    being write-only artifacts and become inputs — the trace analyzer
    (``python -m repro.observability report``) and any detached tooling
    can consume a shipped ``.trace.json`` exactly as if it had subscribed
    to the live bus.

    ``source`` may be a path to the JSON file, an already-parsed list of
    ``trace_event`` dicts, or a dict with a ``traceEvents`` key (the
    object form some tools emit).  Our own traces carry the original bus
    ``seq`` and float-exact ``t`` fields and round-trip losslessly;
    foreign traces fall back to ``ts``/1e6 with per-pid sequence numbers
    re-derived from file order.

    With ``validate=True`` (default) the reconstructed stream is checked
    against the ordering contract
    (:func:`~repro.observability.events.validate_event_stream`) and a
    broken file raises ``ValueError`` instead of yielding nonsense
    analytics.
    """
    if isinstance(source, (str, Path)):
        data = json.loads(Path(source).read_text())
    else:
        data = source
    if isinstance(data, dict):
        data = data.get("traceEvents")
    if not isinstance(data, list):
        raise ValueError(
            "trace source must be a trace_event list or a dict with a "
            f"'traceEvents' key, got {type(data).__name__}"
        )
    events: list[Event] = []
    next_seq: dict[int, int] = {}
    for i, entry in enumerate(data):
        try:
            phase = _PHASE_FROM_CHROME[entry["ph"]]
            pid = int(entry.get("pid", 0))
            time = entry["t"] if "t" in entry else entry["ts"] / 1e6
            seq = entry["seq"] if "seq" in entry else next_seq.get(pid, 0)
            event = Event(
                name=entry["name"],
                time=float(time),
                phase=phase,
                seq=int(seq),
                pid=pid,
                fields=dict(entry.get("args") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"trace entry {i} is not readable: {exc}") from exc
        next_seq[pid] = event.seq + 1
        events.append(event)
    if validate:
        validate_event_stream(events)
    return events
