"""The trace recorder: capture an event stream, export a Chrome trace.

:class:`TraceRecorder` subscribes to one bus (:meth:`TraceRecorder.attach`)
or to every bus in the process (:meth:`TraceRecorder.recording`), records
each event verbatim, and keeps a standard :class:`MetricsRegistry` up to
date from the task/allocation/node lifecycle as it streams by.  After the
run:

- :meth:`to_chrome_trace` renders the stream in Chrome's ``trace_event``
  JSON format (a list of ``{name, ph, ts, pid, tid}`` dicts) — load it at
  ``about:tracing`` or https://ui.perfetto.dev to see the campaign,
  allocation, and per-node task timelines;
- :attr:`metrics` answers "how many tasks completed / failed / were
  requeued, what did task durations look like, how many nodes ran hot";
- :meth:`validate` re-checks the ordering contract
  (:func:`~repro.observability.events.validate_event_stream`).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path

from repro.observability.bus import EventBus, subscribe_all
from repro.observability.events import (
    ALLOC,
    ALLOC_SUBMITTED,
    BEGIN,
    CAMPAIGN,
    END,
    GROUP,
    NODE_BUSY,
    NODE_IDLE,
    TASK,
    TASK_REQUEUED,
    Event,
    validate_event_stream,
)
from repro.observability.metrics import MetricsRegistry

#: Chrome trace_event phase letters for our three phases.
_CHROME_PHASE = {BEGIN: "B", END: "E", "instant": "i"}

#: tid 0 carries campaign/group/alloc spans; node-scoped events go to
#: tid = node index + 1 so Chrome renders one row per node (Figure 6 live).
_CONTROL_TID = 0


class TraceRecorder:
    """Record events from one or many buses; export trace + metrics.

    Example
    -------
    >>> from repro.observability import EventBus
    >>> bus = EventBus()
    >>> rec = TraceRecorder().attach(bus)
    >>> with bus.span("task", task_id=0, task="t0", node=0):
    ...     pass
    >>> [e.phase for e in rec.events]
    ['begin', 'end']
    """

    def __init__(self) -> None:
        self.events: list[Event] = []
        self.metrics = MetricsRegistry()
        self._unsubscribers: list = []
        self._open_tasks: dict[tuple, float] = {}

    # -- attachment ----------------------------------------------------------

    def attach(self, bus: EventBus) -> "TraceRecorder":
        """Subscribe to one bus (chainable); see also :meth:`recording`."""
        self._unsubscribers.append(bus.subscribe(self.record))
        return self

    def detach(self) -> None:
        """Drop every subscription this recorder holds."""
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers.clear()

    @contextmanager
    def recording(self):
        """Capture *every* bus in the process for the duration of the block.

        This is how the experiments CLI traces figure drivers that build
        their clusters internally::

            rec = TraceRecorder()
            with rec.recording():
                fig6_timeline()
            rec.write_chrome_trace("fig6.json")
        """
        unsubscribe = subscribe_all(self.record)
        try:
            yield self
        finally:
            unsubscribe()

    # -- recording -----------------------------------------------------------

    def record(self, event: Event) -> None:
        """Append one event and fold it into the standard metrics."""
        self.events.append(event)
        self._update_metrics(event)

    def _update_metrics(self, event: Event) -> None:
        m = self.metrics
        name, phase = event.name, event.phase
        if name == TASK:
            key = (event.pid, event.fields.get("task_id"))
            if phase == BEGIN:
                m.counter("tasks.launched").inc()
                self._open_tasks[key] = event.time
            elif phase == END:
                outcome = event.fields.get("outcome", "unknown")
                m.counter(f"tasks.{outcome}").inc()
                start = self._open_tasks.pop(key, None)
                if start is not None:
                    m.histogram("task.elapsed").observe(event.time - start)
        elif name == TASK_REQUEUED:
            m.counter("tasks.requeued").inc()
        elif name == ALLOC:
            m.counter("allocations.granted" if phase == BEGIN else "allocations.ended").inc()
        elif name == ALLOC_SUBMITTED:
            m.counter("allocations.submitted").inc()
        elif name == NODE_BUSY:
            m.gauge("nodes.busy").add(1)
        elif name == NODE_IDLE:
            m.gauge("nodes.busy").add(-1)
        elif name == CAMPAIGN:
            m.counter("campaigns.started" if phase == BEGIN else "campaigns.finished").inc()
        elif name == GROUP and phase == BEGIN:
            m.counter("groups.started").inc()

    # -- export --------------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` if the recorded stream breaks the contract."""
        validate_event_stream(self.events)

    def to_chrome_trace(self) -> list[dict]:
        """Render the stream as Chrome ``trace_event`` dicts.

        ``ts`` is microseconds (Chrome's unit; simulation seconds * 1e6),
        ``pid`` is the emitting bus (one per simulated machine), and
        ``tid`` places task/node events on one row per node with
        campaign/group/allocation spans on row 0.
        """
        out = []
        for event in self.events:
            node = event.fields.get("node")
            tid = _CONTROL_TID if node is None else int(node) + 1
            entry = {
                "name": event.name,
                "ph": _CHROME_PHASE[event.phase],
                "ts": event.time * 1e6,
                "pid": event.pid,
                "tid": tid,
                "args": dict(event.fields),
            }
            if entry["ph"] == "i":
                entry["s"] = "t"  # thread-scoped instant
            out.append(entry)
        return out

    def write_chrome_trace(self, path) -> Path:
        """Write :meth:`to_chrome_trace` as JSON; returns the path.

        Missing parent directories are created — a capture is often the
        product of a long simulation, and failing at write time would
        throw it away.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace(), indent=1) + "\n")
        return path
