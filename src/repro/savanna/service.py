"""The campaign service: asyncio-native multi-campaign orchestration.

The paper frames Savanna as something many researchers *submit to*, not a
script a single scientist runs to completion: "heavy traffic from many
users" needs a long-lived orchestration layer with submission, status,
and cancellation APIs.  :class:`CampaignService` is that layer — an
asyncio service owning a submission queue and a bounded worker pool, with
every previously-built drive capability (lint gate, retry policies,
checkpoint journal + ``resume=True``, bus events, ``report=True``
analytics) acting as *per-submission middleware* via the staged pipeline
in :mod:`repro.savanna.drive`.

Shape of the thing::

    service = CampaignService(max_workers=2, max_queue_depth=8)
    async with service:                       # start() … stop(drain=True)
        a = service.submit(manifest_a, backend="local-threads", app_fn=fit)
        b = service.submit(manifest_b, backend="local-threads", app_fn=fit,
                           tenant="lab-b", priority=1)
        b.cancel()                            # queued -> gone; running -> interrupt
        await a.wait()
        a.result                              # {group: RealCampaignResult}

Scheduling is **priority first, fair-share second**: the highest
``priority`` wins; within a priority band the tenant that has been
*served least* (fewest submissions started so far) goes next, so one
chatty tenant cannot starve the rest; submission order breaks remaining
ties.  Backpressure is explicit: when ``max_queue_depth`` submissions are
already queued, :meth:`CampaignService.submit` emits one
``service.saturated`` instant and raises :class:`ServiceSaturated` —
callers shed load or retry, the service never buffers unboundedly.

Execution never blocks the event loop: each submission's drive pipeline
(:func:`~repro.savanna.drive.execute_campaign` — a synchronous, possibly
minutes-long call) runs through ``asyncio.to_thread``, whether the
backend is simulated (``"pilot"``, ``"static-sets"``) or real
(``"local-threads"``, ``"local-processes"``).  Cancellation of a RUNNING
submission sets a per-submission ``threading.Event`` that real backends
poll (:meth:`~repro.savanna.realexec.RealExecutor.execute` takes the
graceful-interrupt path: unfinished runs report ``"interrupted"`` and
compact to PENDING, so a later ``resume=True`` re-submission picks up
exactly where the cancel struck); simulated backends honour it between
groups.

Observability: the service owns a thread-safe wall-clock *monitoring
bus* (:attr:`CampaignService.bus`).  Lifecycle instants
(``service.submitted`` / ``service.started`` / ``service.finished`` /
``service.cancelled`` / ``service.saturated``) are emitted there, and
every event from each submission's own execution bus is forwarded onto
it tagged with ``submission=``, ``tenant=``, ``backend=``, and
``trace_id=`` fields.  The forwarded
feed interleaves many concurrent campaigns, so treat it as a monitoring
stream (filter by ``submission``), not a strict single-campaign trace —
per-submission checkpoints and ``report=True`` analytics ride each
submission's *own* bus and stay exact.

``docs/campaign_service.md`` walks the full lifecycle, the fair-share
semantics, and the cancellation + resume guarantees.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.cheetah.manifest import CampaignManifest
from repro.lint.engine import CampaignLintError, lint_app_fn, suppressions_of
from repro.observability import (
    SERVICE_CANCELLED,
    SERVICE_FINISHED,
    SERVICE_SATURATED,
    SERVICE_STARTED,
    SERVICE_SUBMITTED,
    EventBus,
    new_trace_id,
)
from repro.observability.live import TelemetrySampler, TelemetryServer
from repro.savanna.backends import backend_kind
from repro.savanna.drive import _pool_of, execute_campaign
from repro.savanna.realexec import wall_clock_bus


class SubmissionState(Enum):
    """Lifecycle of one submitted campaign.

    ``QUEUED -> RUNNING -> DONE | FAILED | CANCELLED``; a QUEUED
    submission may go straight to CANCELLED.  Terminal states never
    change again.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (
            SubmissionState.DONE,
            SubmissionState.FAILED,
            SubmissionState.CANCELLED,
        )


class ServiceSaturated(RuntimeError):
    """Raised by :meth:`CampaignService.submit` when the queue is full.

    Backpressure made loud: the service refuses new work instead of
    buffering unboundedly (one ``service.saturated`` instant is emitted
    first, so monitors see shed load even when callers swallow the
    exception).
    """


class ThreadSafeBus(EventBus):
    """An :class:`EventBus` whose ``emit`` is serialized by a lock.

    The base bus assumes a single emitting thread (the simulator, or one
    drive call); the service's monitoring bus receives events from the
    event loop *and* from every worker thread concurrently, so emission
    — the seq counter, subscriber delivery — must be atomic.
    Subscribers still run synchronously, now under the lock: keep them
    fast and never have one emit back into the same bus (deadlock by
    design, as reentrancy would scramble ordering anyway).
    """

    def __init__(self, clock=None, name: str | None = None):
        super().__init__(clock=clock, name=name)
        self._emit_lock = threading.Lock()

    def emit(self, name, phase="instant", time=None, **fields):
        with self._emit_lock:
            return super().emit(name, phase=phase, time=time, **fields)


def service_bus(name: str = "campaign-service") -> ThreadSafeBus:
    """A thread-safe monitoring bus clocked by wall time, zeroed now."""
    import time as _time

    t0 = _time.monotonic()
    return ThreadSafeBus(clock=lambda: _time.monotonic() - t0, name=name)


@dataclass
class _Submission:
    """Internal per-submission record owned by the service."""

    id: str
    manifest: CampaignManifest
    backend: str
    priority: int
    tenant: str
    kwargs: dict
    seq: int
    state: SubmissionState = SubmissionState.QUEUED
    result: Any = None
    error: BaseException | None = None
    enqueued_at: float = 0.0
    #: Correlation id minted at submit time (or supplied by the caller);
    #: stamped on every lifecycle instant, forwarded execution event, and
    #: — for real backends — round-tripped through the worker processes.
    trace_id: str = ""
    #: Pre-queue FAIR5xx concurrency-safety verdict on the submission's
    #: ``app_fn`` (None for simulated backends or ``lint=False``).
    lint_report: Any = None
    #: Polled by the drive pipeline (real backends every 0.05s, simulated
    #: between groups) — set by :meth:`SubmissionHandle.cancel`.
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: Resolved exactly once, when the submission reaches a terminal state.
    done: asyncio.Event = field(default_factory=asyncio.Event)


class SubmissionHandle:
    """The caller's view of one submitted campaign.

    Returned by :meth:`CampaignService.submit`; offers exactly the three
    service verbs the ROADMAP asks for — ``status()``, ``wait()``,
    ``cancel()`` — plus the terminal ``result`` / ``error``.  All methods
    must be called from the service's event loop (the service is
    asyncio-native; hand the *handle* between tasks, not threads).
    """

    def __init__(self, service: "CampaignService", sub: _Submission):
        self._service = service
        self._sub = sub

    # -- identity ------------------------------------------------------------

    @property
    def id(self) -> str:
        """Service-assigned submission id (``sub-0000``, …) — the value
        carried by the ``submission=`` field on forwarded events."""
        return self._sub.id

    @property
    def campaign(self) -> str:
        return self._sub.manifest.campaign

    @property
    def tenant(self) -> str:
        return self._sub.tenant

    @property
    def priority(self) -> int:
        return self._sub.priority

    @property
    def trace_id(self) -> str:
        """The submission's correlation id — ``grep`` it in the
        :class:`~repro.observability.live.JsonLogSubscriber` output and
        the service lifecycle, drive pipeline, and in-worker events line
        up."""
        return self._sub.trace_id

    @property
    def lint_report(self):
        """The pre-queue concurrency-safety verdict on this submission's
        ``app_fn`` — a :class:`repro.lint.LintReport` carrying any
        WARNING/INFO findings the gate admitted (ERRORs never get a
        handle: :meth:`CampaignService.submit` raises instead).  ``None``
        for simulated backends or ``lint=False`` submissions."""
        return self._sub.lint_report

    # -- the three verbs -----------------------------------------------------

    def status(self) -> SubmissionState:
        """Current lifecycle state (non-blocking)."""
        return self._sub.state

    async def wait(self, timeout: float | None = None) -> SubmissionState:
        """Block until the submission reaches a terminal state.

        Returns that state; raises ``asyncio.TimeoutError`` if
        ``timeout`` (seconds) elapses first.  Never raises the
        submission's own error — inspect :attr:`error` / call
        :meth:`outcome` for that.
        """
        if timeout is None:
            await self._sub.done.wait()
        else:
            await asyncio.wait_for(self._sub.done.wait(), timeout)
        return self._sub.state

    def cancel(self) -> bool:
        """Request cancellation; returns True if anything was cancelled.

        A QUEUED submission is removed immediately (state CANCELLED, one
        ``service.cancelled`` instant with ``while="queued"``).  A
        RUNNING submission gets its cancel event set — the drive
        pipeline unwinds gracefully and the terminal ``service.cancelled``
        instant (``while="running"``) fires when it has; unfinished runs
        checkpoint as PENDING so a ``resume=True`` re-submission
        continues from the cut.  Terminal submissions return False.
        """
        return self._service._cancel(self._sub)

    # -- terminal outcome ----------------------------------------------------

    @property
    def result(self):
        """The drive result (``{group: CampaignResult|RealCampaignResult}``)
        once terminal — partial for a cancelled-while-running submission,
        ``None`` if it never started or failed before executing."""
        return self._sub.result

    @property
    def error(self) -> BaseException | None:
        """The exception that made the submission FAILED, if any."""
        return self._sub.error

    def outcome(self):
        """``result`` if the submission is DONE, else re-raise its error
        (FAILED) or ``RuntimeError`` (CANCELLED / not terminal yet)."""
        state = self._sub.state
        if state is SubmissionState.DONE:
            return self._sub.result
        if state is SubmissionState.FAILED and self._sub.error is not None:
            raise self._sub.error
        raise RuntimeError(f"submission {self._sub.id} is {state.value}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SubmissionHandle({self._sub.id}: {self.campaign!r} "
            f"[{self._sub.state.value}], tenant={self._sub.tenant!r}, "
            f"priority={self._sub.priority})"
        )


class CampaignService:
    """Long-lived asyncio orchestration layer over the drive pipeline.

    Parameters
    ----------
    max_workers:
        Bound on concurrently *executing* submissions (each occupies one
        ``asyncio.to_thread`` worker for its whole drive).  This is the
        service's concurrency, independent of each backend's own
        ``max_workers`` worker-slot pool.
    max_queue_depth:
        Bound on submissions waiting in state QUEUED.  When reached,
        :meth:`submit` emits ``service.saturated`` and raises
        :class:`ServiceSaturated` — explicit backpressure instead of an
        unbounded buffer.
    bus:
        The monitoring bus; defaults to a fresh thread-safe wall-clock
        bus (:func:`service_bus`).  Must be safe for concurrent emission
        if you bring your own.
    serve_telemetry:
        When True, attach a
        :class:`~repro.observability.live.TelemetrySampler` to the
        monitoring bus and serve it over HTTP for the service's lifetime
        — Prometheus text at ``/metrics``, JSON at ``/status`` (see
        ``docs/telemetry.md``).  Off by default: no sampler, no socket,
        zero overhead.
    telemetry_port:
        Port for the telemetry server (default 0 = ephemeral; read
        :attr:`telemetry_server` ``.address`` after :meth:`start`).
        Ignored unless ``serve_telemetry=True``.

    Use as an async context manager (``async with service:``), or call
    :meth:`start` / :meth:`stop` explicitly.  ``submit`` may be called
    before ``start``; queued work begins when the workers do.
    """

    def __init__(
        self,
        max_workers: int = 2,
        max_queue_depth: int = 16,
        bus: EventBus | None = None,
        serve_telemetry: bool = False,
        telemetry_port: int = 0,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.max_workers = max_workers
        self.max_queue_depth = max_queue_depth
        self.bus = bus if bus is not None else service_bus()
        self.telemetry: TelemetrySampler | None = None
        self.telemetry_server: TelemetryServer | None = None
        if serve_telemetry:
            self.telemetry = TelemetrySampler(capacity=max_workers).attach(self.bus)
            self.telemetry_server = TelemetryServer(
                self.telemetry, port=telemetry_port
            )
        self._queue: list[_Submission] = []  # QUEUED, scheduler picks from here
        self._submissions: dict[str, _Submission] = {}
        self._served: dict[str, int] = {}  # {tenant: submissions started}
        self._ids = itertools.count()
        self._wake = asyncio.Event()
        self._workers: list[asyncio.Task] = []
        self._closing = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker pool (idempotent); with ``serve_telemetry``,
        also bind the telemetry HTTP listener."""
        if self._workers:
            return
        self._closing = False
        if self.telemetry_server is not None:
            self.telemetry_server.start()
        self._workers = [
            asyncio.create_task(self._worker(), name=f"campaign-service-{i}")
            for i in range(self.max_workers)
        ]

    async def stop(self, drain: bool = True) -> None:
        """Shut the service down.

        ``drain=True`` (default) lets queued and running submissions
        finish first; ``drain=False`` cancels everything still QUEUED
        and interrupts everything RUNNING, then waits for the workers to
        unwind.  Either way every submission is terminal when this
        returns.
        """
        self._closing = True
        if not drain:
            for sub in list(self._queue):
                self._cancel(sub)
            for sub in self._submissions.values():
                if sub.state is SubmissionState.RUNNING:
                    sub.cancel_event.set()
        self._wake.set()
        if self._workers:
            await asyncio.gather(*self._workers)
            self._workers = []
        if self.telemetry_server is not None:
            self.telemetry_server.stop()

    async def __aenter__(self) -> "CampaignService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop(drain=exc_info[0] is None)

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        manifest: CampaignManifest,
        *,
        backend: str = "local-threads",
        priority: int = 0,
        tenant: str = "default",
        **drive_kwargs,
    ) -> SubmissionHandle:
        """Enqueue one campaign for execution; returns its handle.

        ``drive_kwargs`` are handed verbatim to
        :func:`~repro.savanna.drive.execute_campaign` — the full
        per-submission middleware surface: ``duration_model`` +
        ``cluster`` (simulated backends), ``app_fn`` + ``max_workers`` +
        ``retry_policy`` + ``seed`` (real backends), and ``directory``,
        ``resume``, ``lint``, ``report`` for everyone.  Higher
        ``priority`` schedules sooner; ``tenant`` is the fair-share
        accounting unit.

        Raises :class:`ServiceSaturated` when ``max_queue_depth``
        submissions are already waiting, and ``KeyError`` for an unknown
        backend (checked here, at submit time, not when a worker fails
        later).

        Real-backend submissions with an ``app_fn`` are concurrency-linted
        *before* queueing: an ERROR-severity FAIR5xx finding raises
        :class:`~repro.lint.engine.CampaignLintError` here, at the submit
        call site, rather than crashing a worker mid-campaign.  The
        verdict (including admitted WARNINGs) rides on
        :attr:`SubmissionHandle.lint_report`; suppress via the manifest's
        ``lint.suppress`` metadata or ``lint=False``.
        """
        if self._closing:
            raise RuntimeError("service is stopping; submissions are closed")
        backend_kind(backend)  # unknown backend fails at submit time
        lint_report = None
        app_fn = drive_kwargs.get("app_fn")
        if (
            backend_kind(backend) == "real"
            and app_fn is not None
            and drive_kwargs.get("lint", True)
        ):
            lint_report = lint_app_fn(
                app_fn,
                pool=_pool_of(backend),
                suppress=suppressions_of(manifest),
                subject=f"{manifest.campaign} app_fn",
            )
            if lint_report.errors:
                raise CampaignLintError(lint_report, campaign=manifest.campaign)
        if len(self._queue) >= self.max_queue_depth:
            self.bus.emit(
                SERVICE_SATURATED,
                queued=len(self._queue),
                limit=self.max_queue_depth,
                campaign=manifest.campaign,
                tenant=tenant,
            )
            raise ServiceSaturated(
                f"submission queue is full ({len(self._queue)}/"
                f"{self.max_queue_depth} queued); retry later or raise "
                "max_queue_depth"
            )
        seq = next(self._ids)
        trace_id = drive_kwargs.get("trace_id") or new_trace_id()
        drive_kwargs["trace_id"] = trace_id
        sub = _Submission(
            id=f"sub-{seq:04d}",
            manifest=manifest,
            backend=backend,
            priority=priority,
            tenant=tenant,
            kwargs=dict(drive_kwargs),
            lint_report=lint_report,
            seq=seq,
            enqueued_at=self._now(),
            trace_id=trace_id,
        )
        self._queue.append(sub)
        self._submissions[sub.id] = sub
        self.bus.emit(
            SERVICE_SUBMITTED,
            submission=sub.id,
            campaign=manifest.campaign,
            tenant=tenant,
            priority=priority,
            backend=backend,
            trace_id=trace_id,
        )
        self._wake.set()
        return SubmissionHandle(self, sub)

    # -- introspection -------------------------------------------------------

    def submissions(self) -> dict[str, SubmissionState]:
        """``{submission id: state}`` for everything ever submitted."""
        return {sid: sub.state for sid, sub in self._submissions.items()}

    @property
    def queued(self) -> int:
        return len(self._queue)

    @property
    def running(self) -> int:
        return sum(
            1
            for sub in self._submissions.values()
            if sub.state is SubmissionState.RUNNING
        )

    @property
    def saturated(self) -> bool:
        """True when the next :meth:`submit` would raise
        :class:`ServiceSaturated`."""
        return len(self._queue) >= self.max_queue_depth

    # -- scheduling ----------------------------------------------------------

    def _pick_next(self) -> _Submission | None:
        """Priority first, fair-share second, submission order third.

        Fair share is *least served wins*: among equal priorities the
        tenant with the fewest submissions started so far goes next, so
        tenants interleave regardless of who flooded the queue first.
        Runs on the event loop only — no lock needed, and the winner is
        marked RUNNING before any await can let another worker look.
        """
        if not self._queue:
            return None
        best = min(
            self._queue,
            key=lambda s: (-s.priority, self._served.get(s.tenant, 0), s.seq),
        )
        self._queue.remove(best)
        return best

    # -- execution -----------------------------------------------------------

    def _now(self) -> float:
        return self.bus.clock() if self.bus.clock is not None else 0.0

    async def _worker(self) -> None:
        while True:
            sub = self._pick_next()
            if sub is None:
                if self._closing:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            await self._run_one(sub)

    async def _run_one(self, sub: _Submission) -> None:
        sub.state = SubmissionState.RUNNING
        self._served[sub.tenant] = self._served.get(sub.tenant, 0) + 1
        started = self._now()
        self.bus.emit(
            SERVICE_STARTED,
            submission=sub.id,
            campaign=sub.manifest.campaign,
            tenant=sub.tenant,
            backend=sub.backend,
            queued_for=started - sub.enqueued_at,
            trace_id=sub.trace_id,
        )
        try:
            sub.result = await asyncio.to_thread(self._drive, sub)
        except Exception as exc:  # noqa: BLE001 - per-submission isolation
            sub.error = exc
            sub.state = SubmissionState.FAILED
        else:
            if sub.cancel_event.is_set():
                sub.state = SubmissionState.CANCELLED
            else:
                sub.state = SubmissionState.DONE
        elapsed = self._now() - started
        if sub.state is SubmissionState.CANCELLED:
            self.bus.emit(
                SERVICE_CANCELLED,
                submission=sub.id,
                campaign=sub.manifest.campaign,
                tenant=sub.tenant,
                backend=sub.backend,
                trace_id=sub.trace_id,
                **{"while": "running"},
            )
        else:
            self.bus.emit(
                SERVICE_FINISHED,
                submission=sub.id,
                campaign=sub.manifest.campaign,
                tenant=sub.tenant,
                backend=sub.backend,
                outcome=sub.state.value,
                elapsed=elapsed,
                error=str(sub.error) if sub.error is not None else None,
                trace_id=sub.trace_id,
            )
        sub.done.set()

    def _drive(self, sub: _Submission) -> dict:
        """One submission's whole drive pipeline (runs in a worker thread).

        Wires the per-submission execution bus (a fresh wall-clock bus
        for real backends, the cluster's own bus for simulated ones) and
        forwards its events onto the monitoring bus tagged with the
        submission id — then hands everything to
        :func:`~repro.savanna.drive.execute_campaign`, cancel signal
        included.
        """
        kwargs = dict(sub.kwargs)
        if backend_kind(sub.backend) == "real":
            ebus = kwargs.setdefault("bus", wall_clock_bus(f"service-{sub.id}"))
        else:
            cluster = kwargs.get("cluster")
            ebus = cluster.bus if cluster is not None else None

        unsubscribe = None
        if ebus is not None:

            def forward(event) -> None:
                fields = dict(event.fields)
                fields.setdefault("submission", sub.id)
                fields.setdefault("tenant", sub.tenant)
                fields.setdefault("backend", sub.backend)
                fields.setdefault("trace_id", sub.trace_id)
                self.bus.emit(event.name, phase=event.phase, **fields)

            unsubscribe = ebus.subscribe(forward)
        try:
            return execute_campaign(
                sub.manifest,
                backend=sub.backend,
                cancel=sub.cancel_event,
                **kwargs,
            )
        finally:
            if unsubscribe is not None:
                unsubscribe()

    # -- cancellation --------------------------------------------------------

    def _cancel(self, sub: _Submission) -> bool:
        if sub.state is SubmissionState.QUEUED:
            self._queue.remove(sub)
            sub.state = SubmissionState.CANCELLED
            self.bus.emit(
                SERVICE_CANCELLED,
                submission=sub.id,
                campaign=sub.manifest.campaign,
                tenant=sub.tenant,
                backend=sub.backend,
                trace_id=sub.trace_id,
                **{"while": "queued"},
            )
            sub.done.set()
            return True
        if sub.state is SubmissionState.RUNNING:
            sub.cancel_event.set()
            return True
        return False
