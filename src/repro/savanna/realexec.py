"""Real execution engine: genuine Python work behind the manifest boundary.

The manifest layer exists so "existing workflow tools that provide
efficient implementations for workflow patterns such as bag-of-tasks" can
be swapped in behind the campaign abstraction (§IV).  This module is the
production face of that promise: one engine, two pools —

- ``pool="threads"`` — :class:`concurrent.futures.ThreadPoolExecutor`;
  right when the workload releases the GIL (numpy kernels, I/O).
- ``pool="processes"`` — :class:`concurrent.futures.ProcessPoolExecutor`;
  right when the workload is CPU-bound Python that *holds* the GIL.
  Task specs are picklable by construction and the app callable must be
  too (a module-level function, not a lambda or closure).

Unlike the original side-door thread runner, the engine speaks the same
language as the simulated backends: it enforces a
:class:`~repro.resilience.RetryPolicy` (backoff delays, per-attempt
timeouts, allocation retry budgets), and it narrates itself on an
:class:`~repro.observability.EventBus` with the standard
``campaign``/``alloc``/``task`` span taxonomy over *wall-clock* time
(worker slots stand in for nodes), so checkpoint journaling and trace
analytics work on real runs exactly as on simulated ones.  Drive it
through :func:`repro.savanna.drive.execute_manifest` with
``backend="local-threads"`` or ``backend="local-processes"``.

Determinism: every run gets a seed derived from the engine's base seed
and its ``run_id`` alone (:func:`seed_for_run`); the worker seeds
``random`` and numpy's legacy global RNG before calling the app, so a
campaign executed twice — or resumed on a different pool — reproduces
per-run randomness exactly.

Cancellation: ``KeyboardInterrupt`` is caught, queued futures are
cancelled (``shutdown(cancel_futures=True)``), one
``campaign.interrupted`` instant is emitted, and the partial results come
back with ``status="interrupted"`` on everything unfinished — a resumed
drive re-queues exactly those runs.  The same graceful path is reachable
programmatically: pass ``cancel=threading.Event()`` (or any zero-argument
truth test) to :meth:`RealExecutor.execute` and set it from another
thread — this is how :class:`repro.savanna.service.CampaignService`
cancels a running submission without owning the executing thread.

Caveats (documented, not hidden): a *running* attempt cannot be killed
mid-flight by either pool, so a timed-out attempt is marked failed and
its worker slot is reclaimed only when the stale call actually returns;
with ``chunk_size > 1`` task spans cover their whole chunk (submission
batching trades span fidelity for IPC amortization).
"""

from __future__ import annotations

import heapq
import itertools
import os
import pickle
import random
import threading
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field, replace
from typing import Any, Callable
from zlib import crc32

from repro._util import check_positive
from repro.cheetah.manifest import CampaignManifest
from repro.observability import (
    ALLOC,
    ALLOC_SUBMITTED,
    BEGIN,
    CAMPAIGN,
    CAMPAIGN_INTERRUPTED,
    END,
    INSTANT,
    TASK,
    TASK_RETRY,
    TASK_TIMEOUT,
    EventBus,
)
from repro.resilience.policy import RetryPolicy, as_policy

#: Pool kinds the engine accepts.
POOLS = ("threads", "processes")

#: How often (seconds) the engine loop re-checks an external ``cancel=``
#: signal while blocked waiting on in-flight futures.
_CANCEL_POLL_INTERVAL = 0.05


class CampaignCancelled(BaseException):
    """Internal control-flow signal: an external ``cancel=`` fired.

    A ``BaseException`` (like ``KeyboardInterrupt``, whose graceful
    shutdown path it shares) so an app callable's blanket ``except
    Exception`` cannot swallow a cancellation.  Never escapes
    :meth:`RealExecutor.execute` — callers observe
    ``result.interrupted`` instead.
    """


def seed_for_run(base_seed: int, run_id: str) -> int:
    """Deterministic per-run seed from the base seed and the run id alone.

    Stable across processes, pools, and resumes (no wall-clock entropy,
    no hash randomization) — the contract the paper's reproducibility
    gauges require of anything calling itself deterministic.
    """
    return crc32(f"{base_seed}:{run_id}".encode()) & 0x7FFFFFFF


def wall_clock_bus(name: str = "realexec") -> EventBus:
    """An :class:`EventBus` clocked by wall time, zeroed at creation.

    Real executions have no simulator to clock their bus; this gives the
    trace a meaningful time base (seconds since the drive started) so
    span durations are real elapsed seconds.
    """
    t0 = time.monotonic()
    return EventBus(clock=lambda: time.monotonic() - t0, name=name)


@dataclass(frozen=True)
class RealTaskSpec:
    """Picklable description of one attempt — everything a worker needs.

    Frozen so an instance can cross the process boundary and be reused
    (``dataclasses.replace`` mints the next attempt).
    """

    run_id: str
    parameters: dict
    seed: int
    attempt: int = 1
    #: Correlation id of the owning execution — crosses the process
    #: boundary with the spec and is round-tripped through the worker's
    #: :class:`_AttemptOutcome`, so a ``task`` END event's trace id is
    #: proof the *worker* saw it, not just the driver.
    trace_id: str | None = None

    def ensure_picklable(self) -> None:
        """Raise ``TypeError`` naming the offending parameter when this
        spec cannot cross a process boundary.

        A bare ``pickle.dumps(spec)`` failure reports only the leaf type
        (``cannot pickle '_thread.lock' object``), forcing a bisection
        over the parameter dict; this probes each value individually so
        the error says *which* key to fix.
        """
        try:
            pickle.dumps(self)
            return
        except Exception as exc:  # noqa: BLE001 - re-raised with context below
            cause = exc
        offenders = []
        for key, value in sorted(self.parameters.items()):
            try:
                pickle.dumps(value)
            except Exception:  # noqa: BLE001 - the probe *is* the test
                offenders.append(f"{key!r} ({type(value).__module__}.{type(value).__qualname__})")
        detail = (
            f"unpicklable parameter(s) {', '.join(offenders)}"
            if offenders
            else f"spec does not pickle: {cause}"
        )
        raise TypeError(
            f"run {self.run_id!r}: {detail}; pool='processes' requires every "
            "parameter value to pickle (use pool='threads' or pass "
            "picklable handles instead)"
        ) from cause


@dataclass
class LocalRunResult:
    """Outcome of one really-executed run."""

    run_id: str
    status: str  # "done" | "failed" | "interrupted"
    value: Any = None
    error: str | None = None
    elapsed: float = 0.0
    #: Full ``traceback.format_exc()`` of the failing attempt — a failed
    #: real run must be debuggable, not summarized to one line.
    traceback: str | None = None
    attempts: int = 1
    seed: int | None = None


@dataclass
class RealCampaignResult:
    """Aggregate outcome of one real campaign execution."""

    results: dict = field(default_factory=dict)  # {run_id: LocalRunResult}
    interrupted: bool = False
    elapsed: float = 0.0
    pool: str = "threads"

    @property
    def completed(self) -> list:
        return [r for r in self.results.values() if r.status == "done"]

    @property
    def failed(self) -> list:
        return [r for r in self.results.values() if r.status == "failed"]

    @property
    def unfinished(self) -> list:
        return [r for r in self.results.values() if r.status == "interrupted"]

    def statuses(self) -> dict:
        return {run_id: r.status for run_id, r in self.results.items()}

    def values(self) -> dict:
        """``{run_id: value}`` for the completed runs."""
        return {rid: r.value for rid, r in self.results.items() if r.status == "done"}

    @property
    def all_done(self) -> bool:
        return bool(self.results) and all(
            r.status == "done" for r in self.results.values()
        )

    def summary(self) -> str:
        parts = [
            f"{len(self.completed)}/{len(self.results)} runs done",
            f"{len(self.failed)} failed",
        ]
        if self.unfinished:
            parts.append(f"{len(self.unfinished)} interrupted")
        return f"{', '.join(parts)} on {self.pool} in {self.elapsed:.2f}s wall"


@dataclass
class _AttemptOutcome:
    """What one worker call reports back (picklable by construction)."""

    run_id: str
    ok: bool
    value: Any = None
    error: str | None = None
    traceback: str | None = None
    elapsed: float = 0.0
    #: ``spec.trace_id`` echoed back from inside the worker.
    trace_id: str | None = None


def _run_attempt(app_fn, spec: RealTaskSpec, ensure_picklable: bool) -> _AttemptOutcome:
    """Execute one attempt inside a worker.  Catches ``Exception`` (never
    ``KeyboardInterrupt``) so a failing run reports instead of raising —
    process workers mangle remote tracebacks otherwise."""
    random.seed(spec.seed)
    try:  # numpy is the dominant science dependency; seed it when present
        import numpy

        numpy.random.seed(spec.seed % (2**32))
    except ImportError:  # pragma: no cover - numpy ships with this repo
        pass
    t0 = time.perf_counter()
    try:
        value = app_fn(dict(spec.parameters))
        if ensure_picklable:
            # Fail *here*, with a clear message, rather than poisoning
            # the result pipe back to the driver.
            try:
                pickle.dumps(value)
            except Exception as exc:  # noqa: BLE001 - named, not bisected
                raise TypeError(
                    f"run {spec.run_id!r}: unpicklable return value "
                    f"({type(value).__module__}.{type(value).__qualname__}); "
                    "pool='processes' requires picklable results"
                ) from exc
        return _AttemptOutcome(
            run_id=spec.run_id,
            ok=True,
            value=value,
            elapsed=time.perf_counter() - t0,
            trace_id=spec.trace_id,
        )
    except Exception as exc:  # noqa: BLE001 - per-run fault isolation
        return _AttemptOutcome(
            run_id=spec.run_id,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
            elapsed=time.perf_counter() - t0,
            trace_id=spec.trace_id,
        )


def _run_chunk(app_fn, specs, ensure_picklable: bool) -> list:
    """Worker entry point: execute a chunk of specs sequentially."""
    return [_run_attempt(app_fn, spec, ensure_picklable) for spec in specs]


@dataclass
class _Inflight:
    """Book-keeping for one submitted chunk."""

    chunk: list  # list[RealTaskSpec]
    slot: int
    task_ids: dict  # {run_id: task_id} for the open task spans
    deadline: float | None  # monotonic seconds, None = uncapped
    timeout: float | None  # the per-attempt cap that set the deadline


class RealExecutor:
    """Execute every run of a manifest by calling ``app_fn(parameters)``.

    Parameters
    ----------
    max_workers:
        Concurrent worker slots (threads or processes).
    pool:
        ``"threads"`` or ``"processes"`` (see module docstring for when
        each wins).
    retry_policy:
        A :class:`~repro.resilience.RetryPolicy`, a legacy ``max_retries``
        int, or ``None`` for no retries.  Backoff delays are real sleeps;
        per-attempt timeouts mark overdue attempts failed (the stale call
        keeps its slot until it actually returns — neither pool can kill
        a running call).
    seed:
        Base seed for per-run deterministic seeding (:func:`seed_for_run`).
    chunk_size:
        Specs submitted per worker call.  ``1`` (default) preserves
        per-task span fidelity; larger values amortize IPC for very short
        tasks (spans then cover the whole chunk; failed specs retry
        individually).
    mp_context:
        Optional multiprocessing start-method name (``"fork"``,
        ``"spawn"``, ``"forkserver"``) for the process pool.
    profile_interval:
        When set (seconds), run a
        :class:`~repro.observability.live.WorkerResourceProfiler` for
        the duration of each :meth:`execute` call: every interval one
        ``worker.sample`` instant per pool worker (CPU seconds, CPU %,
        RSS) lands on the bus — per worker *process* under
        ``pool="processes"``, for the driver process (all threads share
        it) under ``pool="threads"``.  ``None`` (default) profiles
        nothing and adds no thread.
    """

    pool_kind = "real"  # executor-protocol marker (vs simulated make_run)

    def __init__(
        self,
        max_workers: int = 4,
        pool: str = "threads",
        retry_policy: RetryPolicy | int | None = None,
        seed: int = 0,
        chunk_size: int = 1,
        mp_context: str | None = None,
        profile_interval: float | None = None,
    ):
        check_positive("max_workers", max_workers)
        check_positive("chunk_size", chunk_size)
        if pool not in POOLS:
            raise ValueError(f"pool must be one of {POOLS}, got {pool!r}")
        if profile_interval is not None:
            check_positive("profile_interval", profile_interval)
        self.max_workers = max_workers
        self.pool = pool
        self.retry_policy = as_policy(retry_policy)
        self.seed = int(seed)
        self.chunk_size = int(chunk_size)
        self.mp_context = mp_context
        self.profile_interval = profile_interval

    # -- pool construction ---------------------------------------------------

    def _make_pool(self):
        if self.pool == "threads":
            return ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="realexec"
            )
        kwargs = {}
        if self.mp_context is not None:
            import multiprocessing

            kwargs["mp_context"] = multiprocessing.get_context(self.mp_context)
        return ProcessPoolExecutor(max_workers=self.max_workers, **kwargs)

    # -- compat surface ------------------------------------------------------

    def run(
        self,
        manifest: CampaignManifest,
        app_fn: Callable[[dict], Any],
        run_filter: Callable[[str], bool] | None = None,
    ) -> dict:
        """Execute the campaign; returns ``{run_id: LocalRunResult}``.

        The original ``LocalExecutor`` contract, kept for the examples
        and anyone holding the manifest directly; :meth:`execute` is the
        full-featured engine entry the drive layer uses.
        """
        return self.execute(manifest, app_fn, run_filter=run_filter).results

    # -- the engine ----------------------------------------------------------

    def execute(
        self,
        manifest: CampaignManifest,
        app_fn: Callable[[dict], Any],
        *,
        run_filter: Callable[[str], bool] | None = None,
        bus: EventBus | None = None,
        name: str | None = None,
        cancel=None,
        trace_id: str | None = None,
    ) -> RealCampaignResult:
        """Execute (a filtered subset of) a manifest on the worker pool.

        Emits one ``campaign`` span wrapping one ``alloc`` span (the pool
        session; worker slots are its "nodes") wrapping one ``task`` span
        per attempt, plus ``task.retry`` / ``task.timeout`` instants —
        the exact taxonomy the checkpoint journal and the trace analytics
        consume.  Raises ``ValueError`` on duplicate ``run_id``s rather
        than silently keeping the last result.

        ``cancel`` is an optional external stop signal — a
        ``threading.Event`` or any zero-argument callable returning
        truthy to stop.  It is polled between submissions (and at least
        every ``0.05s`` while blocked on in-flight work); once set, the
        engine takes the same graceful path as ``Ctrl-C``: queued futures
        are cancelled, one ``campaign.interrupted`` instant is emitted,
        and unfinished runs come back ``status="interrupted"`` (resumable
        — they compact to PENDING in the checkpoint journal).  Running
        attempts still cannot be killed mid-flight; they are abandoned to
        the pool.

        ``trace_id`` (optional) is stamped on every event this call
        emits *and* into every :class:`RealTaskSpec`, whose worker
        echoes it back — the ``task`` END events carry the worker-
        round-tripped value, proving propagation into the pool.
        """
        selected = [
            r for r in manifest.runs if run_filter is None or run_filter(r.run_id)
        ]
        seen: set = set()
        duplicates = sorted(
            {r.run_id for r in selected if r.run_id in seen or seen.add(r.run_id)}
        )
        if duplicates:
            raise ValueError(
                f"duplicate run_ids in manifest (results would silently "
                f"overwrite each other): {duplicates}"
            )
        if bus is None:
            bus = EventBus(name="realexec")  # unobserved: emits are no-ops
        name = name or manifest.campaign
        cancelled = (
            cancel.is_set if hasattr(cancel, "is_set") else cancel
        )  # Event or plain callable

        # One time base for events: the bus clock when it has one (the
        # drive layer's wall bus, or any caller-provided clock), else
        # seconds since this call started.
        t0 = time.monotonic()
        if bus.clock is not None:
            now = bus.clock
        else:
            now = lambda: time.monotonic() - t0

        # The profiler thread emits onto the same (possibly plain,
        # single-emitter) bus as the engine loop, so when profiling is
        # on, every emission from this call is serialized by one lock.
        emit_lock = threading.Lock() if self.profile_interval is not None else None

        def emit(event_name, phase=INSTANT, **fields):
            if trace_id is not None:
                fields.setdefault("trace_id", trace_id)
            if emit_lock is not None:
                with emit_lock:
                    bus.emit(event_name, phase=phase, time=now(), **fields)
            else:
                bus.emit(event_name, phase=phase, time=now(), **fields)

        result = RealCampaignResult(pool=self.pool)
        job = f"{name}-pool"
        slots = tuple(range(self.max_workers))
        task_ids = itertools.count()
        tiebreak = itertools.count()

        specs = [
            RealTaskSpec(
                run_id=r.run_id,
                parameters=dict(r.parameters),
                seed=seed_for_run(self.seed, r.run_id),
                trace_id=trace_id,
            )
            for r in selected
        ]
        pending: deque = deque(
            list(specs[i : i + self.chunk_size])
            for i in range(0, len(specs), self.chunk_size)
        )
        delayed: list = []  # heap[(ready_at_monotonic, tiebreak, spec)]
        running: dict = {}  # {future: _Inflight}
        abandoned: dict = {}  # {stale future: slot} (timed out, still running)
        free_slots = list(reversed(slots))
        retries_used: dict = {}  # {run_id: retries granted}
        budget_spent = 0
        ensure_picklable = self.pool == "processes"
        if ensure_picklable:
            # Fail before the pool spins up, naming the offending key —
            # otherwise the pickle error surfaces as an opaque result-pipe
            # failure on whichever chunk carried the bad spec.
            for spec in specs:
                spec.ensure_picklable()

        emit(CAMPAIGN, BEGIN, campaign=name, tasks=len(selected), max_allocations=1)
        emit(ALLOC_SUBMITTED, job=job, nodes=self.max_workers, walltime=None)
        emit(ALLOC, BEGIN, alloc=0, job=job, nodes=list(slots), deadline=None)

        def record_terminal(spec, outcome: _AttemptOutcome, status: str) -> None:
            result.results[spec.run_id] = LocalRunResult(
                run_id=spec.run_id,
                status=status,
                value=outcome.value if status == "done" else None,
                error=outcome.error,
                traceback=outcome.traceback,
                elapsed=outcome.elapsed,
                attempts=spec.attempt,
                seed=spec.seed,
            )

        def consider_retry(spec, task_id, outcome: _AttemptOutcome, reason: str) -> None:
            """Failed attempt: grant a policy retry or record the terminal
            failure."""
            nonlocal budget_spent
            used = retries_used.get(spec.run_id, 0)
            budget = self.retry_policy.allocation_budget
            if self.retry_policy.allows(used) and (
                budget is None or budget_spent < budget
            ):
                retries_used[spec.run_id] = used + 1
                budget_spent += 1
                delay = self.retry_policy.delay(used + 1)
                emit(
                    TASK_RETRY,
                    task=spec.run_id,
                    task_id=task_id,
                    retries=used + 1,
                    delay=delay,
                    reason=reason,
                )
                heapq.heappush(
                    delayed,
                    (
                        time.monotonic() + delay,
                        next(tiebreak),
                        replace(spec, attempt=spec.attempt + 1),
                    ),
                )
            else:
                record_terminal(spec, outcome, "failed")

        def submit(pool, chunk) -> None:
            slot = free_slots.pop()
            ids = {}
            for spec in chunk:
                tid = next(task_ids)
                ids[spec.run_id] = tid
                emit(
                    TASK,
                    BEGIN,
                    task=spec.run_id,
                    task_id=tid,
                    node=slot,
                    nodes=[slot],
                    attempt=spec.attempt,
                    payload=dict(spec.parameters),
                )
            timeout = self.retry_policy.timeout_for(chunk[0])
            deadline = (
                time.monotonic() + timeout * len(chunk) if timeout is not None else None
            )
            try:
                future = pool.submit(_run_chunk, app_fn, chunk, ensure_picklable)
            except Exception as exc:  # broken pool: fail the chunk, keep draining
                free_slots.append(slot)
                for spec in chunk:
                    synthetic = _AttemptOutcome(
                        run_id=spec.run_id,
                        ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                        traceback=traceback.format_exc(),
                    )
                    emit(
                        TASK,
                        END,
                        task=spec.run_id,
                        task_id=ids[spec.run_id],
                        node=slot,
                        outcome="failed",
                    )
                    record_terminal(spec, synthetic, "failed")
                return
            running[future] = _Inflight(
                chunk=list(chunk),
                slot=slot,
                task_ids=ids,
                deadline=deadline,
                timeout=timeout,
            )

        def settle(info: _Inflight, outcomes: list) -> None:
            """Fold one finished chunk's outcomes into results/retries.

            The END event's trace id is the *worker-echoed* one (from the
            outcome, not the driver's variable) — its presence on the
            monitoring stream proves the id crossed the pool boundary.
            """
            for spec, outcome in zip(info.chunk, outcomes):
                tid = info.task_ids[spec.run_id]
                echoed = (
                    {"trace_id": outcome.trace_id}
                    if outcome.trace_id is not None
                    else {}
                )
                if outcome.ok:
                    emit(
                        TASK,
                        END,
                        task=spec.run_id,
                        task_id=tid,
                        node=info.slot,
                        outcome="done",
                        **echoed,
                    )
                    record_terminal(spec, outcome, "done")
                else:
                    emit(
                        TASK,
                        END,
                        task=spec.run_id,
                        task_id=tid,
                        node=info.slot,
                        outcome="failed",
                        **echoed,
                    )
                    consider_retry(spec, tid, outcome, reason="exception")

        def expire_overdue() -> None:
            """Per-attempt timeout: mark overdue chunks failed.  A chunk
            that cannot be cancelled keeps running detached; its slot
            comes back when the stale call returns."""
            mono = time.monotonic()
            for future, info in list(running.items()):
                if info.deadline is None or mono < info.deadline:
                    continue
                del running[future]
                if future.cancel():
                    free_slots.append(info.slot)
                else:
                    abandoned[future] = info.slot
                for spec in info.chunk:
                    tid = info.task_ids[spec.run_id]
                    emit(
                        TASK_TIMEOUT,
                        task=spec.run_id,
                        task_id=tid,
                        node=info.slot,
                        timeout=info.timeout,
                    )
                    emit(
                        TASK,
                        END,
                        task=spec.run_id,
                        task_id=tid,
                        node=info.slot,
                        outcome="failed",
                    )
                    synthetic = _AttemptOutcome(
                        run_id=spec.run_id,
                        ok=False,
                        error=(
                            f"TimeoutError: attempt exceeded the "
                            f"{info.timeout}s per-attempt cap"
                        ),
                        elapsed=info.timeout or 0.0,
                    )
                    consider_retry(spec, tid, synthetic, reason="timeout")

        pool = self._make_pool()
        profiler = None
        if self.profile_interval is not None:
            from repro.observability.live import WorkerResourceProfiler

            def worker_pids() -> dict:
                """Current ``{label: pid}`` — per worker process for the
                process pool (workers appear as the pool lazily spawns
                them), the shared driver process for the thread pool."""
                if self.pool == "processes":
                    procs = getattr(pool, "_processes", None) or {}
                    return {f"worker-{pid}": pid for pid in list(procs)}
                return {"driver": os.getpid()}

            profiler = WorkerResourceProfiler(
                emit,
                worker_pids,
                interval=self.profile_interval,
                trace_id=trace_id,
            ).start()
        try:
            while pending or delayed or running:
                if cancelled is not None and cancelled():
                    raise CampaignCancelled
                mono = time.monotonic()
                while delayed and delayed[0][0] <= mono:
                    pending.append([heapq.heappop(delayed)[2]])
                while pending and free_slots:
                    submit(pool, pending.popleft())
                wakeups = [d[0] for d in delayed[:1]]
                wakeups += [
                    i.deadline for i in running.values() if i.deadline is not None
                ]
                if cancelled is not None:  # poll the external stop signal
                    wakeups.append(time.monotonic() + _CANCEL_POLL_INTERVAL)
                wait_for = set(running) | set(abandoned)
                if not wait_for:
                    if wakeups:  # only backoff delays remain: sleep them off
                        time.sleep(max(0.0, min(wakeups) - time.monotonic()))
                    continue
                timeout = (
                    max(0.0, min(wakeups) - time.monotonic()) if wakeups else None
                )
                done, _ = wait(wait_for, timeout=timeout, return_when=FIRST_COMPLETED)
                for future in done:
                    if future in abandoned:  # stale timed-out call finished
                        free_slots.append(abandoned.pop(future))
                        continue
                    info = running.pop(future)
                    free_slots.append(info.slot)
                    try:
                        outcomes = future.result()
                    except (KeyboardInterrupt, SystemExit):
                        # Re-shelve so the interrupt handler below records
                        # this chunk's runs as interrupted too.
                        running[future] = info
                        raise
                    except CancelledError:  # pragma: no cover - defensive
                        continue
                    except Exception as exc:
                        # Result-pipe failures (unpicklable value without
                        # the guard, a worker killed under us, a broken
                        # pool): synthesize per-spec failures.
                        outcomes = [
                            _AttemptOutcome(
                                run_id=spec.run_id,
                                ok=False,
                                error=f"{type(exc).__name__}: {exc}",
                                traceback=traceback.format_exc(),
                            )
                            for spec in info.chunk
                        ]
                    settle(info, outcomes)
                expire_overdue()
            pool.shutdown(wait=not abandoned, cancel_futures=False)
        except (KeyboardInterrupt, CampaignCancelled):
            result.interrupted = True
            # Graceful cancellation: queued futures are cancelled, running
            # ones are left to die with the pool; nothing blocks.
            pool.shutdown(wait=False, cancel_futures=True)
            for info in running.values():
                for spec in info.chunk:
                    if spec.run_id in result.results:
                        continue
                    emit(
                        TASK,
                        END,
                        task=spec.run_id,
                        task_id=info.task_ids[spec.run_id],
                        node=info.slot,
                        outcome="interrupted",
                    )
                    record_terminal(
                        spec, _AttemptOutcome(run_id=spec.run_id, ok=False), "interrupted"
                    )
            for chunk in pending:
                for spec in chunk:
                    result.results.setdefault(
                        spec.run_id,
                        LocalRunResult(
                            run_id=spec.run_id,
                            status="interrupted",
                            attempts=spec.attempt,
                            seed=spec.seed,
                        ),
                    )
            for _ready, _tb, spec in delayed:
                result.results.setdefault(
                    spec.run_id,
                    LocalRunResult(
                        run_id=spec.run_id,
                        status="interrupted",
                        attempts=spec.attempt,
                        seed=spec.seed,
                    ),
                )
            emit(
                CAMPAIGN_INTERRUPTED,
                campaign=name,
                completed=len(result.completed),
                pending=len(result.unfinished),
            )
        finally:
            if profiler is not None:
                profiler.stop()  # takes one final sample before the span closes
            emit(
                ALLOC,
                END,
                alloc=0,
                job=job,
                reason="interrupted" if result.interrupted else "drained",
            )
            emit(
                CAMPAIGN,
                END,
                campaign=name,
                completed=len(result.completed),
                allocations=1,
            )
        result.elapsed = time.monotonic() - t0
        return result
