"""Shared executor machinery: outcome types and manifest→task mapping.

An executor consumes :class:`~repro.cluster.job.Task` objects.  Campaign
manifests carry parameters, not durations — durations belong to the
*application* — so :func:`tasks_from_manifest` takes a
:class:`DurationModel` mapping parameters to nominal run seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.cluster.job import Allocation, Task, TaskState
from repro.cluster.trace import UtilizationTrace


class DurationModel(Protocol):
    """Anything mapping a run's parameters to nominal wall seconds."""

    def __call__(self, parameters: dict) -> float: ...


class RealExecutorProtocol(Protocol):
    """The executor protocol of ``kind="real"`` backends.

    A real backend consumes the manifest directly (no duration model —
    real code takes however long it takes) and calls
    ``app_fn(parameters)`` per run, narrating ``campaign``/``alloc``/
    ``task`` spans onto ``bus``.  See
    :class:`~repro.savanna.realexec.RealExecutor`, the reference
    implementation behind ``"local-threads"`` and ``"local-processes"``.
    """

    def execute(
        self,
        manifest,
        app_fn: Callable[[dict], object],
        *,
        run_filter: Callable[[str], bool] | None = None,
        bus=None,
        name: str | None = None,
    ): ...


def tasks_from_manifest(manifest, duration_model: Callable[[dict], float]) -> list[Task]:
    """Materialize executor tasks for every run in a campaign manifest."""
    tasks = []
    for run in manifest.runs:
        duration = float(duration_model(run.parameters))
        if duration <= 0:
            raise ValueError(
                f"duration model returned {duration} for run {run.run_id!r}"
            )
        tasks.append(
            Task(
                name=run.run_id,
                duration=duration,
                nodes=run.nodes,
                payload=dict(run.parameters),
            )
        )
    return tasks


@dataclass
class AllocationOutcome:
    """What happened inside one batch allocation."""

    allocation: Allocation
    attempts: list = field(default_factory=list)  # list[TaskAttempt]
    completed: list = field(default_factory=list)  # list[Task]
    failed: list = field(default_factory=list)  # list[Task] (terminal failures)
    killed: list = field(default_factory=list)  # list[Task] (walltime kill)

    @property
    def completed_count(self) -> int:
        return len(self.completed)

    def last_activity(self) -> float:
        """Time the final attempt ended (allocation start if nothing ran)."""
        ends = [a.end for a in self.attempts if a.end is not None]
        return max(ends) if ends else self.allocation.start

    def trace(self, end: float | None = None) -> UtilizationTrace:
        """Utilization over ``[alloc start, end)`` (default: the deadline)."""
        end = end if end is not None else self.allocation.deadline
        return UtilizationTrace.from_nodes(
            self.allocation.nodes, self.allocation.start, end
        )


@dataclass
class CampaignResult:
    """Aggregate outcome of a (possibly multi-allocation) campaign execution."""

    tasks: list  # every Task handed to the executor
    outcomes: list = field(default_factory=list)  # list[AllocationOutcome]

    @property
    def completed(self) -> list:
        return [t for t in self.tasks if t.state is TaskState.DONE]

    @property
    def pending(self) -> list:
        return [
            t
            for t in self.tasks
            if t.state in (TaskState.PENDING, TaskState.KILLED, TaskState.FAILED)
        ]

    @property
    def all_done(self) -> bool:
        return all(t.state is TaskState.DONE for t in self.tasks)

    def completed_per_allocation(self) -> list[int]:
        return [o.completed_count for o in self.outcomes]

    def mean_completed_per_allocation(self) -> float:
        counts = self.completed_per_allocation()
        return sum(counts) / len(counts) if counts else 0.0

    def makespan(self) -> float:
        """Wall seconds from first allocation start to last activity."""
        if not self.outcomes:
            return 0.0
        start = min(o.allocation.start for o in self.outcomes)
        end = max(o.last_activity() for o in self.outcomes)
        return end - start

    def summary(self) -> str:
        """One-paragraph human summary of the campaign execution."""
        counts = self.completed_per_allocation()
        done = len(self.completed)
        total = len(self.tasks)
        lines = [
            f"{done}/{total} tasks completed over {len(self.outcomes)} "
            f"allocation(s); makespan {self.makespan():.0f}s"
        ]
        for i, outcome in enumerate(self.outcomes):
            lines.append(
                f"  allocation {i}: {counts[i]} done, "
                f"{len(outcome.failed)} failed, {len(outcome.killed)} killed, "
                f"{len(outcome.attempts)} attempts"
            )
        return "\n".join(lines)

    def check_conservation(self) -> None:
        """Invariant: every task is in exactly one terminal/pending bucket."""
        states = [t.state for t in self.tasks]
        done = sum(1 for s in states if s is TaskState.DONE)
        other = len(states) - done
        if done + other != len(self.tasks):  # pragma: no cover - tautology guard
            raise AssertionError("task conservation violated")
