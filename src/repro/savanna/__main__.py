"""Command-line entry point for the execution layer.

Usage::

    python -m repro.savanna --list-backends

prints the live executor-backend registry — name, kind (simulated vs
real), and what each engine is for — straight from
:mod:`repro.savanna.backends`, so the docs' backend tables can point
here instead of rotting.  Third-party backends registered by imported
plugins show up too: the output *is* the registry, not a hardcoded list.
"""

from __future__ import annotations

import argparse
import sys

from repro.savanna.backends import backend_descriptions, backend_kind


def format_backend_table() -> str:
    """The registry as a fixed-width table (one row per backend)."""
    rows = [
        (name, backend_kind(name), description)
        for name, description in sorted(backend_descriptions().items())
    ]
    name_w = max(len("backend"), *(len(r[0]) for r in rows))
    kind_w = max(len("kind"), *(len(r[1]) for r in rows))
    lines = [
        f"{'backend':<{name_w}}  {'kind':<{kind_w}}  description",
        f"{'-' * name_w}  {'-' * kind_w}  {'-' * 11}",
    ]
    for name, kind, description in rows:
        lines.append(f"{name:<{name_w}}  {kind:<{kind_w}}  {description}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.savanna",
        description="Savanna campaign-execution utilities.",
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="print the executor-backend registry (name, kind, description)",
    )
    args = parser.parse_args(argv)
    if args.list_backends:
        print(format_backend_table())
        return 0
    parser.print_help()
    return 0


if __name__ == "__main__":
    sys.exit(main())
