"""Automatic provenance capture from campaign executions.

"One needs the standard provenance data and logs for each component and
execution instance, but to support better automation, it is helpful to
also have explicit context for the campaign in which that execution took
place" (§III).  This module closes that loop mechanically: hand it an
executed :class:`~repro.savanna.executor.CampaignResult` and it records
one :class:`~repro.metadata.provenance.ProvenanceRecord` per task attempt
under the campaign's context — no per-run bookkeeping by the scientist.
"""

from __future__ import annotations

from repro.metadata.provenance import (
    CampaignContext,
    ExportClass,
    ProvenanceRecord,
    ProvenanceStore,
)
from repro.savanna.executor import CampaignResult


def record_campaign_result(
    result: CampaignResult,
    store: ProvenanceStore,
    context: CampaignContext,
    export_class: ExportClass = ExportClass.INTERNAL,
    environment: dict | None = None,
) -> int:
    """Record every finished attempt of ``result`` into ``store``.

    Registers ``context`` if it is not already present.  Returns the
    number of records added.  Attempts still marked running (which only
    happens if the simulation was stopped mid-flight) are skipped.
    """
    if context.name not in {c.name for c in store.campaigns}:
        store.register_campaign(context)
    added = 0
    for outcome in result.outcomes:
        for attempt in outcome.attempts:
            if attempt.end is None:
                continue
            store.add(
                ProvenanceRecord(
                    component=attempt.task.name,
                    start_time=attempt.start,
                    end_time=attempt.end,
                    parameters=dict(attempt.task.payload),
                    environment=dict(environment or {}),
                    campaign=context.name,
                    outcome=attempt.outcome.value,
                    export_class=export_class,
                )
            )
            added += 1
    return added


def straggler_report(store: ProvenanceStore, campaign: str, threshold: float = 3.0) -> list:
    """Query: runs whose elapsed time exceeds ``threshold``x the campaign median.

    The §II-B pain ("run time differences can lead to idle nodes") as a
    provenance query — identifying stragglers is the first step of
    re-tuning the campaign's resource split.
    """
    records = store.query(campaign=campaign, outcome="done")
    if not records:
        return []
    elapsed = sorted(r.elapsed for r in records)
    median = elapsed[len(elapsed) // 2]
    if median <= 0:
        return []
    return sorted(
        (r for r in records if r.elapsed > threshold * median),
        key=lambda r: -r.elapsed,
    )
