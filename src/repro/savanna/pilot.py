"""The dynamic pilot executor — Savanna's resource manager (§V-D).

"It consists of a resource manager that dynamically schedules and tracks
runs on the allocated nodes, thereby no longer requiring synchronizing
runs and leading to better resource utilization."

Observability: a pilot run narrates itself on ``cluster.bus`` — one
``task`` span per attempt (``begin`` at placement, ``end`` with
``done``/``failed``/``killed``), a ``task.requeued`` instant each time a
failed task re-enters the pending queue, and ``node.busy``/``node.idle``
instants from the nodes it occupies, all nested inside the scheduler's
``alloc`` span and the runner's ``campaign`` span.
"""

from __future__ import annotations

from repro.cluster.cluster import SimulatedCluster
from repro.savanna._alloc import PilotRun
from repro.savanna.executor import AllocationOutcome, CampaignResult
from repro.savanna.runner import run_campaign


class PilotExecutor:
    """Dynamic within-allocation scheduling with failure requeue.

    Parameters
    ----------
    cluster:
        The simulated machine to execute on.
    retry_failed:
        Requeue failed tasks at the tail of the pending queue (up to
        ``max_retries`` attempts per task per allocation).
    max_retries:
        Per-allocation retry budget for a failing task.
    """

    def __init__(self, cluster: SimulatedCluster, retry_failed: bool = True, max_retries: int = 2):
        self.cluster = cluster
        self.retry_failed = retry_failed
        self.max_retries = max_retries

    def make_run(self, alloc, tasks, outcome: AllocationOutcome, done_cb) -> PilotRun:
        """Build the within-allocation engine for one granted allocation.

        The returned :class:`PilotRun` emits the ``task`` spans and
        ``task.requeued`` instants for every attempt it dispatches.
        """
        return PilotRun(
            self.cluster,
            alloc,
            tasks,
            outcome,
            done_cb=done_cb,
            retry_failed=self.retry_failed,
            max_retries=self.max_retries,
        )

    def run(
        self,
        tasks,
        nodes: int,
        walltime: float,
        max_allocations: int = 1,
        inter_allocation_gap: float = 0.0,
        end_early: bool = True,
        name: str = "pilot",
    ) -> CampaignResult:
        """Execute ``tasks`` over up to ``max_allocations`` batch jobs.

        Emits (via :func:`~repro.savanna.runner.run_campaign` and the
        layers below) one ``campaign`` span, an ``alloc.submitted`` +
        ``alloc`` span per allocation, and a ``task`` span per attempt.
        """
        return run_campaign(
            self,
            self.cluster,
            tasks,
            nodes=nodes,
            walltime=walltime,
            max_allocations=max_allocations,
            inter_allocation_gap=inter_allocation_gap,
            end_early=end_early,
            name=name,
        )
