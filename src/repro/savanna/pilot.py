"""The dynamic pilot executor — Savanna's resource manager (§V-D).

"It consists of a resource manager that dynamically schedules and tracks
runs on the allocated nodes, thereby no longer requiring synchronizing
runs and leading to better resource utilization."

Observability: a pilot run narrates itself on ``cluster.bus`` — one
``task`` span per attempt (``begin`` at placement, ``end`` with
``done``/``failed``/``killed``), a ``task.retry`` instant when the retry
policy grants another attempt, a ``task.requeued`` instant each time a
failed task re-enters the pending queue (after any backoff delay), plus
``task.timeout`` / ``task.fault_injected`` instants from the resilience
layer and ``node.busy``/``node.idle`` instants from the nodes it
occupies, all nested inside the scheduler's ``alloc`` span and the
runner's ``campaign`` span.
"""

from __future__ import annotations

from repro.cluster.cluster import SimulatedCluster
from repro.resilience.policy import RetryPolicy, as_policy
from repro.savanna._alloc import PilotRun
from repro.savanna._vector import VectorPilotRun, vector_eligible
from repro.savanna.executor import AllocationOutcome, CampaignResult
from repro.savanna.runner import run_campaign


class PilotExecutor:
    """Dynamic within-allocation scheduling with policy-driven retry.

    Parameters
    ----------
    cluster:
        The simulated machine to execute on.
    retry_failed:
        Requeue failed tasks at the tail of the pending queue (subject to
        the retry policy's budgets).
    max_retries:
        Legacy per-allocation retry budget for a failing task; kept as a
        shim and converted to an immediate-retry
        :class:`~repro.resilience.RetryPolicy`.  Must be >= 0.
    retry_policy:
        Full :class:`~repro.resilience.RetryPolicy` (backoff delays,
        per-task timeouts, per-allocation budgets).  Overrides
        ``max_retries`` when given.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        retry_failed: bool = True,
        max_retries: int = 2,
        retry_policy: RetryPolicy | None = None,
    ):
        self.cluster = cluster
        self.retry_failed = retry_failed
        # as_policy validates: a negative max_retries used to silently
        # disable every retry — now it raises.
        self.retry_policy = retry_policy if retry_policy is not None else as_policy(max_retries)
        if not isinstance(self.retry_policy, RetryPolicy):
            raise ValueError(
                f"retry_policy must be a RetryPolicy, got {type(retry_policy).__name__}"
            )

    @property
    def max_retries(self) -> int:
        """Per-task retry budget (read from the policy; legacy surface)."""
        return self.retry_policy.max_retries

    def make_run(self, alloc, tasks, outcome: AllocationOutcome, done_cb) -> PilotRun:
        """Build the within-allocation engine for one granted allocation.

        The returned :class:`PilotRun` emits the ``task`` spans and the
        retry/timeout/fault instants for every attempt it dispatches.
        Eligible workloads (single-node tasks, no fault injector) get
        the bit-exact vectorized engine from
        :mod:`repro.savanna._vector`; set ``REPRO_SIMCORE=event`` to
        force the event-driven path.
        """
        run_cls = VectorPilotRun if vector_eligible(self.cluster, tasks) else PilotRun
        return run_cls(
            self.cluster,
            alloc,
            tasks,
            outcome,
            done_cb=done_cb,
            retry_failed=self.retry_failed,
            policy=self.retry_policy,
        )

    def run(
        self,
        tasks,
        nodes: int,
        walltime: float,
        max_allocations: int = 1,
        inter_allocation_gap: float = 0.0,
        end_early: bool = True,
        name: str = "pilot",
        checkpoint=None,
        resume: bool = False,
    ) -> CampaignResult:
        """Execute ``tasks`` over up to ``max_allocations`` batch jobs.

        Emits (via :func:`~repro.savanna.runner.run_campaign` and the
        layers below) one ``campaign`` span, an ``alloc.submitted`` +
        ``alloc`` span per allocation, and a ``task`` span per attempt.
        ``checkpoint``/``resume`` journal progress into a campaign
        directory and skip runs already recorded DONE — see
        :func:`~repro.savanna.runner.run_campaign`.
        """
        return run_campaign(
            self,
            self.cluster,
            tasks,
            nodes=nodes,
            walltime=walltime,
            max_allocations=max_allocations,
            inter_allocation_gap=inter_allocation_gap,
            end_early=end_early,
            name=name,
            checkpoint=checkpoint,
            resume=resume,
        )
