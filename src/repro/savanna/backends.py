"""Executor backend registry.

"While Savanna provides a simple job runner for the campaign, this design
allows us to import existing workflow tools that provide efficient
implementations for workflow patterns such as bag-of-tasks, pilot-based
system, large-scale MPI runs etc." (§IV).  The registry is that import
point: backends register a factory under a name; campaign drivers look
executors up by name, so swapping the execution engine is a string
change, not a code change.
"""

from __future__ import annotations

from typing import Callable

_BACKENDS: dict[str, tuple[Callable, str]] = {}


def register_backend(name: str, factory: Callable, description: str = "", replace: bool = False) -> None:
    """Register an executor factory under ``name``.

    ``factory(**kwargs)`` must return an object with the executor protocol
    (``make_run(alloc, tasks, outcome, done_cb)`` for simulated backends,
    or ``run(manifest, app_fn)`` for real ones).
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    if name in _BACKENDS and not replace:
        raise ValueError(f"backend {name!r} already registered")
    _BACKENDS[name] = (factory, description)


def get_backend(name: str) -> Callable:
    """Look up a backend factory by name."""
    try:
        return _BACKENDS[name][0]
    except KeyError:
        raise KeyError(
            f"unknown executor backend {name!r}; available: {available_backends()}"
        ) from None


def available_backends() -> list[str]:
    return sorted(_BACKENDS)


def backend_descriptions() -> dict:
    return {name: desc for name, (_f, desc) in _BACKENDS.items()}


def create_executor(name: str, **kwargs):
    """Instantiate a backend: ``create_executor("pilot", cluster=...)``."""
    return get_backend(name)(**kwargs)


def _register_builtins() -> None:
    from repro.savanna.local import LocalExecutor
    from repro.savanna.pilot import PilotExecutor
    from repro.savanna.static import StaticSetExecutor

    register_backend(
        "pilot",
        PilotExecutor,
        "Savanna's dynamic pilot: pull-on-free scheduling with failure requeue",
    )
    register_backend(
        "static-sets",
        StaticSetExecutor,
        "the original set-synchronized baseline (barrier per set)",
    )
    register_backend(
        "local-threads",
        LocalExecutor,
        "real execution of Python callables on a thread pool",
    )


_register_builtins()
