"""Executor backend registry.

"While Savanna provides a simple job runner for the campaign, this design
allows us to import existing workflow tools that provide efficient
implementations for workflow patterns such as bag-of-tasks, pilot-based
system, large-scale MPI runs etc." (§IV).  The registry is that import
point: backends register a factory under a name; campaign drivers look
executors up by name, so swapping the execution engine is a string
change, not a code change.

Backends come in two kinds, and the drive layer routes on the kind:

- ``"simulated"`` — factory takes a ``cluster`` and returns an object
  with ``make_run(alloc, tasks, outcome, done_cb)`` plus the
  ``run(tasks, nodes=..., walltime=..., ...)`` campaign loop;
- ``"real"`` — factory takes pool options and returns an object with
  ``execute(manifest, app_fn, run_filter=..., bus=..., name=...)``
  (see :class:`~repro.savanna.executor.RealExecutorProtocol`) that
  executes genuine Python on wall-clock time.
"""

from __future__ import annotations

from typing import Callable, NamedTuple

BACKEND_KINDS = ("simulated", "real")


class _Backend(NamedTuple):
    factory: Callable
    description: str
    kind: str


_BACKENDS: dict[str, _Backend] = {}


def register_backend(
    name: str,
    factory: Callable,
    description: str = "",
    replace: bool = False,
    kind: str = "simulated",
) -> None:
    """Register an executor factory under ``name``.

    ``factory(**kwargs)`` must return an object honouring the executor
    protocol of its ``kind`` (see module docstring).  Registering an
    already-taken name raises unless ``replace=True``.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    if kind not in BACKEND_KINDS:
        raise ValueError(f"backend kind must be one of {BACKEND_KINDS}, got {kind!r}")
    if name in _BACKENDS and not replace:
        raise ValueError(f"backend {name!r} already registered")
    _BACKENDS[name] = _Backend(factory, description, kind)


def unregister_backend(name: str) -> None:
    """Remove a registered backend (KeyError if absent) — test/plugin
    hygiene, so a registration experiment can undo itself."""
    del _BACKENDS[name]


def get_backend(name: str) -> Callable:
    """Look up a backend factory by name."""
    try:
        return _BACKENDS[name].factory
    except KeyError:
        raise KeyError(
            f"unknown executor backend {name!r}; available: {available_backends()}"
        ) from None


def backend_kind(name: str) -> str:
    """``"simulated"`` or ``"real"`` — how the drive layer must call it."""
    try:
        return _BACKENDS[name].kind
    except KeyError:
        raise KeyError(
            f"unknown executor backend {name!r}; available: {available_backends()}"
        ) from None


def available_backends() -> list[str]:
    return sorted(_BACKENDS)


def backend_descriptions() -> dict:
    return {name: b.description for name, b in _BACKENDS.items()}


def create_executor(name: str, **kwargs):
    """Instantiate a backend: ``create_executor("pilot", cluster=...)``."""
    return get_backend(name)(**kwargs)


def _make_local_threads(**kwargs):
    from repro.savanna.realexec import RealExecutor

    return RealExecutor(pool="threads", **kwargs)


def _make_local_processes(**kwargs):
    from repro.savanna.realexec import RealExecutor

    return RealExecutor(pool="processes", **kwargs)


def _register_builtins() -> None:
    from repro.savanna.pilot import PilotExecutor
    from repro.savanna.static import StaticSetExecutor

    register_backend(
        "pilot",
        PilotExecutor,
        "Savanna's dynamic pilot: pull-on-free scheduling with failure requeue",
        kind="simulated",
    )
    register_backend(
        "static-sets",
        StaticSetExecutor,
        "the original set-synchronized baseline (barrier per set)",
        kind="simulated",
    )
    register_backend(
        "local-threads",
        _make_local_threads,
        "real execution of Python callables on a thread pool "
        "(GIL-releasing workloads: numpy kernels, I/O)",
        kind="real",
    )
    register_backend(
        "local-processes",
        _make_local_processes,
        "real execution of Python callables on a process pool "
        "(CPU-bound Python that holds the GIL)",
        kind="real",
    )


_register_builtins()
