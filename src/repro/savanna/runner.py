"""Multi-allocation campaign loop with resume (§V-D).

"If all runs in the SweepGroup cannot be run in the allotted time, the
SweepGroup is simply re-submitted, and Savanna resumes execution of the
experiments."  The loop submits batch allocations one after another; each
new allocation receives every task not yet DONE (killed and failed tasks
are retried), until the campaign completes or the allocation budget runs
out.

Durability: pass a :class:`~repro.resilience.CampaignCheckpoint` to
journal every task transition into the Cheetah campaign directory as it
happens, and ``resume=True`` to skip tasks the checkpoint already records
DONE (emitting one ``group.resumed`` instant with the skip count) — the
paper's "simply re-submit" made crash-safe.

Observability: one ``campaign`` span per :func:`run_campaign` call on the
cluster's bus — ``begin`` before the first submission (fields:
``campaign``, ``tasks``, ``max_allocations``), ``end`` after the event
loop drains (fields: ``completed``, ``allocations``).  The scheduler and
the within-allocation engines emit the nested ``alloc.submitted`` /
``alloc`` / ``task`` / ``node.*`` events; see ``docs/observability.md``
for the full contract.
"""

from __future__ import annotations

from repro._util import check_nonnegative, check_positive
from repro.cluster.cluster import SimulatedCluster
from repro.cluster.job import AllocationRequest, TaskState
from repro.observability import BEGIN, CAMPAIGN, END, GROUP_RESUMED
from repro.savanna.executor import AllocationOutcome, CampaignResult


def run_campaign(
    executor,
    cluster: SimulatedCluster,
    tasks,
    *,
    nodes: int,
    walltime: float,
    max_allocations: int = 1,
    inter_allocation_gap: float = 0.0,
    end_early: bool = True,
    name: str = "campaign",
    checkpoint=None,
    resume: bool = False,
) -> CampaignResult:
    """Drive ``executor`` over up to ``max_allocations`` sequential batch jobs.

    Emits a ``campaign`` span on ``cluster.bus`` covering the whole loop
    (begin at submission time, end at the final simulation time), with
    every allocation and task event nested inside it.

    Parameters
    ----------
    executor:
        Provides ``make_run(alloc, tasks, outcome, done_cb)`` — the
        within-allocation dispatch strategy.
    inter_allocation_gap:
        Human think-time before each resubmission (zero for Savanna's
        mechanical resubmit; hours for the manually curated original).
    end_early:
        Release the allocation when no work remains instead of idling to
        the walltime (real job scripts exit when done).
    checkpoint:
        Optional :class:`~repro.resilience.CampaignCheckpoint`; while the
        loop runs, every task transition is journaled into the campaign
        directory (crash-safe progress), and the journal is compacted
        into ``status.json`` when the loop drains.
    resume:
        With a ``checkpoint``: tasks whose names the checkpoint records
        DONE are marked complete up front and never dispatched; one
        ``group.resumed`` instant reports the skip count.  Requires
        ``checkpoint``.
    """
    check_positive("max_allocations", max_allocations)
    check_nonnegative("inter_allocation_gap", inter_allocation_gap)
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint")
    tasks = list(tasks)
    result = CampaignResult(tasks=tasks)
    state = {"submitted": 0, "active_run": None}

    skipped = 0
    if resume:
        already_done = checkpoint.completed()
        for t in tasks:
            if t.name in already_done:
                t.state = TaskState.DONE
                skipped += 1

    def remaining():
        return [t for t in tasks if t.state is not TaskState.DONE]

    def submit_next():
        # any() early-exits on the first unfinished task; building the
        # full remaining() list here would be an O(n) scan per submit.
        if state["submitted"] >= max_allocations or not any(
            t.state is not TaskState.DONE for t in tasks
        ):
            return
        state["submitted"] += 1
        request = AllocationRequest(
            nodes=nodes, walltime=walltime, name=f"{name}-{state['submitted']}"
        )

        def on_start(alloc):
            outcome = AllocationOutcome(allocation=alloc)
            result.outcomes.append(outcome)
            done_cb = (lambda: cluster.scheduler.finish(alloc)) if end_early else None
            # Single fused pass: select the unfinished tasks and reset
            # killed/failed ones to PENDING so the new allocation
            # retries them (one task scan instead of two; the store is
            # skipped for already-pending tasks, i.e. almost all of
            # them on the first allocation).
            batch = []
            append = batch.append
            done, pend = TaskState.DONE, TaskState.PENDING
            for t in tasks:
                s = t.state
                if s is not done:
                    if s is not pend:
                        t.state = pend
                    append(t)
            run = executor.make_run(alloc, batch, outcome, done_cb)
            state["active_run"] = run
            run.start()

        def on_end(alloc):
            run = state["active_run"]
            state["active_run"] = None
            if run is not None:
                run.on_walltime_kill()
            if inter_allocation_gap > 0:
                cluster.sim.schedule(inter_allocation_gap, submit_next)
            else:
                submit_next()

        cluster.scheduler.submit(request, on_start, on_end)

    cluster.bus.emit(
        CAMPAIGN,
        phase=BEGIN,
        campaign=name,
        tasks=len(tasks),
        max_allocations=max_allocations,
    )
    if resume:
        cluster.bus.emit(
            GROUP_RESUMED,
            campaign=name,
            total=len(tasks),
            skipped=skipped,
            pending=len(tasks) - skipped,
        )
    if checkpoint is not None:
        checkpoint.attach(cluster.bus)
    try:
        submit_next()
        cluster.run()
    finally:
        if checkpoint is not None:
            checkpoint.detach()
            checkpoint.compact()
    if cluster.bus.has_subscribers:
        # Guarded so the O(n) completed-list scan in the arguments is
        # only paid when someone is listening; emit itself would drop
        # the event anyway.
        cluster.bus.emit(
            CAMPAIGN,
            phase=END,
            campaign=name,
            completed=len(result.completed),
            allocations=len(result.outcomes),
        )
    return result
