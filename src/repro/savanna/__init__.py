"""Savanna: campaign execution (§IV, §V-D).

Savanna "translates a high-level campaign description into actual system
and scheduler calls, and provides a simple pilot runner to run experiments
on available resources".  Executor backends:

- :class:`~repro.savanna.pilot.PilotExecutor` — Savanna's dynamic resource
  manager: tasks are pulled onto nodes the moment they free, no set
  barriers, failed runs requeued, partially complete groups resumable.
- :class:`~repro.savanna.static.StaticSetExecutor` — the *original*
  workflow baseline of §II-B/§V-D: runs submitted in sets with explicit
  synchronization at the end of each set; stragglers idle nodes; failures
  are only re-curated manually afterwards.
- :class:`~repro.savanna.realexec.RealExecutor` — the real-execution
  engine: genuine Python callables on a thread pool (``"local-threads"``,
  for GIL-releasing workloads) or a process pool (``"local-processes"``,
  for CPU-bound Python), with retry policies, per-attempt timeouts,
  deterministic per-run seeding, checkpoint/resume, and the standard
  event taxonomy over wall-clock time.
  :class:`~repro.savanna.local.LocalExecutor` is its historical
  thread-pool face (the examples' backend).

- :class:`~repro.savanna.service.CampaignService` — the asyncio
  multi-campaign orchestration layer: a submission queue, a bounded
  worker pool, fair-share/priority scheduling across tenants, live
  status/cancel handles, and queue-depth backpressure — every drive
  capability becomes per-submission middleware (``docs/campaign_service.md``).

Shared machinery lives in :mod:`repro.savanna.executor` (task/outcome
types, manifest→task mapping) and :mod:`repro.savanna.runner`
(multi-allocation campaign loop with resume, the §V-D "simply re-submit
the SweepGroup" behaviour).  ``python -m repro.savanna --list-backends``
prints the live backend registry.
"""

from repro.savanna.executor import (
    AllocationOutcome,
    CampaignResult,
    RealExecutorProtocol,
    tasks_from_manifest,
    DurationModel,
)
from repro.savanna.static import StaticSetExecutor
from repro.savanna.pilot import PilotExecutor
from repro.savanna.local import LocalExecutor, LocalRunResult
from repro.savanna.realexec import (
    RealCampaignResult,
    RealExecutor,
    RealTaskSpec,
    seed_for_run,
    wall_clock_bus,
)
from repro.savanna.runner import run_campaign
from repro.savanna.drive import execute_manifest, execute_campaign
from repro.savanna.service import (
    CampaignService,
    ServiceSaturated,
    SubmissionHandle,
    SubmissionState,
    ThreadSafeBus,
    service_bus,
)
from repro.savanna.provenance import record_campaign_result, straggler_report
from repro.savanna.backends import (
    register_backend,
    unregister_backend,
    get_backend,
    backend_kind,
    available_backends,
    backend_descriptions,
    create_executor,
)

__all__ = [
    "AllocationOutcome",
    "CampaignResult",
    "tasks_from_manifest",
    "DurationModel",
    "StaticSetExecutor",
    "PilotExecutor",
    "LocalExecutor",
    "LocalRunResult",
    "RealCampaignResult",
    "RealExecutor",
    "RealExecutorProtocol",
    "RealTaskSpec",
    "seed_for_run",
    "wall_clock_bus",
    "run_campaign",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "backend_kind",
    "available_backends",
    "backend_descriptions",
    "create_executor",
    "execute_manifest",
    "execute_campaign",
    "CampaignService",
    "ServiceSaturated",
    "SubmissionHandle",
    "SubmissionState",
    "ThreadSafeBus",
    "service_bus",
    "record_campaign_result",
    "straggler_report",
]
