"""High-level drive: manifest in, executed campaign + recorded status out.

Ties the layers together the way §V-D describes the user experience: the
scientist composes the campaign; execution, status tracking, and
resubmission are the tool's problem.  ``execute_manifest`` runs a
campaign manifest on a simulated cluster through a named backend and
(optionally) records per-run outcomes into the campaign directory so a
later invocation resumes exactly the pending set.

With a ``directory``, progress is journaled *incrementally* through a
:class:`~repro.resilience.CampaignCheckpoint` (one JSONL line per task
transition, compacted into ``status.json`` when the group drains) — a
driver process killed mid-campaign loses at most the in-flight attempts,
and ``resume=True`` (the default) re-queues exactly the runs not yet
recorded DONE.

Observability: each :func:`execute_manifest` call emits one ``group``
span on the cluster's bus (fields: ``campaign``, ``group``, ``runs`` /
``completed``), wrapping the nested ``campaign``/``alloc``/``task``
events the execution layers produce; a resumed group additionally emits
one ``group.resumed`` instant with the skip count.

With ``report=True`` the drive also *reads its own trace back*: a
collector rides the bus for the duration of the group, the captured
events are analyzed (see :mod:`repro.observability.analysis`), one
``campaign.report`` instant with the headline numbers (makespan,
utilization, critical path, stragglers) is emitted, and — when a
``directory`` is in play — the full report is merged into the campaign
end point's ``.cheetah/report.json``.
"""

from __future__ import annotations

from repro.cheetah.directory import CampaignDirectory, RunStatus, resolve_campaign_dir
from repro.cheetah.manifest import CampaignManifest
from repro.cluster.cluster import SimulatedCluster
from repro.cluster.job import TaskState
from repro.lint.engine import CampaignLintError, lint_manifest
from repro.observability import (
    BEGIN,
    CAMPAIGN_LINTED,
    CAMPAIGN_REPORT,
    END,
    GROUP,
    GROUP_RESUMED,
)
from repro.resilience.checkpoint import CampaignCheckpoint
from repro.savanna.backends import create_executor
from repro.savanna.executor import CampaignResult, tasks_from_manifest

_STATE_TO_STATUS = {
    TaskState.DONE: RunStatus.DONE,
    TaskState.FAILED: RunStatus.FAILED,
    TaskState.KILLED: RunStatus.PENDING,  # killed-at-walltime runs are retryable
    TaskState.PENDING: RunStatus.PENDING,
    TaskState.RUNNING: RunStatus.RUNNING,
}


def _pre_run_lint(manifest, cluster, backend_kwargs) -> None:
    """The ``repro.lint`` gate: refuse campaigns with ERROR findings.

    Runs the manifest rules with the cluster spec and the retry policy
    the execution will actually use, emits one ``campaign.linted``
    instant with the finding counts, and raises
    :class:`~repro.lint.engine.CampaignLintError` on any ERROR —
    misconfiguration surfaces at submit time, not mid-allocation.
    """
    report = lint_manifest(
        manifest,
        cluster=cluster,
        retry_policy=backend_kwargs.get("retry_policy"),
    )
    counts = report.counts()
    cluster.bus.emit(
        CAMPAIGN_LINTED,
        campaign=manifest.campaign,
        errors=counts["error"],
        warnings=counts["warning"],
        infos=counts["info"],
        suppressed=len(report.suppressed),
    )
    if report.errors:
        raise CampaignLintError(report, campaign=manifest.campaign)


def execute_campaign(
    manifest: CampaignManifest,
    duration_model,
    cluster: SimulatedCluster,
    backend: str = "pilot",
    directory: CampaignDirectory | None = None,
    max_allocations_per_group: int = 1,
    inter_allocation_gap: float = 0.0,
    resume: bool = True,
    lint: bool = True,
    report: bool = False,
    **backend_kwargs,
) -> dict:
    """Execute every SweepGroup of a campaign, in declaration order.

    Groups run sequentially on the same cluster timeline (each group's
    allocation is submitted when the previous group finishes), matching
    how a scientist walks through a multi-group study.  Returns
    ``{group name: CampaignResult}``.

    The whole campaign is linted once up front (see
    :func:`execute_manifest`'s ``lint`` parameter); per-group calls then
    skip the redundant re-analysis.  ``report=True`` analyzes each
    group's trace as it completes (see :func:`execute_manifest`).
    """
    if lint:
        _pre_run_lint(manifest, cluster, backend_kwargs)
    results: dict[str, CampaignResult] = {}
    for meta in manifest.groups:
        results[meta["name"]] = execute_manifest(
            manifest,
            duration_model,
            cluster,
            group=meta["name"],
            backend=backend,
            directory=directory,
            max_allocations=max_allocations_per_group,
            inter_allocation_gap=inter_allocation_gap,
            resume=resume,
            lint=False,
            report=report,
            **backend_kwargs,
        )
    return results


def execute_manifest(
    manifest: CampaignManifest,
    duration_model,
    cluster: SimulatedCluster,
    group: str | None = None,
    backend: str = "pilot",
    directory: CampaignDirectory | None = None,
    max_allocations: int = 1,
    inter_allocation_gap: float = 0.0,
    resume: bool = True,
    lint: bool = True,
    report: bool = False,
    **backend_kwargs,
) -> CampaignResult:
    """Execute (part of) a campaign manifest on a simulated cluster.

    Parameters
    ----------
    manifest:
        The abstract campaign.
    duration_model:
        ``fn(parameters) -> seconds`` mapping runs to nominal durations.
    group:
        Restrict execution to one SweepGroup (default: the whole
        campaign; the manifest must then contain exactly one group so the
        nodes/walltime envelope is unambiguous).
    backend:
        Executor backend name (see :mod:`repro.savanna.backends`);
        must be a simulated backend taking a ``cluster`` argument.
    directory:
        If given, per-run progress is journaled incrementally (the
        resume record survives a killed driver) and final statuses are
        compacted back into ``status.json``.  A path is accepted too and
        resolved through
        :func:`~repro.cheetah.directory.resolve_campaign_dir` (created
        on first use) — the same resolution the ``repro.lint`` CLI uses,
        so the linted end point and the resumed end point are one.
    resume:
        With a ``directory``: skip runs whose durable status (base
        record + journal) is already DONE, emitting ``group.resumed``.
        ``resume=False`` re-executes every run of the group.
    lint:
        Run the ``repro.lint`` manifest rules before executing anything
        and refuse (``CampaignLintError``) on ERROR findings.  Pass
        ``lint=False`` to execute a campaign the analyzer rejects.
    report:
        Collect this group's events off the bus and analyze them after
        the group drains: emits one ``campaign.report`` instant carrying
        the headline numbers and, with a ``directory``, merges the full
        :class:`~repro.observability.analysis.CampaignReport` into
        ``.cheetah/report.json`` (read it back with
        ``directory.read_report()``).
    """
    if lint:
        _pre_run_lint(manifest, cluster, backend_kwargs)
    if group is None:
        if len(manifest.groups) != 1:
            raise ValueError(
                "manifest has multiple groups; pass group= to pick the "
                f"resource envelope (groups: {[g['name'] for g in manifest.groups]})"
            )
        group = manifest.groups[0]["name"]
    meta = manifest.group_meta(group)

    selected = manifest.runs_in_group(group)
    checkpoint = None
    skipped = 0
    if directory is not None and not isinstance(directory, CampaignDirectory):
        directory = resolve_campaign_dir(directory, manifest, create=True)
    if directory is not None:
        checkpoint = CampaignCheckpoint(directory)
        if resume:
            status = checkpoint.effective_status()
            before = len(selected)
            selected = tuple(
                r for r in selected if status[r.run_id] is not RunStatus.DONE
            )
            skipped = before - len(selected)

    sub = CampaignManifest(
        campaign=manifest.campaign,
        app=manifest.app,
        runs=selected,
        executable=manifest.executable,
        objective=manifest.objective,
        groups=(dict(meta),),
    )
    tasks = tasks_from_manifest(sub, duration_model)
    executor = create_executor(backend, cluster=cluster, **backend_kwargs)
    collected: list = []
    unsubscribe = cluster.bus.subscribe(collected.append) if report else None
    cluster.bus.emit(
        GROUP,
        phase=BEGIN,
        campaign=manifest.campaign,
        group=group,
        runs=len(tasks),
        backend=backend,
    )
    if skipped:
        cluster.bus.emit(
            GROUP_RESUMED,
            campaign=manifest.campaign,
            total=len(selected) + skipped,
            skipped=skipped,
            pending=len(tasks),
        )
    result = executor.run(
        tasks,
        nodes=meta["nodes"],
        walltime=meta["walltime"],
        max_allocations=max_allocations,
        inter_allocation_gap=inter_allocation_gap,
        name=f"{manifest.campaign}/{group}",
        checkpoint=checkpoint,
    )
    cluster.bus.emit(
        GROUP,
        phase=END,
        campaign=manifest.campaign,
        group=group,
        completed=len(result.completed),
    )
    if unsubscribe is not None:
        unsubscribe()
        _report_group(cluster, directory, collected)
    if directory is not None:
        directory.update_status(
            {task.name: _STATE_TO_STATUS[task.state] for task in tasks}
        )
    return result


def _report_group(cluster, directory, events) -> None:
    """Analyze one group's captured events and publish the results.

    Emits one ``campaign.report`` instant per campaign span found in the
    capture (normally one — the executor wraps the group's allocations in
    a single campaign span) and merges the full reports into the campaign
    end point when there is one.
    """
    from repro.observability.analysis import analyze_events

    reports = analyze_events(events)
    for r in reports:
        cluster.bus.emit(CAMPAIGN_REPORT, **r.headline())
    if directory is not None and reports:
        directory.write_report(reports)
