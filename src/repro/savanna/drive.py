"""High-level drive: manifest in, executed campaign + recorded status out.

Ties the layers together the way §V-D describes the user experience: the
scientist composes the campaign; execution, status tracking, and
resubmission are the tool's problem.  ``execute_manifest`` runs a
campaign manifest through a named backend and (optionally) records
per-run outcomes into the campaign directory so a later invocation
resumes exactly the pending set.

Two execution worlds share this one entry point, routed on the backend's
registered kind (:func:`~repro.savanna.backends.backend_kind`):

- **simulated** backends (``"pilot"``, ``"static-sets"``) take a
  ``duration_model`` and a :class:`~repro.cluster.cluster.SimulatedCluster`
  and replay the campaign on simulated time;
- **real** backends (``"local-threads"``, ``"local-processes"``) take an
  ``app_fn=`` keyword — a picklable ``callable(parameters) -> value`` —
  and execute genuine Python on wall-clock time through
  :class:`~repro.savanna.realexec.RealExecutor`.  ``duration_model`` and
  ``cluster`` may then be ``None``; events ride a wall-clock
  :class:`~repro.observability.EventBus` created per drive (or pass
  ``bus=`` to share one across groups).

Both worlds get the full stack: the pre-run ``repro.lint`` gate,
incremental :class:`~repro.resilience.CampaignCheckpoint` journaling
(one JSONL line per task transition, compacted into ``status.json`` when
the group drains — a driver process killed mid-campaign loses at most
the in-flight attempts), ``resume=True`` re-queuing exactly the runs not
yet recorded DONE, ``group`` spans / ``group.resumed`` instants on the
bus, and ``report=True`` trace analytics: a collector rides the bus for
the duration of the group, the captured events are analyzed (see
:mod:`repro.observability.analysis`), one ``campaign.report`` instant
with the headline numbers (makespan, utilization, critical path,
stragglers) is emitted, and — when a ``directory`` is in play — the full
report is merged into the campaign end point's ``.cheetah/report.json``.
Real runs additionally persist each run's outcome (value, error +
traceback, seed, attempts) durably: bulk-recorded into the campaign
store at ``.cheetah/store.sqlite`` (:mod:`repro.store`, the default) and
— with ``json_results=True`` — exported as per-run ``<run>/result.json``
files for human inspection.

The drive is internally a *pipeline of stages* — lint gate, resume-set
resolution, sub-manifest construction, execution, report analysis,
status compaction — shared verbatim between the simulated and the real
path, and reused per submission by the asyncio campaign service
(:mod:`repro.savanna.service`), which runs many of these pipelines
concurrently.  The per-submission **middleware order** is fixed and
documented on :func:`execute_manifest`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.cheetah.directory import CampaignDirectory, RunStatus, resolve_campaign_dir
from repro.cheetah.manifest import CampaignManifest
from repro.cluster.cluster import SimulatedCluster
from repro.cluster.job import TaskState
from repro.lint.engine import CampaignLintError, lint_app_fn, lint_manifest, suppressions_of
from repro.observability import (
    BEGIN,
    CAMPAIGN_LINTED,
    CAMPAIGN_REPORT,
    END,
    GROUP,
    GROUP_RESUMED,
    new_trace_id,
)
from repro.resilience.checkpoint import CampaignCheckpoint
from repro.savanna.backends import backend_kind, create_executor
from repro.savanna.executor import CampaignResult, tasks_from_manifest
from repro.savanna.realexec import RealCampaignResult, wall_clock_bus

_STATE_TO_STATUS = {
    TaskState.DONE: RunStatus.DONE,
    TaskState.FAILED: RunStatus.FAILED,
    TaskState.KILLED: RunStatus.PENDING,  # killed-at-walltime runs are retryable
    TaskState.PENDING: RunStatus.PENDING,
    TaskState.RUNNING: RunStatus.RUNNING,
}

#: Real-run result status -> durable run status ("interrupted" runs are
#: retryable, so they record as PENDING — resume re-queues them).
_REAL_TO_STATUS = {
    "done": RunStatus.DONE,
    "failed": RunStatus.FAILED,
    "interrupted": RunStatus.PENDING,
}


def _pool_of(backend: str) -> str:
    """Which worker pool a real backend dispatches to (pickling matters)."""
    return "processes" if "process" in backend else "threads"


def _pre_run_lint(manifest, bus, cluster, backend_kwargs, app_fn=None, pool="threads"):
    """The ``repro.lint`` gate: refuse campaigns with ERROR findings.

    Runs the manifest rules with the cluster spec (when there is a
    cluster — real backends lint without one) and the retry policy the
    execution will actually use.  For real backends the ``app_fn``
    headed to the workers gets the FAIR5xx concurrency-safety pass too
    (:func:`~repro.lint.engine.lint_app_fn`, honouring the manifest's
    own suppressions), so a function that mutates shared state or
    cannot pickle under ``local-processes`` is refused before a queue
    slot is spent.  Emits one ``campaign.linted`` instant with the
    merged finding counts and raises
    :class:`~repro.lint.engine.CampaignLintError` on any ERROR —
    misconfiguration surfaces at submit time, not mid-allocation.
    Returns the merged report so callers can persist it.
    """
    report = lint_manifest(
        manifest,
        cluster=cluster,
        retry_policy=backend_kwargs.get("retry_policy"),
    )
    if app_fn is not None:
        report = report.merged(
            lint_app_fn(app_fn, pool=pool, suppress=suppressions_of(manifest))
        )
    counts = report.counts()
    bus.emit(
        CAMPAIGN_LINTED,
        campaign=manifest.campaign,
        errors=counts["error"],
        warnings=counts["warning"],
        infos=counts["info"],
        suppressed=len(report.suppressed),
    )
    if report.errors:
        raise CampaignLintError(report, campaign=manifest.campaign)
    return report


def _resolve_group(manifest: CampaignManifest, group: str | None) -> str:
    """Pipeline stage: pin down which SweepGroup's envelope applies."""
    if group is not None:
        return group
    if len(manifest.groups) != 1:
        raise ValueError(
            "manifest has multiple groups; pass group= to pick the "
            f"resource envelope (groups: {[g['name'] for g in manifest.groups]})"
        )
    return manifest.groups[0]["name"]


@dataclass
class _PendingWork:
    """Output of the resume-resolution stage: exactly what is left to run.

    ``sub`` is the input manifest narrowed to one group and (with
    ``resume=True``) to the runs not yet durably DONE; ``skipped`` is how
    many the journal let us skip (reported via ``group.resumed``).
    """

    directory: CampaignDirectory | None
    checkpoint: CampaignCheckpoint | None
    sub: CampaignManifest
    meta: dict
    skipped: int


def _resolve_pending(
    manifest: CampaignManifest,
    group: str,
    directory,
    resume: bool,
) -> _PendingWork:
    """Pipeline stage: resolve the campaign end point and the pending set.

    Accepts a :class:`~repro.cheetah.directory.CampaignDirectory` or a
    path (resolved and created on first use), constructs the
    write-ahead :class:`~repro.resilience.CampaignCheckpoint` over it,
    and — when resuming — overlays the journal on the base status record
    to drop every run already recorded DONE.  Shared verbatim by the
    simulated and the real execution paths, and therefore by every
    campaign-service submission.
    """
    meta = manifest.group_meta(group)
    selected = manifest.runs_in_group(group)
    checkpoint = None
    skipped = 0
    if directory is not None and not isinstance(directory, CampaignDirectory):
        directory = resolve_campaign_dir(directory, manifest, create=True)
    if directory is not None:
        checkpoint = CampaignCheckpoint(directory)
        if resume:
            status = checkpoint.effective_status()
            before = len(selected)
            selected = tuple(
                r for r in selected if status[r.run_id] is not RunStatus.DONE
            )
            skipped = before - len(selected)
    sub = CampaignManifest(
        campaign=manifest.campaign,
        app=manifest.app,
        runs=selected,
        executable=manifest.executable,
        objective=manifest.objective,
        groups=(dict(meta),),
    )
    return _PendingWork(
        directory=directory,
        checkpoint=checkpoint,
        sub=sub,
        meta=meta,
        skipped=skipped,
    )


def _check_cancelled(cancel) -> bool:
    """Normalize the external stop signal: Event, callable, or None."""
    if cancel is None:
        return False
    return bool(cancel.is_set() if hasattr(cancel, "is_set") else cancel())


def execute_campaign(
    manifest: CampaignManifest,
    duration_model=None,
    cluster: SimulatedCluster | None = None,
    backend: str = "pilot",
    directory: CampaignDirectory | None = None,
    max_allocations_per_group: int = 1,
    inter_allocation_gap: float = 0.0,
    resume: bool = True,
    lint: bool = True,
    report: bool = False,
    store: bool = True,
    json_results: bool = False,
    cancel=None,
    trace_id: str | None = None,
    **backend_kwargs,
) -> dict:
    """Execute every SweepGroup of a campaign, in declaration order.

    Groups run sequentially (each group's allocation is submitted when
    the previous group finishes), matching how a scientist walks through
    a multi-group study.  Returns ``{group name: CampaignResult}`` (or
    ``RealCampaignResult`` for real backends).

    The whole campaign is linted once up front (see
    :func:`execute_manifest`'s ``lint`` parameter); per-group calls then
    skip the redundant re-analysis.  ``report=True`` analyzes each
    group's trace as it completes (see :func:`execute_manifest`).

    ``cancel`` (a ``threading.Event`` or zero-argument callable) stops
    the campaign between groups — already-finished groups keep their
    results, remaining groups are never started — and, on real backends,
    also interrupts the group currently executing (see
    :meth:`~repro.savanna.realexec.RealExecutor.execute`).  The campaign
    service drives every submission through this parameter.

    ``trace_id`` is the campaign's correlation id (minted here when not
    supplied — the campaign service mints one per submission): every
    group span and, on real backends, every task event down to the
    worker processes carries it, so one ``grep trace_id=...`` lines up
    the whole execution across logs and buses.
    """
    trace_id = trace_id or new_trace_id()
    if backend_kind(backend) == "real":
        # One wall-clock bus for the whole campaign, so the groups share
        # a time base and any subscriber sees the full story.
        backend_kwargs.setdefault("bus", wall_clock_bus(f"drive-{manifest.campaign}"))
        if lint:
            _pre_run_lint(
                manifest,
                backend_kwargs["bus"],
                cluster,
                backend_kwargs,
                app_fn=backend_kwargs.get("app_fn"),
                pool=_pool_of(backend),
            )
    else:
        if cluster is None:
            raise ValueError(
                f"backend {backend!r} is simulated and requires a cluster"
            )
        if lint:
            _pre_run_lint(manifest, cluster.bus, cluster, backend_kwargs)
    results: dict = {}
    for meta in manifest.groups:
        if _check_cancelled(cancel):
            break
        results[meta["name"]] = execute_manifest(
            manifest,
            duration_model,
            cluster,
            group=meta["name"],
            backend=backend,
            directory=directory,
            max_allocations=max_allocations_per_group,
            inter_allocation_gap=inter_allocation_gap,
            resume=resume,
            lint=False,
            report=report,
            store=store,
            json_results=json_results,
            cancel=cancel,
            trace_id=trace_id,
            **backend_kwargs,
        )
    return results


def execute_manifest(
    manifest: CampaignManifest,
    duration_model=None,
    cluster: SimulatedCluster | None = None,
    group: str | None = None,
    backend: str = "pilot",
    directory: CampaignDirectory | None = None,
    max_allocations: int = 1,
    inter_allocation_gap: float = 0.0,
    resume: bool = True,
    lint: bool = True,
    report: bool = False,
    store: bool = True,
    json_results: bool = False,
    cancel=None,
    trace_id: str | None = None,
    **backend_kwargs,
) -> CampaignResult | RealCampaignResult:
    """Execute (part of) a campaign manifest through a named backend.

    This is the drive *pipeline*; every stage below is per-submission
    middleware when called through the campaign service
    (:mod:`repro.savanna.service`).  The **middleware order** is fixed:

    1. **lint gate** (``lint=True``) — manifest rules against the real
       cluster spec + retry policy; ERROR findings refuse the campaign
       (``campaign.linted`` instant either way);
    2. **group resolution** — pin the SweepGroup whose nodes/walltime
       envelope applies;
    3. **resume resolution** (``directory`` + ``resume=True``) —
       overlay the write-ahead journal on ``status.json`` and narrow the
       manifest to the runs not yet DONE (``group.resumed`` instant);
    4. **execution** — the backend's engine, routed on
       :func:`~repro.savanna.backends.backend_kind`; the
       :class:`~repro.resilience.CampaignCheckpoint` journals every task
       transition while it runs, and real backends honour ``cancel``;
    5. **report analysis** (``report=True``) — the group's captured
       events become a ``CampaignReport`` + one ``campaign.report``
       instant;
    6. **result + status compaction** — real-run outcomes are
       bulk-recorded into the campaign store
       (``.cheetah/store.sqlite`` — ``store=True``, the default; pass
       ``json_results=True`` to additionally export per-run
       ``result.json`` files), then final statuses land in
       ``status.json`` and are mirrored into the store.

    Parameters
    ----------
    manifest:
        The abstract campaign.
    duration_model:
        ``fn(parameters) -> seconds`` mapping runs to nominal durations.
        Required by simulated backends; ignored by real ones (real code
        takes however long it takes).
    group:
        Restrict execution to one SweepGroup (default: the whole
        campaign; the manifest must then contain exactly one group so the
        nodes/walltime envelope is unambiguous).
    backend:
        Executor backend name (see :mod:`repro.savanna.backends`).
        Simulated backends need ``cluster``; real backends need an
        ``app_fn=`` keyword (picklable ``callable(parameters) -> value``
        — module-level, not a lambda, for ``"local-processes"``) and
        accept ``max_workers=``, ``retry_policy=``, ``seed=``,
        ``chunk_size=`` and ``bus=``.
    directory:
        If given, per-run progress is journaled incrementally (the
        resume record survives a killed driver) and final statuses are
        compacted back into ``status.json``.  A path is accepted too and
        resolved through
        :func:`~repro.cheetah.directory.resolve_campaign_dir` (created
        on first use) — the same resolution the ``repro.lint`` CLI uses,
        so the linted end point and the resumed end point are one.
    resume:
        With a ``directory``: skip runs whose durable status (base
        record + journal) is already DONE, emitting ``group.resumed``.
        ``resume=False`` re-executes every run of the group.
    lint:
        Run the ``repro.lint`` manifest rules before executing anything
        and refuse (``CampaignLintError``) on ERROR findings.  Pass
        ``lint=False`` to execute a campaign the analyzer rejects.
    report:
        Collect this group's events off the bus and analyze them after
        the group drains: emits one ``campaign.report`` instant carrying
        the headline numbers and, with a ``directory``, merges the full
        :class:`~repro.observability.analysis.CampaignReport` into
        ``.cheetah/report.json`` (read it back with
        ``directory.read_report()``).  For real backends the spans are
        genuine wall-clock measurements, so the critical path and the
        straggler list describe the machine you actually ran on.
    store:
        With a ``directory``, real-run outcomes are bulk-recorded into
        the durable campaign store at ``.cheetah/store.sqlite``
        (:mod:`repro.store`) — chunked ``executemany`` ingestion, one
        transaction per chunk, instead of one fsynced JSON file per run.
        ``store=False`` restores the legacy per-file-only persistence.
    json_results:
        Opt-in per-run ``result.json`` export alongside the store
        (``directory.read_run_result`` reads either form transparently).
        Ignored when ``store=False`` — the legacy path always writes
        the files.
    cancel:
        External stop signal (``threading.Event`` or zero-argument
        callable).  Real backends poll it while executing and take the
        graceful-interrupt path when it fires (unfinished runs report
        ``status="interrupted"`` and compact to PENDING — resumable);
        simulated backends honour it only between groups (the
        discrete-event simulation of one group is atomic).
    trace_id:
        Correlation id stamped on the group span events and — on real
        backends — propagated into every task spec and worker process
        (minted fresh when not supplied).
    """
    trace_id = trace_id or new_trace_id()
    if backend_kind(backend) == "real":
        return _execute_manifest_real(
            manifest,
            cluster,
            group=group,
            backend=backend,
            directory=directory,
            resume=resume,
            lint=lint,
            report=report,
            store=store,
            json_results=json_results,
            cancel=cancel,
            trace_id=trace_id,
            backend_kwargs=backend_kwargs,
        )
    if duration_model is None or cluster is None:
        raise ValueError(
            f"backend {backend!r} is simulated and requires both a "
            "duration_model and a cluster"
        )
    if lint:
        _pre_run_lint(manifest, cluster.bus, cluster, backend_kwargs)
    group = _resolve_group(manifest, group)
    work = _resolve_pending(manifest, group, directory, resume)

    tasks = tasks_from_manifest(work.sub, duration_model)
    executor = create_executor(backend, cluster=cluster, **backend_kwargs)
    # Streaming analysis: events fold into report state as they are
    # emitted (batch-aware, O(1) memory per event) instead of being
    # buffered whole and replayed after the run.
    streaming = _make_streaming(cluster.bus) if report else None
    cluster.bus.emit(
        GROUP,
        phase=BEGIN,
        campaign=manifest.campaign,
        group=group,
        runs=len(tasks),
        backend=backend,
        trace_id=trace_id,
    )
    if work.skipped:
        cluster.bus.emit(
            GROUP_RESUMED,
            campaign=manifest.campaign,
            total=len(work.sub.runs) + work.skipped,
            skipped=work.skipped,
            pending=len(tasks),
            trace_id=trace_id,
        )
    result = executor.run(
        tasks,
        nodes=work.meta["nodes"],
        walltime=work.meta["walltime"],
        max_allocations=max_allocations,
        inter_allocation_gap=inter_allocation_gap,
        name=f"{manifest.campaign}/{group}",
        checkpoint=work.checkpoint,
    )
    cluster.bus.emit(
        GROUP,
        phase=END,
        campaign=manifest.campaign,
        group=group,
        completed=len(result.completed),
        trace_id=trace_id,
    )
    if streaming is not None:
        streaming.detach()
        _report_group(cluster.bus, work.directory, streaming.reports())
    if work.directory is not None:
        work.directory.update_status(
            {task.name: _STATE_TO_STATUS[task.state] for task in tasks}
        )
    return result


def _execute_manifest_real(
    manifest: CampaignManifest,
    cluster,
    *,
    group,
    backend,
    directory,
    resume,
    lint,
    report,
    store,
    json_results,
    cancel,
    trace_id,
    backend_kwargs,
) -> RealCampaignResult:
    """The real-execution drive path: same stack, wall-clock substrate.

    Mirrors the simulated path stage for stage — lint gate, resume set
    computation, group span, checkpoint attach, report analysis, status
    compaction — but hands the pending runs to a
    :class:`~repro.savanna.realexec.RealExecutor` (with the external
    ``cancel`` signal threaded through) and persists each run's real
    outcome into the campaign directory.
    """
    app_fn = backend_kwargs.pop("app_fn", None)
    if app_fn is None:
        raise ValueError(
            f"backend {backend!r} executes real code: pass "
            "app_fn=callable(parameters) -> value (module-level, so the "
            "process pool can pickle it)"
        )
    bus = backend_kwargs.pop("bus", None)
    if bus is None:
        bus = cluster.bus if cluster is not None else wall_clock_bus(
            f"drive-{manifest.campaign}"
        )
    lint_report = None
    if lint:
        lint_report = _pre_run_lint(
            manifest, bus, cluster, backend_kwargs,
            app_fn=app_fn, pool=_pool_of(backend),
        )
    group = _resolve_group(manifest, group)
    work = _resolve_pending(manifest, group, directory, resume)
    if work.directory is not None and lint_report is not None:
        work.directory.write_lint_report(lint_report)

    executor = create_executor(backend, **backend_kwargs)
    streaming = _make_streaming(bus) if report else None
    bus.emit(
        GROUP,
        phase=BEGIN,
        campaign=manifest.campaign,
        group=group,
        runs=len(work.sub.runs),
        backend=backend,
        trace_id=trace_id,
    )
    if work.skipped:
        bus.emit(
            GROUP_RESUMED,
            campaign=manifest.campaign,
            total=len(work.sub.runs) + work.skipped,
            skipped=work.skipped,
            pending=len(work.sub.runs),
            trace_id=trace_id,
        )
    if work.checkpoint is not None:
        work.checkpoint.attach(bus)
    try:
        result = executor.execute(
            work.sub,
            app_fn,
            bus=bus,
            name=f"{manifest.campaign}/{group}",
            cancel=cancel,
            trace_id=trace_id,
        )
    finally:
        if work.checkpoint is not None:
            work.checkpoint.detach()
            work.checkpoint.compact()
    bus.emit(
        GROUP,
        phase=END,
        campaign=manifest.campaign,
        group=group,
        completed=len(result.completed),
        trace_id=trace_id,
    )
    if streaming is not None:
        streaming.detach()
        _report_group(bus, work.directory, streaming.reports())
    if work.directory is not None:
        if store:
            # Durable path: outcomes land in .cheetah/store.sqlite via
            # chunked bulk ingestion; per-run JSON files are the opt-in
            # human-inspection export.
            work.directory.record_results(result.results, json_export=json_results)
        else:
            for rid, run_result in result.results.items():
                if run_result.status != "interrupted":
                    work.directory.write_run_result(rid, asdict(run_result))
        work.directory.update_status(
            {rid: _REAL_TO_STATUS[r.status] for rid, r in result.results.items()}
        )
    return result


def _make_streaming(bus):
    """Attach a streaming report builder to ``bus`` (import kept local)."""
    from repro.observability.analysis import StreamingCampaignReport

    return StreamingCampaignReport().attach(bus)


def _report_group(bus, directory, reports) -> None:
    """Publish one group's finalized campaign reports.

    Emits one ``campaign.report`` instant per campaign span the
    streaming builder saw (normally one — the executor wraps the group's
    allocations in a single campaign span) and writes the full reports
    into the campaign directory when there is one.
    """
    for r in reports:
        bus.emit(CAMPAIGN_REPORT, **r.headline())
    if directory is not None and reports:
        directory.write_report(reports)
