"""High-level drive: manifest in, executed campaign + recorded status out.

Ties the layers together the way §V-D describes the user experience: the
scientist composes the campaign; execution, status tracking, and
resubmission are the tool's problem.  ``execute_manifest`` runs a
campaign manifest through a named backend and (optionally) records
per-run outcomes into the campaign directory so a later invocation
resumes exactly the pending set.

Two execution worlds share this one entry point, routed on the backend's
registered kind (:func:`~repro.savanna.backends.backend_kind`):

- **simulated** backends (``"pilot"``, ``"static-sets"``) take a
  ``duration_model`` and a :class:`~repro.cluster.cluster.SimulatedCluster`
  and replay the campaign on simulated time;
- **real** backends (``"local-threads"``, ``"local-processes"``) take an
  ``app_fn=`` keyword — a picklable ``callable(parameters) -> value`` —
  and execute genuine Python on wall-clock time through
  :class:`~repro.savanna.realexec.RealExecutor`.  ``duration_model`` and
  ``cluster`` may then be ``None``; events ride a wall-clock
  :class:`~repro.observability.EventBus` created per drive (or pass
  ``bus=`` to share one across groups).

Both worlds get the full stack: the pre-run ``repro.lint`` gate,
incremental :class:`~repro.resilience.CampaignCheckpoint` journaling
(one JSONL line per task transition, compacted into ``status.json`` when
the group drains — a driver process killed mid-campaign loses at most
the in-flight attempts), ``resume=True`` re-queuing exactly the runs not
yet recorded DONE, ``group`` spans / ``group.resumed`` instants on the
bus, and ``report=True`` trace analytics: a collector rides the bus for
the duration of the group, the captured events are analyzed (see
:mod:`repro.observability.analysis`), one ``campaign.report`` instant
with the headline numbers (makespan, utilization, critical path,
stragglers) is emitted, and — when a ``directory`` is in play — the full
report is merged into the campaign end point's ``.cheetah/report.json``.
Real runs additionally persist each run's outcome (value, error +
traceback, seed, attempts) as ``<run>/result.json`` in the directory.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.cheetah.directory import CampaignDirectory, RunStatus, resolve_campaign_dir
from repro.cheetah.manifest import CampaignManifest
from repro.cluster.cluster import SimulatedCluster
from repro.cluster.job import TaskState
from repro.lint.engine import CampaignLintError, lint_manifest
from repro.observability import (
    BEGIN,
    CAMPAIGN_LINTED,
    CAMPAIGN_REPORT,
    END,
    GROUP,
    GROUP_RESUMED,
)
from repro.resilience.checkpoint import CampaignCheckpoint
from repro.savanna.backends import backend_kind, create_executor
from repro.savanna.executor import CampaignResult, tasks_from_manifest
from repro.savanna.realexec import RealCampaignResult, wall_clock_bus

_STATE_TO_STATUS = {
    TaskState.DONE: RunStatus.DONE,
    TaskState.FAILED: RunStatus.FAILED,
    TaskState.KILLED: RunStatus.PENDING,  # killed-at-walltime runs are retryable
    TaskState.PENDING: RunStatus.PENDING,
    TaskState.RUNNING: RunStatus.RUNNING,
}

#: Real-run result status -> durable run status ("interrupted" runs are
#: retryable, so they record as PENDING — resume re-queues them).
_REAL_TO_STATUS = {
    "done": RunStatus.DONE,
    "failed": RunStatus.FAILED,
    "interrupted": RunStatus.PENDING,
}


def _pre_run_lint(manifest, bus, cluster, backend_kwargs) -> None:
    """The ``repro.lint`` gate: refuse campaigns with ERROR findings.

    Runs the manifest rules with the cluster spec (when there is a
    cluster — real backends lint without one) and the retry policy the
    execution will actually use, emits one ``campaign.linted`` instant
    with the finding counts, and raises
    :class:`~repro.lint.engine.CampaignLintError` on any ERROR —
    misconfiguration surfaces at submit time, not mid-allocation.
    """
    report = lint_manifest(
        manifest,
        cluster=cluster,
        retry_policy=backend_kwargs.get("retry_policy"),
    )
    counts = report.counts()
    bus.emit(
        CAMPAIGN_LINTED,
        campaign=manifest.campaign,
        errors=counts["error"],
        warnings=counts["warning"],
        infos=counts["info"],
        suppressed=len(report.suppressed),
    )
    if report.errors:
        raise CampaignLintError(report, campaign=manifest.campaign)


def _resolve_group(manifest: CampaignManifest, group: str | None) -> str:
    if group is not None:
        return group
    if len(manifest.groups) != 1:
        raise ValueError(
            "manifest has multiple groups; pass group= to pick the "
            f"resource envelope (groups: {[g['name'] for g in manifest.groups]})"
        )
    return manifest.groups[0]["name"]


def execute_campaign(
    manifest: CampaignManifest,
    duration_model=None,
    cluster: SimulatedCluster | None = None,
    backend: str = "pilot",
    directory: CampaignDirectory | None = None,
    max_allocations_per_group: int = 1,
    inter_allocation_gap: float = 0.0,
    resume: bool = True,
    lint: bool = True,
    report: bool = False,
    **backend_kwargs,
) -> dict:
    """Execute every SweepGroup of a campaign, in declaration order.

    Groups run sequentially (each group's allocation is submitted when
    the previous group finishes), matching how a scientist walks through
    a multi-group study.  Returns ``{group name: CampaignResult}`` (or
    ``RealCampaignResult`` for real backends).

    The whole campaign is linted once up front (see
    :func:`execute_manifest`'s ``lint`` parameter); per-group calls then
    skip the redundant re-analysis.  ``report=True`` analyzes each
    group's trace as it completes (see :func:`execute_manifest`).
    """
    if backend_kind(backend) == "real":
        # One wall-clock bus for the whole campaign, so the groups share
        # a time base and any subscriber sees the full story.
        backend_kwargs.setdefault("bus", wall_clock_bus(f"drive-{manifest.campaign}"))
        if lint:
            _pre_run_lint(manifest, backend_kwargs["bus"], cluster, backend_kwargs)
    else:
        if cluster is None:
            raise ValueError(
                f"backend {backend!r} is simulated and requires a cluster"
            )
        if lint:
            _pre_run_lint(manifest, cluster.bus, cluster, backend_kwargs)
    results: dict = {}
    for meta in manifest.groups:
        results[meta["name"]] = execute_manifest(
            manifest,
            duration_model,
            cluster,
            group=meta["name"],
            backend=backend,
            directory=directory,
            max_allocations=max_allocations_per_group,
            inter_allocation_gap=inter_allocation_gap,
            resume=resume,
            lint=False,
            report=report,
            **backend_kwargs,
        )
    return results


def execute_manifest(
    manifest: CampaignManifest,
    duration_model=None,
    cluster: SimulatedCluster | None = None,
    group: str | None = None,
    backend: str = "pilot",
    directory: CampaignDirectory | None = None,
    max_allocations: int = 1,
    inter_allocation_gap: float = 0.0,
    resume: bool = True,
    lint: bool = True,
    report: bool = False,
    **backend_kwargs,
) -> CampaignResult | RealCampaignResult:
    """Execute (part of) a campaign manifest through a named backend.

    Parameters
    ----------
    manifest:
        The abstract campaign.
    duration_model:
        ``fn(parameters) -> seconds`` mapping runs to nominal durations.
        Required by simulated backends; ignored by real ones (real code
        takes however long it takes).
    group:
        Restrict execution to one SweepGroup (default: the whole
        campaign; the manifest must then contain exactly one group so the
        nodes/walltime envelope is unambiguous).
    backend:
        Executor backend name (see :mod:`repro.savanna.backends`).
        Simulated backends need ``cluster``; real backends need an
        ``app_fn=`` keyword (picklable ``callable(parameters) -> value``
        — module-level, not a lambda, for ``"local-processes"``) and
        accept ``max_workers=``, ``retry_policy=``, ``seed=``,
        ``chunk_size=`` and ``bus=``.
    directory:
        If given, per-run progress is journaled incrementally (the
        resume record survives a killed driver) and final statuses are
        compacted back into ``status.json``.  A path is accepted too and
        resolved through
        :func:`~repro.cheetah.directory.resolve_campaign_dir` (created
        on first use) — the same resolution the ``repro.lint`` CLI uses,
        so the linted end point and the resumed end point are one.
    resume:
        With a ``directory``: skip runs whose durable status (base
        record + journal) is already DONE, emitting ``group.resumed``.
        ``resume=False`` re-executes every run of the group.
    lint:
        Run the ``repro.lint`` manifest rules before executing anything
        and refuse (``CampaignLintError``) on ERROR findings.  Pass
        ``lint=False`` to execute a campaign the analyzer rejects.
    report:
        Collect this group's events off the bus and analyze them after
        the group drains: emits one ``campaign.report`` instant carrying
        the headline numbers and, with a ``directory``, merges the full
        :class:`~repro.observability.analysis.CampaignReport` into
        ``.cheetah/report.json`` (read it back with
        ``directory.read_report()``).  For real backends the spans are
        genuine wall-clock measurements, so the critical path and the
        straggler list describe the machine you actually ran on.
    """
    if backend_kind(backend) == "real":
        return _execute_manifest_real(
            manifest,
            cluster,
            group=group,
            backend=backend,
            directory=directory,
            resume=resume,
            lint=lint,
            report=report,
            backend_kwargs=backend_kwargs,
        )
    if duration_model is None or cluster is None:
        raise ValueError(
            f"backend {backend!r} is simulated and requires both a "
            "duration_model and a cluster"
        )
    if lint:
        _pre_run_lint(manifest, cluster.bus, cluster, backend_kwargs)
    group = _resolve_group(manifest, group)
    meta = manifest.group_meta(group)

    selected = manifest.runs_in_group(group)
    checkpoint = None
    skipped = 0
    if directory is not None and not isinstance(directory, CampaignDirectory):
        directory = resolve_campaign_dir(directory, manifest, create=True)
    if directory is not None:
        checkpoint = CampaignCheckpoint(directory)
        if resume:
            status = checkpoint.effective_status()
            before = len(selected)
            selected = tuple(
                r for r in selected if status[r.run_id] is not RunStatus.DONE
            )
            skipped = before - len(selected)

    sub = CampaignManifest(
        campaign=manifest.campaign,
        app=manifest.app,
        runs=selected,
        executable=manifest.executable,
        objective=manifest.objective,
        groups=(dict(meta),),
    )
    tasks = tasks_from_manifest(sub, duration_model)
    executor = create_executor(backend, cluster=cluster, **backend_kwargs)
    collected: list = []
    unsubscribe = cluster.bus.subscribe(collected.append) if report else None
    cluster.bus.emit(
        GROUP,
        phase=BEGIN,
        campaign=manifest.campaign,
        group=group,
        runs=len(tasks),
        backend=backend,
    )
    if skipped:
        cluster.bus.emit(
            GROUP_RESUMED,
            campaign=manifest.campaign,
            total=len(selected) + skipped,
            skipped=skipped,
            pending=len(tasks),
        )
    result = executor.run(
        tasks,
        nodes=meta["nodes"],
        walltime=meta["walltime"],
        max_allocations=max_allocations,
        inter_allocation_gap=inter_allocation_gap,
        name=f"{manifest.campaign}/{group}",
        checkpoint=checkpoint,
    )
    cluster.bus.emit(
        GROUP,
        phase=END,
        campaign=manifest.campaign,
        group=group,
        completed=len(result.completed),
    )
    if unsubscribe is not None:
        unsubscribe()
        _report_group(cluster.bus, directory, collected)
    if directory is not None:
        directory.update_status(
            {task.name: _STATE_TO_STATUS[task.state] for task in tasks}
        )
    return result


def _execute_manifest_real(
    manifest: CampaignManifest,
    cluster,
    *,
    group,
    backend,
    directory,
    resume,
    lint,
    report,
    backend_kwargs,
) -> RealCampaignResult:
    """The real-execution drive path: same stack, wall-clock substrate.

    Mirrors the simulated path stage for stage — lint gate, resume set
    computation, group span, checkpoint attach, report analysis, status
    compaction — but hands the pending runs to a
    :class:`~repro.savanna.realexec.RealExecutor` and persists each
    run's real outcome into the campaign directory.
    """
    app_fn = backend_kwargs.pop("app_fn", None)
    if app_fn is None:
        raise ValueError(
            f"backend {backend!r} executes real code: pass "
            "app_fn=callable(parameters) -> value (module-level, so the "
            "process pool can pickle it)"
        )
    bus = backend_kwargs.pop("bus", None)
    if bus is None:
        bus = cluster.bus if cluster is not None else wall_clock_bus(
            f"drive-{manifest.campaign}"
        )
    if lint:
        _pre_run_lint(manifest, bus, cluster, backend_kwargs)
    group = _resolve_group(manifest, group)
    meta = manifest.group_meta(group)

    selected = manifest.runs_in_group(group)
    checkpoint = None
    skipped = 0
    if directory is not None and not isinstance(directory, CampaignDirectory):
        directory = resolve_campaign_dir(directory, manifest, create=True)
    if directory is not None:
        checkpoint = CampaignCheckpoint(directory)
        if resume:
            status = checkpoint.effective_status()
            before = len(selected)
            selected = tuple(
                r for r in selected if status[r.run_id] is not RunStatus.DONE
            )
            skipped = before - len(selected)

    sub = CampaignManifest(
        campaign=manifest.campaign,
        app=manifest.app,
        runs=selected,
        executable=manifest.executable,
        objective=manifest.objective,
        groups=(dict(meta),),
    )
    executor = create_executor(backend, **backend_kwargs)
    collected: list = []
    unsubscribe = bus.subscribe(collected.append) if report else None
    bus.emit(
        GROUP,
        phase=BEGIN,
        campaign=manifest.campaign,
        group=group,
        runs=len(selected),
        backend=backend,
    )
    if skipped:
        bus.emit(
            GROUP_RESUMED,
            campaign=manifest.campaign,
            total=len(selected) + skipped,
            skipped=skipped,
            pending=len(selected),
        )
    if checkpoint is not None:
        checkpoint.attach(bus)
    try:
        result = executor.execute(
            sub, app_fn, bus=bus, name=f"{manifest.campaign}/{group}"
        )
    finally:
        if checkpoint is not None:
            checkpoint.detach()
            checkpoint.compact()
    bus.emit(
        GROUP,
        phase=END,
        campaign=manifest.campaign,
        group=group,
        completed=len(result.completed),
    )
    if unsubscribe is not None:
        unsubscribe()
        _report_group(bus, directory, collected)
    if directory is not None:
        directory.update_status(
            {rid: _REAL_TO_STATUS[r.status] for rid, r in result.results.items()}
        )
        for rid, run_result in result.results.items():
            if run_result.status != "interrupted":
                directory.write_run_result(rid, asdict(run_result))
    return result


def _report_group(bus, directory, events) -> None:
    """Analyze one group's captured events and publish the results.

    Emits one ``campaign.report`` instant per campaign span found in the
    capture (normally one — the executor wraps the group's allocations in
    a single campaign span) and merges the full reports into the campaign
    end point when there is one.
    """
    from repro.observability.analysis import analyze_events

    reports = analyze_events(events)
    for r in reports:
        bus.emit(CAMPAIGN_REPORT, **r.headline())
    if directory is not None and reports:
        directory.write_report(reports)
