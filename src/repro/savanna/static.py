"""The set-synchronized baseline executor — the *original* workflow (§V-D).

"The script creates the directory hierarchy for the runs and submits them
in groups or 'sets' with explicit synchronization at the end of a set ...
Straggler processes can severely limit the performance of the overall
workflow."

Observability: identical event surface to the pilot
(``campaign``/``alloc``/``task`` spans, ``node.*`` instants) minus
``task.requeued`` — the original workflow never retries within an
allocation, so barrier idling is directly visible as the gap between a
set's last ``task`` end and the next set's first ``task`` begin.
"""

from __future__ import annotations

from repro._util import check_nonnegative
from repro.cluster.cluster import SimulatedCluster
from repro.savanna._alloc import StaticSetRun
from repro.savanna.executor import AllocationOutcome, CampaignResult
from repro.savanna.runner import run_campaign


class StaticSetExecutor:
    """Fixed sets behind a barrier; no failure retry within an allocation.

    Parameters
    ----------
    cluster:
        The simulated machine to execute on.
    set_gap:
        Seconds of bookkeeping between the end of one set and the launch
        of the next (the hand-driven script's submit/check cycle).
    """

    def __init__(self, cluster: SimulatedCluster, set_gap: float = 0.0):
        check_nonnegative("set_gap", set_gap)
        self.cluster = cluster
        self.set_gap = set_gap

    def make_run(self, alloc, tasks, outcome: AllocationOutcome, done_cb) -> StaticSetRun:
        return StaticSetRun(
            self.cluster, alloc, tasks, outcome, done_cb=done_cb, set_gap=self.set_gap
        )

    def run(
        self,
        tasks,
        nodes: int,
        walltime: float,
        max_allocations: int = 1,
        inter_allocation_gap: float = 0.0,
        end_early: bool = True,
        name: str = "static",
    ) -> CampaignResult:
        """Execute ``tasks`` over up to ``max_allocations`` batch jobs."""
        return run_campaign(
            self,
            self.cluster,
            tasks,
            nodes=nodes,
            walltime=walltime,
            max_allocations=max_allocations,
            inter_allocation_gap=inter_allocation_gap,
            end_early=end_early,
            name=name,
        )
