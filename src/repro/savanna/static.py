"""The set-synchronized baseline executor — the *original* workflow (§V-D).

"The script creates the directory hierarchy for the runs and submits them
in groups or 'sets' with explicit synchronization at the end of a set ...
Straggler processes can severely limit the performance of the overall
workflow."

Observability: identical event surface to the pilot
(``campaign``/``alloc``/``task`` spans, ``node.*`` instants) minus
``task.requeued`` — the original workflow never requeues within an
allocation, so barrier idling is directly visible as the gap between a
set's last ``task`` end and the next set's first ``task`` begin.  With a
:class:`~repro.resilience.RetryPolicy` attached, in-place relaunches
additionally emit ``task.retry`` instants.
"""

from __future__ import annotations

from repro._util import check_nonnegative
from repro.cluster.cluster import SimulatedCluster
from repro.resilience.policy import RetryPolicy
from repro.savanna._alloc import StaticSetRun
from repro.savanna._vector import VectorStaticSetRun, vector_eligible
from repro.savanna.executor import AllocationOutcome, CampaignResult
from repro.savanna.runner import run_campaign


class StaticSetExecutor:
    """Fixed sets behind a barrier; no failure retry unless a policy grants it.

    Parameters
    ----------
    cluster:
        The simulated machine to execute on.
    set_gap:
        Seconds of bookkeeping between the end of one set and the launch
        of the next (the hand-driven script's submit/check cycle).
    retry_policy:
        Optional :class:`~repro.resilience.RetryPolicy`; when given,
        failed tasks are relaunched in place (the barrier waits for the
        retry).  Default preserves the paper's baseline: failures are
        only re-curated manually afterwards.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        set_gap: float = 0.0,
        retry_policy: RetryPolicy | None = None,
    ):
        check_nonnegative("set_gap", set_gap)
        if retry_policy is not None and not isinstance(retry_policy, RetryPolicy):
            raise ValueError(
                f"retry_policy must be a RetryPolicy, got {type(retry_policy).__name__}"
            )
        self.cluster = cluster
        self.set_gap = set_gap
        self.retry_policy = retry_policy

    def make_run(self, alloc, tasks, outcome: AllocationOutcome, done_cb) -> StaticSetRun:
        """Build the within-allocation engine (vectorized when eligible;
        ``REPRO_SIMCORE=event`` forces the event-driven path)."""
        run_cls = (
            VectorStaticSetRun if vector_eligible(self.cluster, tasks) else StaticSetRun
        )
        return run_cls(
            self.cluster,
            alloc,
            tasks,
            outcome,
            done_cb=done_cb,
            set_gap=self.set_gap,
            policy=self.retry_policy,
        )

    def run(
        self,
        tasks,
        nodes: int,
        walltime: float,
        max_allocations: int = 1,
        inter_allocation_gap: float = 0.0,
        end_early: bool = True,
        name: str = "static",
        checkpoint=None,
        resume: bool = False,
    ) -> CampaignResult:
        """Execute ``tasks`` over up to ``max_allocations`` batch jobs."""
        return run_campaign(
            self,
            self.cluster,
            tasks,
            nodes=nodes,
            walltime=walltime,
            max_allocations=max_allocations,
            inter_allocation_gap=inter_allocation_gap,
            end_early=end_early,
            name=name,
            checkpoint=checkpoint,
            resume=resume,
        )
