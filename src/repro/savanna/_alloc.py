"""Within-allocation execution engines (internal).

Both simulated executors share the same mechanics — place a task on free
nodes, sample a failure, schedule the end event, finalize attempts when
the walltime kill arrives — and differ only in *dispatch*: the pilot pulls
the next task the moment nodes free; the static engine launches fixed sets
behind a barrier.

Observability: every attempt is one ``task`` span on the cluster bus
(``begin`` at launch with the placement and payload, ``end`` with the
outcome — ``done``/``failed``/``killed``); pilot requeues additionally
emit a ``task.requeued`` instant carrying the retry count.
"""

from __future__ import annotations

from collections import deque

from repro.cluster.cluster import SimulatedCluster
from repro.cluster.job import Allocation, Task, TaskAttempt, TaskState
from repro.observability import BEGIN, END, TASK, TASK_REQUEUED
from repro.savanna.executor import AllocationOutcome


class _BaseAllocationRun:
    """Common node/event bookkeeping for one allocation."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        alloc: Allocation,
        tasks: list[Task],
        outcome: AllocationOutcome,
        done_cb=None,
    ):
        self.cluster = cluster
        self.bus = cluster.bus
        self.alloc = alloc
        self.outcome = outcome
        self.done_cb = done_cb
        self.free = list(alloc.nodes)
        # task -> (attempt, end-event handle, nodes)
        self.running: dict[int, tuple] = {}
        self.finished = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Dispatch initial work; called at allocation start."""
        raise NotImplementedError

    def on_walltime_kill(self) -> None:
        """Finalize running attempts at the walltime deadline.

        The scheduler has already closed the nodes' busy intervals; here we
        cancel pending end events and mark the interrupted tasks KILLED so
        a later resubmission retries them.
        """
        now = self.cluster.sim.now
        for task_id, (attempt, handle, nodes) in list(self.running.items()):
            handle.cancel()
            attempt.end = now
            attempt.outcome = TaskState.KILLED
            attempt.task.state = TaskState.KILLED
            self.outcome.killed.append(attempt.task)
            self.bus.emit(
                TASK,
                phase=END,
                task=attempt.task.name,
                task_id=task_id,
                node=nodes[0].index,
                outcome=TaskState.KILLED.value,
            )
        self.running.clear()
        self.finished = True

    # -- task mechanics ------------------------------------------------------

    def _launch(self, task: Task) -> None:
        """Place ``task`` on free nodes and schedule its completion."""
        if task.nodes > len(self.free):
            raise RuntimeError(
                f"task {task.name!r} needs {task.nodes} nodes, {len(self.free)} free"
            )
        nodes = [self.free.pop(0) for _ in range(task.nodes)]
        now = self.cluster.sim.now
        for node in nodes:
            node.mark_busy(now)
        task.state = TaskState.RUNNING
        attempt = TaskAttempt(task=task, node_indices=[n.index for n in nodes], start=now)
        task.attempts.append(attempt)
        self.outcome.attempts.append(attempt)
        self.bus.emit(
            TASK,
            phase=BEGIN,
            task=task.name,
            task_id=task.task_id,
            node=nodes[0].index,
            nodes=[n.index for n in nodes],
            attempt=len(task.attempts),
            payload=dict(task.payload),
        )
        # A multi-node task runs at the pace of its slowest member node.
        speed = min(node.speed for node in nodes)
        wall_duration = task.duration / speed
        fail_at = self.cluster.failures.sample_failure_time(wall_duration, task.nodes)
        if fail_at is None:
            elapsed, result = wall_duration, TaskState.DONE
        else:
            elapsed, result = fail_at, TaskState.FAILED
        handle = self.cluster.sim.schedule(elapsed, self._on_task_end, task, result, nodes)
        self.running[task.task_id] = (attempt, handle, nodes)

    def _on_task_end(self, task: Task, result: TaskState, nodes) -> None:
        now = self.cluster.sim.now
        attempt, _handle, _nodes = self.running.pop(task.task_id)
        attempt.end = now
        attempt.outcome = result
        task.state = result
        for node in nodes:
            node.mark_idle(now)
            self.free.append(node)
        self.bus.emit(
            TASK,
            phase=END,
            task=task.name,
            task_id=task.task_id,
            node=nodes[0].index,
            outcome=result.value,
        )
        if result is TaskState.DONE:
            self.outcome.completed.append(task)
        self.after_task_end(task, result)

    def after_task_end(self, task: Task, result: TaskState) -> None:
        """Dispatch hook: decide what to run next."""
        raise NotImplementedError

    def _maybe_finish(self) -> None:
        """Signal the runner when no work remains in this allocation."""
        if not self.finished and not self.running and self.exhausted():
            self.finished = True
            if self.done_cb is not None:
                self.done_cb()

    def exhausted(self) -> bool:
        """True when the dispatcher has nothing left to launch."""
        raise NotImplementedError


class PilotRun(_BaseAllocationRun):
    """Savanna's dynamic pilot: greedy FIFO pull onto freed nodes."""

    def __init__(self, cluster, alloc, tasks, outcome, done_cb=None, retry_failed=True, max_retries=2):
        super().__init__(cluster, alloc, tasks, outcome, done_cb)
        self.pending = deque(tasks)
        self.retry_failed = retry_failed
        self.max_retries = max_retries
        self._retry_counts: dict[int, int] = {}

    def start(self) -> None:
        self._fill()
        self._maybe_finish()

    def _fill(self) -> None:
        while self.pending and self.pending[0].nodes <= len(self.free):
            self._launch(self.pending.popleft())

    def after_task_end(self, task: Task, result: TaskState) -> None:
        if result is TaskState.FAILED:
            retries = self._retry_counts.get(task.task_id, 0)
            if self.retry_failed and retries < self.max_retries:
                self._retry_counts[task.task_id] = retries + 1
                task.state = TaskState.PENDING
                self.pending.append(task)
                self.bus.emit(
                    TASK_REQUEUED,
                    task=task.name,
                    task_id=task.task_id,
                    retries=retries + 1,
                )
            else:
                self.outcome.failed.append(task)
        self._fill()
        self._maybe_finish()

    def exhausted(self) -> bool:
        return not self.pending


class StaticSetRun(_BaseAllocationRun):
    """The original workflow: fixed sets with an end-of-set barrier.

    Tasks are chunked, in order, into sets that fit the allocation; the
    next set launches only after *every* task of the current set has
    finished (§V-D: "all experiments in a set must be complete before the
    next set is run"), plus an optional ``set_gap`` for the bookkeeping
    the human-driven scripts do between sets.  Failures are not retried —
    the original workflow curates a failed-run list manually afterwards.
    """

    def __init__(self, cluster, alloc, tasks, outcome, done_cb=None, set_gap: float = 0.0):
        super().__init__(cluster, alloc, tasks, outcome, done_cb)
        self.set_gap = set_gap
        self.sets = self._partition(tasks, len(alloc.nodes))
        self.next_set = 0
        self.in_flight = 0

    @staticmethod
    def _partition(tasks: list[Task], width: int) -> list[list[Task]]:
        sets: list[list[Task]] = []
        current: list[Task] = []
        used = 0
        for task in tasks:
            if task.nodes > width:
                raise ValueError(
                    f"task {task.name!r} needs {task.nodes} nodes; allocation has {width}"
                )
            if used + task.nodes > width:
                sets.append(current)
                current, used = [], 0
            current.append(task)
            used += task.nodes
        if current:
            sets.append(current)
        return sets

    def start(self) -> None:
        self._launch_next_set()
        self._maybe_finish()

    def _launch_next_set(self) -> None:
        if self.next_set >= len(self.sets):
            return
        batch = self.sets[self.next_set]
        self.next_set += 1
        self.in_flight = len(batch)
        for task in batch:
            self._launch(task)

    def after_task_end(self, task: Task, result: TaskState) -> None:
        if result is TaskState.FAILED:
            self.outcome.failed.append(task)
        self.in_flight -= 1
        if self.in_flight == 0:  # barrier reached
            if self.next_set < len(self.sets):
                if self.set_gap > 0:
                    self.cluster.sim.schedule(self.set_gap, self._barrier_release)
                else:
                    self._launch_next_set()
        self._maybe_finish()

    def _barrier_release(self) -> None:
        if not self.finished:  # the walltime may have killed the job meanwhile
            self._launch_next_set()
            self._maybe_finish()

    def exhausted(self) -> bool:
        return self.next_set >= len(self.sets) and self.in_flight == 0
