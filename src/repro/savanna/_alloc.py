"""Within-allocation execution engines (internal).

Both simulated executors share the same mechanics — place a task on free
nodes, consult the fault injector and the failure model, schedule the end
event, finalize attempts when the walltime kill arrives — and differ only
in *dispatch*: the pilot pulls the next task the moment nodes free; the
static engine launches fixed sets behind a barrier.

Failure handling is driven by a :class:`~repro.resilience.RetryPolicy`:
it caps any attempt's wall time (``task.timeout``), decides whether a
failed task gets another try and after what backoff delay
(``task.retry``), and bounds total retries per allocation.

Observability: every attempt is one ``task`` span on the cluster bus
(``begin`` at launch with the placement and payload, ``end`` with the
outcome — ``done``/``failed``/``killed``).  Injected faults emit a
``task.fault_injected`` instant inside the span; timeouts a
``task.timeout`` instant just before the failed ``end``; policy-granted
retries a ``task.retry`` instant at decision time, and (on the pilot) a
``task.requeued`` instant when the task actually re-enters the pending
queue after its backoff delay.
"""

from __future__ import annotations

from collections import deque
from operator import attrgetter

from repro.cluster.cluster import SimulatedCluster
from repro.cluster.job import Allocation, Task, TaskAttempt, TaskState
from repro.observability import (
    BEGIN,
    END,
    TASK,
    TASK_FAULT_INJECTED,
    TASK_REQUEUED,
    TASK_RETRY,
    TASK_TIMEOUT,
)
from repro.resilience.policy import RetryPolicy, as_policy
from repro.savanna.executor import AllocationOutcome

#: C-speed ``task.nodes`` accessor for whole-list scans.
_task_nodes = attrgetter("nodes")


class _BaseAllocationRun:
    """Common node/event bookkeeping for one allocation."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        alloc: Allocation,
        tasks: list[Task],
        outcome: AllocationOutcome,
        done_cb=None,
        policy: RetryPolicy | None = None,
    ):
        self.cluster = cluster
        self.bus = cluster.bus
        self.alloc = alloc
        self.outcome = outcome
        self.done_cb = done_cb
        self.policy = policy if policy is not None else RetryPolicy()
        self.free = list(alloc.nodes)
        # task -> (attempt, end-event handle, nodes)
        self.running: dict[int, tuple] = {}
        self.finished = False
        #: retries already spent in this allocation (vs. policy.allocation_budget)
        self.allocation_retries = 0
        self._retry_counts: dict[int, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Dispatch initial work; called at allocation start."""
        raise NotImplementedError

    def on_walltime_kill(self) -> None:
        """Finalize running attempts at the walltime deadline.

        The scheduler has already closed the nodes' busy intervals; here we
        cancel pending end events and mark the interrupted tasks KILLED so
        a later resubmission retries them.
        """
        now = self.cluster.sim.now
        for task_id, (attempt, handle, nodes) in list(self.running.items()):
            handle.cancel()
            attempt.end = now
            attempt.outcome = TaskState.KILLED
            attempt.task.state = TaskState.KILLED
            for node in nodes:
                node.restore()
            self.outcome.killed.append(attempt.task)
            self.bus.emit(
                TASK,
                phase=END,
                task=attempt.task.name,
                task_id=task_id,
                node=nodes[0].index,
                outcome=TaskState.KILLED.value,
            )
        self.running.clear()
        self.finished = True

    # -- retry bookkeeping ---------------------------------------------------

    def budget_left(self) -> bool:
        """True while this allocation may still spend retries."""
        budget = self.policy.allocation_budget
        return budget is None or self.allocation_retries < budget

    def grant_retry(self, task: Task) -> int | None:
        """Consume one retry for ``task`` if the policy allows it.

        Returns the (1-based) retry index granted, or ``None`` when the
        per-task or per-allocation budget is exhausted.  Emits the
        ``task.retry`` instant with the backoff delay on success.
        """
        retries = self._retry_counts.get(task.task_id, 0)
        if not self.policy.allows(retries) or not self.budget_left():
            return None
        index = retries + 1
        self._retry_counts[task.task_id] = index
        self.allocation_retries += 1
        self.bus.emit(
            TASK_RETRY,
            task=task.name,
            task_id=task.task_id,
            retries=index,
            delay=self.policy.delay(index),
        )
        return index

    # -- task mechanics ------------------------------------------------------

    def _launch(self, task: Task) -> None:
        """Place ``task`` on free nodes and schedule its completion."""
        if task.nodes > len(self.free):
            raise RuntimeError(
                f"task {task.name!r} needs {task.nodes} nodes, {len(self.free)} free"
            )
        nodes = [self.free.pop(0) for _ in range(task.nodes)]
        now = self.cluster.sim.now
        for node in nodes:
            node.mark_busy(now)
        task.state = TaskState.RUNNING
        attempt = TaskAttempt(task=task, node_indices=[n.index for n in nodes], start=now)
        task.attempts.append(attempt)
        self.outcome.attempts.append(attempt)
        attempt_no = len(task.attempts)
        self.bus.emit(
            TASK,
            phase=BEGIN,
            task=task.name,
            task_id=task.task_id,
            node=nodes[0].index,
            nodes=[n.index for n in nodes],
            attempt=attempt_no,
            payload=dict(task.payload),
        )
        decision = None
        if self.cluster.faults is not None:
            decision = self.cluster.faults.decide(task.name, attempt_no, task.duration)
        if decision is not None:
            self.bus.emit(
                TASK_FAULT_INJECTED,
                task=task.name,
                task_id=task.task_id,
                node=nodes[0].index,
                kind=decision.kind,
                attempt=attempt_no,
                fail_at=decision.fail_at,
                slowdown=decision.slowdown,
            )
            if decision.slowdown > 1.0:
                for node in nodes:
                    node.degrade(decision.slowdown)
        # A multi-node task runs at the pace of its slowest member node.
        speed = min(node.effective_speed for node in nodes)
        wall_duration = task.duration / speed
        elapsed, result = wall_duration, TaskState.DONE
        fail_at = self.cluster.failures.sample_failure_time(wall_duration, task.nodes)
        if decision is not None and decision.fail_at is not None:
            # The injected crash lands at the same *fraction* of the
            # attempt whatever the nodes' speed.
            injected = decision.fail_at / speed
            fail_at = injected if fail_at is None else min(fail_at, injected)
        if fail_at is not None:
            elapsed, result = fail_at, TaskState.FAILED
        timed_out = False
        timeout = self.policy.timeout_for(task)
        if timeout is not None and timeout < elapsed:
            elapsed, result, timed_out = timeout, TaskState.FAILED, True
        handle = self.cluster.sim.schedule(
            elapsed, self._on_task_end, task, result, nodes, timed_out
        )
        self.running[task.task_id] = (attempt, handle, nodes)

    def _on_task_end(self, task: Task, result: TaskState, nodes, timed_out: bool = False) -> None:
        now = self.cluster.sim.now
        attempt, _handle, _nodes = self.running.pop(task.task_id)
        attempt.end = now
        attempt.outcome = result
        task.state = result
        for node in nodes:
            node.restore()
            node.mark_idle(now)
            self.free.append(node)
        if timed_out:
            self.bus.emit(
                TASK_TIMEOUT,
                task=task.name,
                task_id=task.task_id,
                node=nodes[0].index,
                timeout=self.policy.timeout_for(task),
            )
        self.bus.emit(
            TASK,
            phase=END,
            task=task.name,
            task_id=task.task_id,
            node=nodes[0].index,
            outcome=result.value,
        )
        if result is TaskState.DONE:
            self.outcome.completed.append(task)
        self.after_task_end(task, result)

    def after_task_end(self, task: Task, result: TaskState) -> None:
        """Dispatch hook: decide what to run next."""
        raise NotImplementedError

    def _maybe_finish(self) -> None:
        """Signal the runner when no work remains in this allocation."""
        if not self.finished and not self.running and self.exhausted():
            self.finished = True
            if self.done_cb is not None:
                self.done_cb()

    def exhausted(self) -> bool:
        """True when the dispatcher has nothing left to launch."""
        raise NotImplementedError


class PilotRun(_BaseAllocationRun):
    """Savanna's dynamic pilot: greedy FIFO pull onto freed nodes.

    Failed tasks re-enter the pending queue after the policy's backoff
    delay, up to the per-task and per-allocation retry budgets.
    """

    def __init__(
        self,
        cluster,
        alloc,
        tasks,
        outcome,
        done_cb=None,
        retry_failed=True,
        max_retries=2,
        policy: RetryPolicy | None = None,
    ):
        if policy is None:
            policy = as_policy(max_retries)
        super().__init__(cluster, alloc, tasks, outcome, done_cb, policy=policy)
        self.pending = deque(tasks)
        self.retry_failed = retry_failed
        #: backoff timers currently in flight (delayed requeues)
        self._backing_off = 0

    def start(self) -> None:
        self._fill()
        self._maybe_finish()

    def _fill(self) -> None:
        while self.pending and self.pending[0].nodes <= len(self.free):
            self._launch(self.pending.popleft())

    def after_task_end(self, task: Task, result: TaskState) -> None:
        if result is TaskState.FAILED:
            index = self.grant_retry(task) if self.retry_failed else None
            if index is not None:
                delay = self.policy.delay(index)
                self._backing_off += 1
                if delay > 0:
                    self.cluster.sim.schedule(delay, self._requeue, task, index)
                else:
                    self._requeue(task, index)
            else:
                self.outcome.failed.append(task)
        self._fill()
        self._maybe_finish()

    def _requeue(self, task: Task, retry_index: int) -> None:
        """Re-enter the pending queue after the backoff delay."""
        self._backing_off -= 1
        if self.finished:
            # The walltime killed the allocation while this task was
            # backing off; it stays FAILED and the next allocation of the
            # campaign loop retries it.
            self.outcome.failed.append(task)
            return
        task.state = TaskState.PENDING
        self.pending.append(task)
        self.bus.emit(
            TASK_REQUEUED,
            task=task.name,
            task_id=task.task_id,
            retries=retry_index,
        )
        self._fill()
        self._maybe_finish()

    def exhausted(self) -> bool:
        return not self.pending and self._backing_off == 0


class StaticSetRun(_BaseAllocationRun):
    """The original workflow: fixed sets with an end-of-set barrier.

    Tasks are chunked, in order, into sets that fit the allocation; the
    next set launches only after *every* task of the current set has
    finished (§V-D: "all experiments in a set must be complete before the
    next set is run"), plus an optional ``set_gap`` for the bookkeeping
    the human-driven scripts do between sets.  By default failures are
    not retried — the original workflow curates a failed-run list
    manually afterwards — but a :class:`~repro.resilience.RetryPolicy`
    may grant in-place relaunches (the retried task keeps its set, so the
    barrier waits for it).
    """

    def __init__(
        self,
        cluster,
        alloc,
        tasks,
        outcome,
        done_cb=None,
        set_gap: float = 0.0,
        policy: RetryPolicy | None = None,
    ):
        super().__init__(cluster, alloc, tasks, outcome, done_cb, policy=policy)
        self.set_gap = set_gap
        self.sets = self._partition(tasks, len(alloc.nodes))
        self.next_set = 0
        self.in_flight = 0

    @staticmethod
    def _partition(tasks: list[Task], width: int) -> list[list[Task]]:
        # Bag-of-tasks campaigns (every task single-node) partition by
        # plain slicing — C-speed membership scan instead of a Python
        # loop over what may be tens of thousands of tasks.
        if set(map(_task_nodes, tasks)) == {1} and width >= 1:
            return [tasks[i : i + width] for i in range(0, len(tasks), width)]
        sets: list[list[Task]] = []
        current: list[Task] = []
        used = 0
        for task in tasks:
            if task.nodes > width:
                raise ValueError(
                    f"task {task.name!r} needs {task.nodes} nodes; allocation has {width}"
                )
            if used + task.nodes > width:
                sets.append(current)
                current, used = [], 0
            current.append(task)
            used += task.nodes
        if current:
            sets.append(current)
        return sets

    def start(self) -> None:
        self._launch_next_set()
        self._maybe_finish()

    def _launch_next_set(self) -> None:
        if self.next_set >= len(self.sets):
            return
        batch = self.sets[self.next_set]
        self.next_set += 1
        self.in_flight = len(batch)
        for task in batch:
            self._launch(task)

    def after_task_end(self, task: Task, result: TaskState) -> None:
        if result is TaskState.FAILED:
            index = self.grant_retry(task)
            if index is not None:
                # In-place retry: the task stays a member of its set, so
                # in_flight is unchanged and the barrier waits for it.
                delay = self.policy.delay(index)
                if delay > 0:
                    self.cluster.sim.schedule(delay, self._relaunch, task)
                else:
                    self._launch(task)
                return
            self.outcome.failed.append(task)
        self.in_flight -= 1
        if self.in_flight == 0:  # barrier reached
            if self.next_set < len(self.sets):
                if self.set_gap > 0:
                    self.cluster.sim.schedule(self.set_gap, self._barrier_release)
                else:
                    self._launch_next_set()
        self._maybe_finish()

    def _relaunch(self, task: Task) -> None:
        if self.finished:  # walltime hit while backing off
            self.outcome.failed.append(task)
            return
        self._launch(task)

    def _barrier_release(self) -> None:
        if not self.finished:  # the walltime may have killed the job meanwhile
            self._launch_next_set()
            self._maybe_finish()

    def exhausted(self) -> bool:
        return self.next_set >= len(self.sets) and self.in_flight == 0
