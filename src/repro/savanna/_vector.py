"""Vectorized within-allocation fast path (internal).

The event-driven engines in :mod:`repro.savanna._alloc` pay several
Python function calls, one simulator event, and one scalar RNG draw per
task attempt.  For the workloads the figure benches actually run —
single-node bag-of-tasks campaigns with no fault injector — the whole
allocation can instead be simulated *synchronously* inside ``start()``
with a local binary heap, batched failure draws, and direct
busy-interval writes, then surfaced to the rest of the stack through a
single simulator event (the early finish) or the scheduler's existing
walltime kill.

The contract is **bit-exactness**, not approximation.  A vectorized run
must be indistinguishable from the event-driven run it replaces:

- identical task states, attempt records (start/end/outcome/placement),
  and outcome lists (``attempts``/``completed``/``failed``/``killed``)
  in identical order;
- identical node ``busy_intervals``;
- an identical event stream on the cluster bus when anyone is
  subscribed, emitted through
  :meth:`~repro.observability.EventBus.publish_batch` with the same
  names, phases, timestamps, field dicts, and sequence numbers the
  per-event path would have produced;
- identical failure-RNG stream consumption, so campaigns that mix
  vectorized and event-driven allocations stay reproducible.  Batched
  ``Generator.exponential`` draws are bit-identical to the equivalent
  scalar draws, so :class:`_FailureDraws` samples speculatively from a
  deep-copied generator and then advances the real stream by exactly
  the number of draws consumed.

Eligibility (:func:`vector_eligible`): no fault injector (its per-launch
``decide`` consults a separate stream and can degrade nodes mid-attempt)
and single-node tasks only.  Everything else — heterogeneous node
speeds, failure sampling, retry policies with backoff and budgets,
timeouts, walltime kills, multi-allocation resume — is handled here.
``REPRO_SIMCORE=event`` in the environment forces the event-driven path
(the bench harness uses it to measure the speedup).

The semantic fine print replicated from the event path, for the next
reader who has to extend this: at equal timestamps the walltime-kill
event always wins (it is scheduled before any task event, so it holds a
lower sequence number) — an attempt ending exactly at the deadline is
KILLED; freed nodes re-enter a FIFO free list and survive set barriers;
killed tasks are finalized in launch order with busy intervals cut at
the deadline; a backoff timer that outlives its allocation resolves to
a terminal failure for that allocation's outcome without touching task
state.
"""

from __future__ import annotations

import copy
import os
from collections import deque
from bisect import bisect_left, insort
from heapq import heappop, heappush
from itertools import islice
from operator import attrgetter

import numpy as np

from repro.cluster.job import TaskAttempt, TaskState
from repro.observability.events import (
    BEGIN,
    END,
    INSTANT,
    NODE_BUSY,
    NODE_IDLE,
    TASK,
    TASK_REQUEUED,
    TASK_RETRY,
    TASK_TIMEOUT,
)
from repro.resilience.policy import RetryPolicy
from repro.savanna._alloc import PilotRun, StaticSetRun

_DONE = TaskState.DONE
_FAILED = TaskState.FAILED
_KILLED = TaskState.KILLED
_PENDING = TaskState.PENDING
_RUNNING = TaskState.RUNNING

#: Local heap entry kinds: [time, seq, kind, task, attempt|index, node, result, timed_out]
_END_EV, _REQUEUE_EV, _RELAUNCH_EV, _BARRIER_EV = 0, 1, 2, 3


def simcore_mode() -> str:
    """Which within-allocation engine to prefer: ``vector`` or ``event``."""
    return os.environ.get("REPRO_SIMCORE", "vector")


_task_nodes = attrgetter("nodes")


def vector_eligible(cluster, tasks) -> bool:
    """True when the allocation can take the vectorized fast path."""
    if simcore_mode() == "event":
        return False
    if cluster.faults is not None:
        return False
    # set(map(...)) scans at C speed; campaigns hand us tens of
    # thousands of tasks and this runs per allocation.
    counts = set(map(_task_nodes, tasks))
    return not counts or counts == {1}


class _FailureDraws:
    """Batched failure sampling that preserves the scalar RNG stream.

    Draws come from a deep copy of the failure model's generator in
    growing batches (batched ``exponential`` is bit-identical to the
    same number of scalar draws); :meth:`commit` then advances the
    *real* generator by exactly the consumed count, leaving its state
    byte-identical to what the event-driven path (one scalar draw per
    launch) would have produced.
    """

    __slots__ = ("_failures", "_scale", "_clone", "_buf", "_pos", "_size", "_consumed")

    def __init__(self, failures, hint: int = 64):
        # Caller guarantees failures.mttf is not None.  Replicate the
        # event path's arithmetic exactly: scale = 1.0 / (nodes / mttf)
        # with nodes == 1, which is not always bit-equal to mttf itself.
        hazard = 1 / failures.mttf
        self._scale = 1.0 / hazard
        self._failures = failures
        self._clone = copy.deepcopy(failures._rng)
        self._buf = ()
        self._pos = 0
        self._size = max(8, hint)
        self._consumed = 0

    def next(self, duration: float) -> float | None:
        """Time-to-failure within ``[0, duration)``, or None (one draw)."""
        pos = self._pos
        if pos == len(self._buf):
            self._buf = self._clone.exponential(self._scale, size=self._size)
            self._size = min(self._size * 2, 8192)
            pos = 0
        t = self._buf[pos]
        self._pos = pos + 1
        self._consumed += 1
        return float(t) if t < duration else None

    def refill_list(self) -> list[float]:
        """Next batch of speculative draws as plain Python floats.

        Used by the unobserved fast loops, which walk the list with
        local index variables instead of calling :meth:`next` per
        launch; they report consumption through :meth:`note_consumed`.
        ``tolist()`` converts ``float64`` values exactly, so comparisons
        against durations are bit-identical to the scalar path.
        """
        buf = self._clone.exponential(self._scale, size=self._size)
        self._size = min(self._size * 2, 8192)
        return buf.tolist()

    def note_consumed(self, count: int) -> None:
        """Record draws consumed via :meth:`refill_list` batches."""
        self._consumed += count

    def commit(self) -> None:
        """Advance the real stream by exactly the draws consumed."""
        if self._consumed:
            self._failures._rng.exponential(self._scale, size=self._consumed)


class _VectorAllocationMixin:
    """Synchronous-simulation machinery shared by both vectorized runs."""

    def _vector_setup(self, task_count: int) -> None:
        self._free_nodes = deque(self.alloc.nodes)
        self._heap: list[list] = []
        self._vseq = 0
        #: task_id -> heap entry; insertion order == launch order, which
        #: is the order on_walltime_kill finalizes interrupted attempts.
        self._vrunning: dict[int, list] = {}
        self._observed = self.bus.has_subscribers
        self._specs: list | None = [] if self._observed else None
        failures = self.cluster.failures
        self._draws = (
            _FailureDraws(failures, hint=task_count) if failures.mttf is not None else None
        )
        # Policies that don't override timeout_for (all the built-ins)
        # have a task-independent cap; hoist it out of the launch loop.
        if type(self.policy).timeout_for is RetryPolicy.timeout_for:
            self._timeout_const = True
            self._timeout = self.policy.task_timeout
        else:
            self._timeout_const = False
            self._timeout = None

    def _vlaunch(self, task, now: float) -> None:
        """Place one single-node task; mirrors ``_BaseAllocationRun._launch``."""
        node = self._free_nodes.popleft()
        task.state = _RUNNING
        attempt = TaskAttempt(task=task, node_indices=[node.index], start=now)
        task.attempts.append(attempt)
        self.outcome.attempts.append(attempt)
        # effective_speed == speed while no fault has degraded the node
        # (x / 1.0 is exact), and eligibility excludes the fault injector.
        elapsed = task.duration / node.speed
        result = _DONE
        timed_out = False
        if self._draws is not None:
            fail_at = self._draws.next(elapsed)
            if fail_at is not None:
                elapsed = fail_at
                result = _FAILED
        timeout = self._timeout if self._timeout_const else self.policy.timeout_for(task)
        if timeout is not None and timeout < elapsed:
            elapsed, result, timed_out = timeout, _FAILED, True
        seq = self._vseq
        self._vseq = seq + 1
        entry = [float(now + elapsed), seq, _END_EV, task, attempt, node, result, timed_out]
        heappush(self._heap, entry)
        self._vrunning[task.task_id] = entry
        if self._observed:
            self._specs.append((NODE_BUSY, INSTANT, now, {"node": node.index}))
            self._specs.append(
                (
                    TASK,
                    BEGIN,
                    now,
                    {
                        "task": task.name,
                        "task_id": task.task_id,
                        "node": node.index,
                        "nodes": [node.index],
                        "attempt": len(task.attempts),
                        "payload": dict(task.payload),
                    },
                )
            )

    def _vfinish_attempt(self, entry: list, t: float):
        """End-of-attempt bookkeeping; mirrors ``_on_task_end`` pre-dispatch."""
        task, attempt, node, result, timed_out = (
            entry[3],
            entry[4],
            entry[5],
            entry[6],
            entry[7],
        )
        del self._vrunning[task.task_id]
        attempt.end = t
        attempt.outcome = result
        task.state = result
        node.busy_intervals.append((attempt.start, t))
        self._free_nodes.append(node)
        if self._observed:
            specs = self._specs
            specs.append((NODE_IDLE, INSTANT, t, {"node": node.index}))
            if timed_out:
                specs.append(
                    (
                        TASK_TIMEOUT,
                        INSTANT,
                        t,
                        {
                            "task": task.name,
                            "task_id": task.task_id,
                            "node": node.index,
                            "timeout": self._timeout
                            if self._timeout_const
                            else self.policy.timeout_for(task),
                        },
                    )
                )
            specs.append(
                (
                    TASK,
                    END,
                    t,
                    {
                        "task": task.name,
                        "task_id": task.task_id,
                        "node": node.index,
                        "outcome": result.value,
                    },
                )
            )
        if result is _DONE:
            self.outcome.completed.append(task)
        return task, result

    def _vgrant_retry(self, task, t: float) -> int | None:
        """Mirror of ``grant_retry`` emitting into the spec batch."""
        retries = self._retry_counts.get(task.task_id, 0)
        if not self.policy.allows(retries) or not self.budget_left():
            return None
        index = retries + 1
        self._retry_counts[task.task_id] = index
        self.allocation_retries += 1
        if self._observed:
            self._specs.append(
                (
                    TASK_RETRY,
                    INSTANT,
                    t,
                    {
                        "task": task.name,
                        "task_id": task.task_id,
                        "retries": index,
                        "delay": self.policy.delay(index),
                    },
                )
            )
        return index

    def _vector_kill(self, deadline: float) -> None:
        """Finalize attempts still running at the walltime deadline.

        Event order mirrors the real kill: the scheduler's node close
        emits ``node.idle`` per still-busy node in allocation order,
        then ``on_walltime_kill`` ends the tasks in launch order.  The
        real deadline event still fires later; it finds nothing running
        (``self.running`` was never populated) and no busy nodes, so it
        is a pure no-op apart from releasing the pool.
        """
        running = self._vrunning
        if self._observed and running:
            busy = {entry[5].index for entry in running.values()}
            for node in self.alloc.nodes:
                if node.index in busy:
                    self._specs.append((NODE_IDLE, INSTANT, deadline, {"node": node.index}))
        for entry in running.values():
            task, attempt, node = entry[3], entry[4], entry[5]
            attempt.end = deadline
            attempt.outcome = _KILLED
            task.state = _KILLED
            node.busy_intervals.append((attempt.start, deadline))
            self.outcome.killed.append(task)
            if self._observed:
                self._specs.append(
                    (
                        TASK,
                        END,
                        deadline,
                        {
                            "task": task.name,
                            "task_id": task.task_id,
                            "node": node.index,
                            "outcome": _KILLED.value,
                        },
                    )
                )
        running.clear()

    def _vector_finalize(self, done_time: float | None) -> None:
        """Commit RNG consumption, publish the batch, arrange the finish."""
        if self._draws is not None:
            self._draws.commit()
        if self._observed and self._specs:
            self.bus.publish_batch(self._specs)
            self._specs = []
        if done_time is not None:
            self.finished = True
            if self.done_cb is not None:
                self.cluster.sim.schedule_at(done_time, self.done_cb)


class VectorPilotRun(_VectorAllocationMixin, PilotRun):
    """Bit-exact synchronous replay of :class:`PilotRun`'s event loop."""

    def start(self) -> None:
        self._vector_setup(len(self.pending))
        if self._observed:
            self._start_observed()
        else:
            self._start_fast()

    def _start_fast(self) -> None:
        """Unobserved hot loop: no spec building, tuple queue entries,
        plain-float draw buffers, and no running-task dict (interrupted
        attempts are recovered from the queue remnants at the deadline).

        The event queue is a sorted list with a read cursor and a
        *lookahead window*, not a binary heap.  No relaunch can finish
        earlier than the shortest task wall, so every event in
        ``[t, t + min_wall)`` is already in the queue: that whole
        contiguous slice is processed without any per-event sift, new
        end times are collected unsorted and merged in one timsort
        (two-run galloping merge) per window.  The window bound is a
        heuristic, never a correctness condition — an entry that does
        land inside the open window (failure-shortened attempt, backoff
        timer) is spliced in at its bisect position.  The ``(time,
        seq)`` tuple prefix gives the identical total order the event
        engine's heap uses.  Inlined on purpose — this loop is the
        simulator's throughput floor, and each method call it sheds is
        ~0.15 µs/task.
        """
        sim = self.cluster.sim
        deadline = self.alloc.deadline
        pending = self.pending
        free = self._free_nodes
        q: list[tuple] = []
        qi = 0
        outcome = self.outcome
        attempts_out = outcome.attempts
        completed = outcome.completed
        failed = outcome.failed
        policy = self.policy
        retry_failed = self.retry_failed
        retry_counts = self._retry_counts
        timeout = self._timeout
        timeout_for = None if self._timeout_const else policy.timeout_for
        draws = self._draws
        dbuf: list[float] = []
        dlen = 0
        dpos = 0
        seq = 0
        nrunning = 0
        backing_off = 0
        done_time = None
        # Local rebinds: every attribute lookup shed here is paid once
        # per simulated attempt in the loop below.
        push = insort
        q_push = q.append
        Attempt = TaskAttempt
        pend_pop, pend_push = pending.popleft, pending.append
        free_pop, free_push = free.popleft, free.append
        out_push = attempts_out.append
        done_push = completed.append
        launches_before = len(attempts_out)
        t = sim.now
        while pending and free:
            task = pend_pop()
            node = free_pop()
            task.state = _RUNNING
            a = Attempt(task, [node.index], t)
            task.attempts.append(a)
            out_push(a)
            wall = task.duration / node.speed
            result = _DONE
            if draws is not None:
                if dpos == dlen:
                    dbuf = draws.refill_list()
                    dlen = len(dbuf)
                    dpos = 0
                fail_at = dbuf[dpos]
                dpos += 1
                if fail_at < wall:
                    wall = fail_at
                    result = _FAILED
            if timeout_for is not None:
                timeout = timeout_for(task)
            if timeout is not None and timeout < wall:
                wall = timeout
                result = _FAILED
            q_push((t + wall, seq, _END_EV, task, a, node, result))
            seq += 1
            nrunning += 1
        q.sort()
        # Lookahead window bound: nothing launched at time t can end
        # before t + (shortest duration / fastest node), so that span of
        # the queue is complete and can be drained without sifting.  A
        # constant timeout can only shorten walls, so it tightens the
        # bound.  This is purely a throughput knob: entries that beat it
        # (failure cuts, per-task timeouts, short backoffs) are spliced
        # into the open window at their bisect position.
        sarr = self.cluster.pool.speed_array
        max_speed = float(sarr.max()) if len(sarr) else 1.0
        speed0 = (
            float(sarr[0]) if len(sarr) and bool((sarr == sarr[0]).all()) else None
        )
        bound = min([task.duration for task in pending], default=1.0) / max_speed
        if self._timeout_const and timeout is not None and timeout < bound:
            bound = timeout
        bisect = bisect_left
        while qi < len(q):
            if qi > 4096:  # amortized compaction of the consumed prefix
                del q[:qi]
                qi = 0
            t = q[qi][0]
            if t >= deadline:
                break
            wend = t + bound
            if wend > deadline:
                wend = deadline
            # (wend,) sorts before any (wend, seq, ...) entry, so this
            # is the first event at or past the window end.
            j = bisect(q, (wend,), qi)
            newbuf = []
            new_push = newbuf.append
            # Whole-window batch: when every event in the window is a
            # successful END and none of the replacement launches fails
            # or times out (peeked against the draw stream without
            # consuming it), the window's contents are *closed* — no new
            # entry can land inside it (a relaunch wall is >= the window
            # bound by construction, and the failure cuts that could
            # beat it were just ruled out).  The whole slice then folds
            # with batched numpy wall/end arithmetic and zero splice
            # checks, exactly like the static executor's set batches.
            m = j - qi
            batched = False
            if m > 8 and timeout_for is None:
                win = q[qi:j]
                for e in win:
                    if e[2] is not _END_EV or e[6] is not _DONE:
                        break
                else:
                    launch_n = min(m, len(pending))
                    walls = None
                    if launch_n:
                        walls = np.fromiter(
                            [task.duration for task in islice(pending, launch_n)],
                            np.float64,
                            launch_n,
                        )
                        if speed0 is not None:
                            if speed0 != 1.0:
                                walls /= speed0
                        else:
                            walls /= np.fromiter(
                                [win[i][5].speed for i in range(launch_n)],
                                np.float64,
                                launch_n,
                            )
                    fits = not launch_n or timeout is None or not bool(
                        (walls > timeout).any()
                    )
                    if fits and launch_n and draws is not None:
                        while dlen - dpos < launch_n:  # peek, don't consume
                            dbuf = dbuf[dpos:]
                            dpos = 0
                            dbuf += draws.refill_list()
                            dlen = len(dbuf)
                        vals = dbuf[dpos : dpos + launch_n]
                        if bool(
                            (np.fromiter(vals, np.float64, launch_n) < walls).any()
                        ):
                            fits = False
                    if fits:
                        batched = True
                        if launch_n:
                            if draws is not None:
                                dpos += launch_n
                            ends_l = (
                                np.fromiter(
                                    [win[i][0] for i in range(launch_n)],
                                    np.float64,
                                    launch_n,
                                )
                                + walls
                            ).tolist()
                        qi = j
                        i = 0
                        for entry in win:
                            te, _s, _k, task, a, node, _r = entry
                            a.end = te
                            a.outcome = _DONE
                            task.state = _DONE
                            node.busy_intervals.append((a.start, te))
                            if i < launch_n:
                                task = pend_pop()
                                task.state = _RUNNING
                                a = Attempt(task, [node.index], te)
                                task.attempts.append(a)
                                out_push(a)
                                new_push(
                                    (ends_l[i], seq, _END_EV, task, a, node, _DONE)
                                )
                                seq += 1
                                i += 1
                            else:
                                free_push(node)
                        # Bulk equivalent of the per-event done_push
                        # interleaving — the same completed order.
                        completed.extend(e[3] for e in win)
                        nrunning -= m - launch_n
                        t = win[-1][0]
                        if not nrunning and not pending and not backing_off:
                            done_time = t
            while not batched and qi < j:
                entry = q[qi]
                t = entry[0]
                qi += 1
                if entry[2] == _END_EV:
                    task, a, node, result = entry[3], entry[4], entry[5], entry[6]
                    nrunning -= 1
                    a.end = t
                    a.outcome = result
                    task.state = result
                    node.busy_intervals.append((a.start, t))
                    if result is _DONE:
                        done_push(task)
                        if pending and not free:
                            # Steady state: the freed node is the FIFO
                            # head, so the next pending task lands on it
                            # directly — no deque round trip, and the
                            # finish check can't pass with a task just
                            # launched.
                            task = pend_pop()
                            task.state = _RUNNING
                            a = Attempt(task, [node.index], t)
                            task.attempts.append(a)
                            out_push(a)
                            wall = task.duration / node.speed
                            result = _DONE
                            if draws is not None:
                                if dpos == dlen:
                                    dbuf = draws.refill_list()
                                    dlen = len(dbuf)
                                    dpos = 0
                                fail_at = dbuf[dpos]
                                dpos += 1
                                if fail_at < wall:
                                    wall = fail_at
                                    result = _FAILED
                            if timeout_for is not None:
                                timeout = timeout_for(task)
                            if timeout is not None and timeout < wall:
                                wall = timeout
                                result = _FAILED
                            e = (t + wall, seq, _END_EV, task, a, node, result)
                            seq += 1
                            nrunning += 1
                            if e[0] >= wend:
                                new_push(e)
                            else:  # beat the window: splice in place
                                pos = bisect(q, e, qi)
                                q.insert(pos, e)
                                if pos < j:
                                    j += 1
                            continue
                        free_push(node)
                    else:
                        free_push(node)
                        retries = retry_counts.get(task.task_id, 0)
                        if (
                            retry_failed
                            and policy.allows(retries)
                            and self.budget_left()
                        ):
                            index = retries + 1
                            retry_counts[task.task_id] = index
                            self.allocation_retries += 1
                            delay = policy.delay(index)
                            if delay > 0:
                                backing_off += 1
                                e = (t + delay, seq, _REQUEUE_EV, task, index)
                                seq += 1
                                if e[0] >= wend:
                                    new_push(e)
                                else:
                                    pos = bisect(q, e, qi)
                                    q.insert(pos, e)
                                    if pos < j:
                                        j += 1
                            else:
                                task.state = _PENDING
                                pend_push(task)
                        else:
                            failed.append(task)
                else:  # _REQUEUE_EV: the backoff timer fired
                    backing_off -= 1
                    task = entry[3]
                    task.state = _PENDING
                    pend_push(task)
                while pending and free:
                    task = pend_pop()
                    node = free_pop()
                    task.state = _RUNNING
                    a = Attempt(task, [node.index], t)
                    task.attempts.append(a)
                    out_push(a)
                    wall = task.duration / node.speed
                    result = _DONE
                    if draws is not None:
                        if dpos == dlen:
                            dbuf = draws.refill_list()
                            dlen = len(dbuf)
                            dpos = 0
                        fail_at = dbuf[dpos]
                        dpos += 1
                        if fail_at < wall:
                            wall = fail_at
                            result = _FAILED
                    if timeout_for is not None:
                        timeout = timeout_for(task)
                    if timeout is not None and timeout < wall:
                        wall = timeout
                        result = _FAILED
                    e = (t + wall, seq, _END_EV, task, a, node, result)
                    seq += 1
                    nrunning += 1
                    if e[0] >= wend:
                        new_push(e)
                    else:
                        pos = bisect(q, e, qi)
                        q.insert(pos, e)
                        if pos < j:
                            j += 1
                if not nrunning and not pending and not backing_off:
                    done_time = t
                    break
            if done_time is not None:
                break
            if newbuf:
                if len(newbuf) < 3:
                    for e in newbuf:
                        push(q, e, qi)
                else:
                    # One two-run galloping merge instead of per-event
                    # sifts: the tail and the sorted new ends.
                    newbuf.sort()
                    tail = q[qi:]
                    tail += newbuf
                    tail.sort()
                    q[qi:] = tail
        if done_time is None:
            # Walltime kill: interrupted attempts finalize in launch
            # order (== local seq order); leftover backoff timers were
            # *real* simulator events on the event-driven path, so they
            # are re-materialized as such — each fires after the kill,
            # sees ``finished``, and records a terminal failure (the
            # clock advances identically in both engines).
            remnants = q[qi:]
            for entry in sorted(remnants, key=lambda e: e[1]):
                if entry[2] == _END_EV:
                    task, a, node = entry[3], entry[4], entry[5]
                    a.end = deadline
                    a.outcome = _KILLED
                    task.state = _KILLED
                    node.busy_intervals.append((a.start, deadline))
                    outcome.killed.append(task)
            for entry in remnants:  # already in (time, seq) order
                if entry[2] == _REQUEUE_EV:
                    sim.schedule_at(entry[0], self._requeue, entry[3], entry[4])
        if draws is not None:
            # Exactly one draw is consumed per launch, and every launch
            # appends one attempt — no need for a per-launch counter.
            draws.note_consumed(len(attempts_out) - launches_before)
        self._backing_off = backing_off
        self._vseq = seq
        self._vector_finalize(done_time)

    def _start_observed(self) -> None:
        now = self.cluster.sim.now
        deadline = self.alloc.deadline
        pending = self.pending
        free = self._free_nodes
        heap = self._heap
        running = self._vrunning
        retry_failed = self.retry_failed
        while pending and free:
            self._vlaunch(pending.popleft(), now)
        done_time = None
        while heap and heap[0][0] < deadline:
            entry = heappop(heap)
            t = entry[0]
            if entry[2] == _END_EV:
                task, result = self._vfinish_attempt(entry, t)
                if result is _FAILED:
                    index = self._vgrant_retry(task, t) if retry_failed else None
                    if index is not None:
                        delay = self.policy.delay(index)
                        self._backing_off += 1
                        if delay > 0:
                            seq = self._vseq
                            self._vseq = seq + 1
                            heappush(
                                heap,
                                [t + delay, seq, _REQUEUE_EV, task, index, None, None, False],
                            )
                        else:
                            self._backing_off -= 1
                            task.state = _PENDING
                            pending.append(task)
                            if self._observed:
                                self._specs.append(
                                    (
                                        TASK_REQUEUED,
                                        INSTANT,
                                        t,
                                        {
                                            "task": task.name,
                                            "task_id": task.task_id,
                                            "retries": index,
                                        },
                                    )
                                )
                    else:
                        self.outcome.failed.append(task)
            else:  # _REQUEUE_EV: the backoff timer fired
                self._backing_off -= 1
                task = entry[3]
                task.state = _PENDING
                pending.append(task)
                if self._observed:
                    self._specs.append(
                        (
                            TASK_REQUEUED,
                            INSTANT,
                            t,
                            {"task": task.name, "task_id": task.task_id, "retries": entry[4]},
                        )
                    )
            while pending and free:
                self._vlaunch(pending.popleft(), t)
            if not running and not pending and not self._backing_off:
                done_time = t
                break
        if done_time is None:
            self._vector_kill(deadline)
            # Backoff timers outliving the allocation were real simulator
            # events on the event-driven path; re-materialize them so
            # each fires post-kill, sees ``finished``, and records the
            # terminal failure at the same simulation time.
            while heap:
                entry = heappop(heap)
                if entry[2] == _REQUEUE_EV:
                    self.cluster.sim.schedule_at(
                        entry[0], self._requeue, entry[3], entry[4]
                    )
        self._vector_finalize(done_time)


class VectorStaticSetRun(_VectorAllocationMixin, StaticSetRun):
    """Bit-exact synchronous replay of :class:`StaticSetRun`'s event loop."""

    def start(self) -> None:
        self._vector_setup(sum(len(s) for s in self.sets))
        if self._observed:
            self._start_observed()
        else:
            self._start_fast()

    def _start_fast(self) -> None:
        """Unobserved hot loop for the set-synchronized executor.

        The barrier structure makes whole sets vectorizable: a set whose
        attempts all complete (no failure draw, no timeout, no deadline
        crossing) is processed with batched numpy arithmetic — walls and
        end times in one vector op, completion order via a stable
        argsort (ties break by launch order, exactly like the
        ``(time, seq)`` heap) — and never touches an event heap at all.
        A set that *does* interact (failure, timeout, walltime kill)
        falls back to a scalar per-event episode that is bit-exact with
        :class:`~repro.savanna._alloc.StaticSetRun`; batching resumes at
        the next barrier.  Failure draws are *peeked* before committing
        to the fast path so the fallback consumes the identical RNG
        stream one value at a time.
        """
        sim = self.cluster.sim
        deadline = self.alloc.deadline
        free = self._free_nodes
        heap: list[tuple] = []
        outcome = self.outcome
        attempts_out = outcome.attempts
        completed = outcome.completed
        failed = outcome.failed
        policy = self.policy
        retry_counts = self._retry_counts
        timeout = self._timeout
        timeout_for = None if self._timeout_const else policy.timeout_for
        draws = self._draws
        dbuf: list[float] = []
        dlen = 0
        dpos = 0
        sets = self.sets
        nsets = len(sets)
        next_set = self.next_set
        in_flight = self.in_flight
        set_gap = self.set_gap
        seq = 1
        done_time = None
        push, pop = heappush, heappop
        Attempt = TaskAttempt
        free_pop, free_push = free.popleft, free.append
        out_push = attempts_out.append
        done_push = completed.append
        launches_before = len(attempts_out)
        sarr = self.cluster.pool.speed_array
        # Homogeneous pools (the common case) divide by one scalar; the
        # result is bit-identical to per-node division by equal floats.
        speed0 = float(sarr[0]) if len(sarr) and bool((sarr == sarr[0]).all()) else None
        t = sim.now
        while next_set < nsets:
            batch = sets[next_set]
            k = len(batch)
            assigned = [free_pop() for _ in range(k)]
            walls = np.fromiter([task.duration for task in batch], np.float64, k)
            if speed0 is not None:
                if speed0 != 1.0:
                    walls /= speed0
            else:
                walls /= np.fromiter([n.speed for n in assigned], np.float64, k)
            max_wall = float(walls.max())
            # Whole-set fast path: every attempt must complete strictly
            # before the deadline with no timeout and no failure draw.
            fast = (
                timeout_for is None
                and (timeout is None or max_wall <= timeout)
                and t + max_wall < deadline
            )
            vals = None
            if fast and draws is not None:
                while dlen - dpos < k:  # peek k stream values
                    dbuf = dbuf[dpos:]
                    dpos = 0
                    dbuf += draws.refill_list()
                    dlen = len(dbuf)
                vals = dbuf[dpos : dpos + k]
                if bool((np.fromiter(vals, np.float64, k) < walls).any()):
                    fast = False
            next_set += 1
            if fast:
                if vals is not None:
                    dpos += k
                ends = t + walls
                ends_l = ends.tolist()
                base = len(attempts_out)
                for task, node in zip(batch, assigned):
                    a = Attempt(task, [node.index], t)
                    task.attempts.append(a)
                    out_push(a)
                atts = attempts_out[base:]
                order = np.argsort(ends, kind="stable").tolist()
                for j in order:  # completion order == (end, launch) order
                    te = ends_l[j]
                    a = atts[j]
                    a.end = te
                    a.outcome = _DONE
                    batch[j].state = _DONE
                    assigned[j].busy_intervals.append((t, te))
                # Bulk equivalents of the per-event free_push/done_push
                # interleaving — same sequences, two C-level extends.
                free.extend(assigned[j] for j in order)
                completed.extend(batch[j] for j in order)
                t_last = ends_l[order[-1]]
            else:
                # Scalar episode: replay this set through the event heap.
                in_flight = k
                walls_l = walls.tolist()
                for i, task in enumerate(batch):
                    node = assigned[i]
                    task.state = _RUNNING
                    a = Attempt(task, [node.index], t)
                    task.attempts.append(a)
                    out_push(a)
                    wall = walls_l[i]
                    result = _DONE
                    if draws is not None:
                        if dpos == dlen:
                            dbuf = draws.refill_list()
                            dlen = len(dbuf)
                            dpos = 0
                        fail_at = dbuf[dpos]
                        dpos += 1
                        if fail_at < wall:
                            wall = fail_at
                            result = _FAILED
                    if timeout_for is not None:
                        timeout = timeout_for(task)
                    if timeout is not None and timeout < wall:
                        wall = timeout
                        result = _FAILED
                    push(heap, (t + wall, seq, _END_EV, task, a, node, result))
                    seq += 1
                t_last = t
                while heap:
                    entry = pop(heap)
                    te = entry[0]
                    if te >= deadline:
                        push(heap, entry)
                        break
                    t_last = te
                    if entry[2] == _END_EV:
                        task, a, node, result = entry[3], entry[4], entry[5], entry[6]
                        a.end = te
                        a.outcome = result
                        task.state = result
                        node.busy_intervals.append((a.start, te))
                        free_push(node)
                        if result is _DONE:
                            done_push(task)
                        else:
                            retries = retry_counts.get(task.task_id, 0)
                            if policy.allows(retries) and self.budget_left():
                                index = retries + 1
                                retry_counts[task.task_id] = index
                                self.allocation_retries += 1
                                push(
                                    heap,
                                    (te + policy.delay(index), seq, _RELAUNCH_EV, task),
                                )
                                seq += 1
                                # In-place retry: the task stays in its
                                # set, so the barrier keeps waiting.
                                continue
                            failed.append(task)
                        in_flight -= 1
                    else:  # _RELAUNCH_EV: backoff elapsed, same set
                        task = entry[3]
                        node = free_pop()
                        task.state = _RUNNING
                        a = Attempt(task, [node.index], te)
                        task.attempts.append(a)
                        out_push(a)
                        wall = task.duration / node.speed
                        result = _DONE
                        if draws is not None:
                            if dpos == dlen:
                                dbuf = draws.refill_list()
                                dlen = len(dbuf)
                                dpos = 0
                            fail_at = dbuf[dpos]
                            dpos += 1
                            if fail_at < wall:
                                wall = fail_at
                                result = _FAILED
                        if timeout_for is not None:
                            timeout = timeout_for(task)
                        if timeout is not None and timeout < wall:
                            wall = timeout
                            result = _FAILED
                        push(heap, (te + wall, seq, _END_EV, task, a, node, result))
                        seq += 1
                if heap:  # deadline break: walltime kill handles the rest
                    break
                in_flight = 0
            if next_set >= nsets:
                done_time = t_last
                break
            t = t_last + set_gap
            if t >= deadline:
                # The event path had already scheduled this barrier
                # timer; it outlives the allocation as a real simulator
                # event (fires, sees ``finished``, and is a no-op).
                sim.schedule_at(t, self._barrier_release)
                break
        if done_time is None:
            for entry in sorted(heap, key=lambda e: e[1]):
                if entry[2] == _END_EV:
                    task, a, node = entry[3], entry[4], entry[5]
                    a.end = deadline
                    a.outcome = _KILLED
                    task.state = _KILLED
                    node.busy_intervals.append((a.start, deadline))
                    outcome.killed.append(task)
            for entry in sorted(heap):
                if entry[2] == _RELAUNCH_EV:
                    sim.schedule_at(entry[0], self._relaunch, entry[3])
        if draws is not None:
            draws.note_consumed(len(attempts_out) - launches_before)
        self.next_set = next_set
        self.in_flight = in_flight
        self._vseq = seq
        self._vector_finalize(done_time)

    def _start_observed(self) -> None:
        now = self.cluster.sim.now
        deadline = self.alloc.deadline
        heap = self._heap
        running = self._vrunning
        nsets = len(self.sets)
        self._vlaunch_set(now)
        done_time = None
        while heap and heap[0][0] < deadline:
            entry = heappop(heap)
            t = entry[0]
            kind = entry[2]
            if kind == _END_EV:
                task, result = self._vfinish_attempt(entry, t)
                if result is _FAILED:
                    index = self._vgrant_retry(task, t)
                    if index is not None:
                        # In-place retry: the task stays in its set, so
                        # in_flight is unchanged and the barrier waits.
                        delay = self.policy.delay(index)
                        if delay > 0:
                            seq = self._vseq
                            self._vseq = seq + 1
                            heappush(
                                heap,
                                [t + delay, seq, _RELAUNCH_EV, task, None, None, None, False],
                            )
                        else:
                            self._vlaunch(task, t)
                        continue
                    self.outcome.failed.append(task)
                self.in_flight -= 1
                if self.in_flight == 0 and self.next_set < nsets:  # barrier reached
                    if self.set_gap > 0:
                        seq = self._vseq
                        self._vseq = seq + 1
                        heappush(
                            heap,
                            [t + self.set_gap, seq, _BARRIER_EV, None, None, None, None, False],
                        )
                    else:
                        self._vlaunch_set(t)
            elif kind == _RELAUNCH_EV:
                self._vlaunch(entry[3], t)
            else:  # _BARRIER_EV: set_gap elapsed, release the next set
                self._vlaunch_set(t)
            if not running and self.next_set >= nsets and self.in_flight == 0:
                done_time = t
                break
        if done_time is None:
            self._vector_kill(deadline)
            # Same clock-parity dance as the pilot: dangling relaunch and
            # barrier timers become real simulator events again.
            while heap:
                entry = heappop(heap)
                if entry[2] == _RELAUNCH_EV:
                    self.cluster.sim.schedule_at(entry[0], self._relaunch, entry[3])
                elif entry[2] == _BARRIER_EV:
                    self.cluster.sim.schedule_at(entry[0], self._barrier_release)
        self._vector_finalize(done_time)

    def _vlaunch_set(self, t: float) -> None:
        if self.next_set >= len(self.sets):
            return
        batch = self.sets[self.next_set]
        self.next_set += 1
        self.in_flight = len(batch)
        for task in batch:
            self._vlaunch(task, t)
