"""Local executor: really runs campaign code with a thread pool.

The manifest boundary "allows us to import existing workflow tools that
provide efficient implementations for workflow patterns such as
bag-of-tasks" (§IV); this backend is the simplest such import — a
bag-of-tasks runner over :mod:`concurrent.futures` used by the examples
to execute genuine Python work (e.g. real iRF fits) from the same
campaign manifest the simulated executors consume.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable

from repro._util import check_positive
from repro.cheetah.manifest import CampaignManifest


@dataclass
class LocalRunResult:
    """Outcome of one really-executed run."""

    run_id: str
    status: str  # "done" | "failed"
    value: Any = None
    error: str | None = None
    elapsed: float = 0.0


class LocalExecutor:
    """Execute every run of a manifest by calling ``app_fn(parameters)``.

    Runs execute concurrently on a thread pool (numpy releases the GIL in
    its kernels, so science workloads genuinely overlap).  Exceptions are
    captured per-run — one failing configuration must not sink a campaign.
    """

    def __init__(self, max_workers: int = 4):
        check_positive("max_workers", max_workers)
        self.max_workers = max_workers

    def run(
        self,
        manifest: CampaignManifest,
        app_fn: Callable[[dict], Any],
        run_filter: Callable[[str], bool] | None = None,
    ) -> dict[str, LocalRunResult]:
        """Execute the campaign; returns ``{run_id: LocalRunResult}``.

        ``run_filter`` selects a subset by run_id (resume support: pass
        the campaign directory's pending set).
        """
        selected = [
            r for r in manifest.runs if run_filter is None or run_filter(r.run_id)
        ]
        results: dict[str, LocalRunResult] = {}

        def execute(run):
            t0 = time.perf_counter()
            try:
                value = app_fn(dict(run.parameters))
                return LocalRunResult(
                    run_id=run.run_id,
                    status="done",
                    value=value,
                    elapsed=time.perf_counter() - t0,
                )
            except Exception as exc:  # noqa: BLE001 - per-run fault isolation
                return LocalRunResult(
                    run_id=run.run_id,
                    status="failed",
                    error=f"{type(exc).__name__}: {exc}",
                    elapsed=time.perf_counter() - t0,
                )

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = {pool.submit(execute, run): run for run in selected}
            for future in as_completed(futures):
                result = future.result()
                results[result.run_id] = result
        return results
