"""Local executor: really runs campaign code with a thread pool.

The manifest boundary "allows us to import existing workflow tools that
provide efficient implementations for workflow patterns such as
bag-of-tasks" (§IV); this backend is the simplest such import — a
bag-of-tasks runner over :mod:`concurrent.futures` used by the examples
to execute genuine Python work (e.g. real iRF fits) from the same
campaign manifest the simulated executors consume.

Since the :mod:`repro.savanna.realexec` engine landed, ``LocalExecutor``
is its thread-pool face: the historical ``run(manifest, app_fn)`` →
``{run_id: LocalRunResult}`` contract is unchanged, but failures now
carry full tracebacks, duplicate ``run_id``s raise instead of silently
overwriting results, ``KeyboardInterrupt`` cancels queued work and
returns partial results with ``status="interrupted"``, and the full
retry/timeout/checkpoint/trace stack is available through
:meth:`~repro.savanna.realexec.RealExecutor.execute` or the
``"local-threads"`` / ``"local-processes"`` drive backends.
"""

from __future__ import annotations

from repro.resilience.policy import RetryPolicy
from repro.savanna.realexec import LocalRunResult, RealExecutor

__all__ = ["LocalExecutor", "LocalRunResult"]


class LocalExecutor(RealExecutor):
    """Execute every run of a manifest by calling ``app_fn(parameters)``.

    Runs execute concurrently on a thread pool (numpy releases the GIL in
    its kernels, so science workloads genuinely overlap).  Exceptions are
    captured per-run — one failing configuration must not sink a campaign.
    For workloads that *hold* the GIL, use
    ``RealExecutor(pool="processes")`` (drive backend
    ``"local-processes"``) instead.
    """

    def __init__(
        self,
        max_workers: int = 4,
        retry_policy: RetryPolicy | int | None = None,
        seed: int = 0,
        chunk_size: int = 1,
    ):
        super().__init__(
            max_workers=max_workers,
            pool="threads",
            retry_policy=retry_policy,
            seed=seed,
            chunk_size=chunk_size,
        )
