"""Provenance records, campaign context, and exportability policy.

The provenance gauge (§III, "Software Provenance") has three rungs above
nothing: per-execution logs, *campaign knowledge* (the context of the
study an execution belongs to, after [28]), and *exportability* — an
explicit policy for which provenance belongs in a distributable research
object versus which is only meaningful to the original author.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class ExportClass(enum.Enum):
    """Export disposition of a provenance record."""

    PRIVATE = "private"  # author-only (scratch paths, user names)
    INTERNAL = "internal"  # shareable within the originating team
    PUBLIC = "public"  # belongs in the reusable research object


_record_ids = itertools.count()


@dataclass
class ProvenanceRecord:
    """One execution's provenance: what ran, on what, producing what."""

    component: str
    start_time: float
    end_time: float
    inputs: tuple = ()
    outputs: tuple = ()
    parameters: dict = field(default_factory=dict)
    environment: dict = field(default_factory=dict)
    campaign: str | None = None
    outcome: str = "success"
    export_class: ExportClass = ExportClass.INTERNAL
    record_id: int = field(default_factory=lambda: next(_record_ids))

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ValueError(
                f"end_time {self.end_time} before start_time {self.start_time}"
            )

    @property
    def elapsed(self) -> float:
        return self.end_time - self.start_time

    def to_dict(self) -> dict:
        """JSON-serializable view (record_id excluded: it is process-local)."""
        return {
            "component": self.component,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "parameters": dict(self.parameters),
            "environment": dict(self.environment),
            "campaign": self.campaign,
            "outcome": self.outcome,
            "export_class": self.export_class.value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProvenanceRecord":
        return cls(
            component=data["component"],
            start_time=data["start_time"],
            end_time=data["end_time"],
            inputs=tuple(data.get("inputs", ())),
            outputs=tuple(data.get("outputs", ())),
            parameters=dict(data.get("parameters", {})),
            environment=dict(data.get("environment", {})),
            campaign=data.get("campaign"),
            outcome=data.get("outcome", "success"),
            export_class=ExportClass(data.get("export_class", "internal")),
        )


@dataclass(frozen=True)
class CampaignContext:
    """Campaign-tier provenance: the study an execution belongs to.

    Records the objective (§II-C: optimal runtime, minimal storage, ...)
    and the swept parameter names, so heterogeneous per-run logs can be
    summarized and queried as one study.
    """

    name: str
    objective: str
    swept_parameters: tuple = ()
    description: str | None = None


@dataclass(frozen=True)
class ExportPolicy:
    """Which export classes (and which environment keys) leave the site."""

    include: frozenset = frozenset({ExportClass.PUBLIC})
    redact_environment_keys: frozenset = frozenset({"USER", "HOME", "ACCOUNT"})

    def admit(self, record: ProvenanceRecord) -> bool:
        return record.export_class in self.include

    def sanitize(self, record: ProvenanceRecord) -> ProvenanceRecord:
        """Return a copy of ``record`` with redacted environment keys removed."""
        env = {
            k: v for k, v in record.environment.items() if k not in self.redact_environment_keys
        }
        return ProvenanceRecord(
            component=record.component,
            start_time=record.start_time,
            end_time=record.end_time,
            inputs=record.inputs,
            outputs=record.outputs,
            parameters=dict(record.parameters),
            environment=env,
            campaign=record.campaign,
            outcome=record.outcome,
            export_class=record.export_class,
        )


class ProvenanceStore:
    """Queryable store of provenance records with campaign grouping.

    The "summarize, evaluate, and enable queries over heterogeneous
    provenance logs" role from §III, in miniature.
    """

    def __init__(self) -> None:
        self._records: list[ProvenanceRecord] = []
        self._campaigns: dict[str, CampaignContext] = {}

    def __len__(self) -> int:
        return len(self._records)

    def register_campaign(self, context: CampaignContext) -> None:
        if context.name in self._campaigns:
            raise ValueError(f"campaign {context.name!r} already registered")
        self._campaigns[context.name] = context

    def campaign(self, name: str) -> CampaignContext:
        return self._campaigns[name]

    @property
    def campaigns(self) -> tuple:
        return tuple(self._campaigns.values())

    def add(self, record: ProvenanceRecord) -> None:
        if record.campaign is not None and record.campaign not in self._campaigns:
            raise ValueError(
                f"record references unregistered campaign {record.campaign!r}"
            )
        self._records.append(record)

    def extend(self, records) -> int:
        """Add many records (same campaign check as :meth:`add`); returns count.

        Bulk ingestion exists for stream-sourced provenance — e.g.
        :func:`repro.observability.provenance.provenance_store_from_trace`
        materializes one record per task attempt observed on the event
        bus and lands them here in one call.
        """
        added = 0
        for record in records:
            self.add(record)
            added += 1
        return added

    def query(
        self,
        component: str | None = None,
        campaign: str | None = None,
        outcome: str | None = None,
    ) -> list[ProvenanceRecord]:
        """Filter records by any combination of component/campaign/outcome."""
        out = []
        for r in self._records:
            if component is not None and r.component != component:
                continue
            if campaign is not None and r.campaign != campaign:
                continue
            if outcome is not None and r.outcome != outcome:
                continue
            out.append(r)
        return out

    def summarize_campaign(self, campaign: str) -> dict:
        """Aggregate stats for a campaign: counts, outcomes, total runtime."""
        records = self.query(campaign=campaign)
        outcomes: dict[str, int] = {}
        for r in records:
            outcomes[r.outcome] = outcomes.get(r.outcome, 0) + 1
        return {
            "campaign": campaign,
            "runs": len(records),
            "outcomes": outcomes,
            "total_elapsed": sum(r.elapsed for r in records),
        }

    def export(self, policy: ExportPolicy | None = None) -> list[ProvenanceRecord]:
        """Extract the exportable, sanitized subset for a research object."""
        policy = policy or ExportPolicy()
        return [policy.sanitize(r) for r in self._records if policy.admit(r)]
