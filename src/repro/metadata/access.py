"""Data-access descriptors.

The data-access gauge (§III, "Data Access") tracks how explicitly we know
*how to reach* a data object: nothing → transport protocol (POSIX file,
message queue) → library interface (CSV reader, HDF5-like API) → query
capability (linear scan, random element access, declarative query).  Each
step up lets automation construct new interfaces to pre-existing work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AccessProtocol(enum.Enum):
    """Transport/representation protocol of a data object."""

    UNKNOWN = "unknown"
    POSIX_FILE = "posix-file"
    OBJECT_STORE = "object-store"
    MESSAGE_QUEUE = "message-queue"  # e.g. zeroMQ in the paper's example
    DATABASE = "database"
    IN_MEMORY = "in-memory"
    SERVICE = "service"


class AccessInterface(enum.Enum):
    """Library-level I/O interface, one tier above the raw protocol."""

    UNKNOWN = "unknown"
    RAW_BYTES = "raw-bytes"
    DELIMITED_TEXT = "delimited-text"  # CSV/TSV
    JSON = "json"
    SELF_DESCRIBING_BINARY = "self-describing-binary"  # HDF5/ADIOS class
    CUSTOM_BINARY = "custom-binary"
    SQL = "sql"


class QueryCapability(enum.Enum):
    """What access patterns the interface supports, most capable last."""

    UNKNOWN = "unknown"
    LINEAR = "linear"
    RANDOM = "random"
    DECLARATIVE = "declarative"  # SQL-style predicate queries


@dataclass(frozen=True)
class DataAccessDescriptor:
    """Explicit, machine-queriable record of how to access a data object.

    Parameters mirror the gauge ladder: a descriptor with only ``protocol``
    set sits at the PROTOCOL tier; adding ``interface`` reaches INTERFACE;
    adding ``query`` reaches QUERY.  Higher tiers may depend on other
    gauges (e.g. a DECLARATIVE query is only meaningful with some schema
    knowledge — :func:`repro.gauges.assess` enforces that coupling).
    """

    protocol: AccessProtocol = AccessProtocol.UNKNOWN
    interface: AccessInterface = AccessInterface.UNKNOWN
    query: QueryCapability = QueryCapability.UNKNOWN
    location: str | None = None  # URI/path template, if known
    extra: dict = field(default_factory=dict)

    def tier_index(self) -> int:
        """0 = nothing known, 1 = protocol, 2 = interface, 3 = query."""
        if self.protocol is AccessProtocol.UNKNOWN:
            return 0
        if self.interface is AccessInterface.UNKNOWN:
            return 1
        if self.query is QueryCapability.UNKNOWN:
            return 2
        return 3

    def describe(self) -> str:
        """One-line human summary (the auditable face of the metadata)."""
        parts = [self.protocol.value]
        if self.interface is not AccessInterface.UNKNOWN:
            parts.append(self.interface.value)
        if self.query is not QueryCapability.UNKNOWN:
            parts.append(f"query={self.query.value}")
        if self.location:
            parts.append(f"at {self.location}")
        return ", ".join(parts)
