"""Data-schema descriptors and the automated format-conversion planner.

"The more sophisticated the schema information, the more full-functioning
other automated services can be in creating automated format conversion,
templatized configurations, and other similar requests" (§III).  Two
pieces live here:

1. :class:`DataSchema` — a self-describing, field-level schema
   (the ADIOS/HDF5 role in the paper), inferable from live objects.
2. :class:`FormatConverterRegistry` — a registry of pairwise format
   converters over which conversion *plans* are found as shortest paths
   (networkx).  This is the machine-actionable payoff of the schema gauge:
   given enough declared formats, conversion between any two connected
   formats is automated, eliminating the hand-written one-off converters
   §II-A complains about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import networkx as nx
import numpy as np


class ConversionError(RuntimeError):
    """No conversion path exists between the requested formats."""


@dataclass(frozen=True)
class Field:
    """One named, typed field of a schema."""

    name: str
    dtype: str
    shape: tuple = ()
    units: str | None = None
    description: str | None = None

    def compatible_with(self, other: "Field") -> bool:
        """True if a value of ``self`` can flow into a slot typed ``other``."""
        return self.name == other.name and self.dtype == other.dtype and self.shape == other.shape


@dataclass(frozen=True)
class DataSchema:
    """A self-describing schema: declared format plus field-level detail.

    ``format_name``/``format_version`` alone put a dataset at the
    DECLARED tier; a non-empty ``fields`` tuple reaches SELF_DESCRIBING.
    """

    format_name: str = ""
    format_version: str = ""
    fields: tuple = ()

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate field names in schema: {names}")

    def tier_index(self) -> int:
        """0 unknown, 1 opaque-but-named bytes, 2 declared format, 3 self-describing."""
        if not self.format_name:
            return 0
        if not self.format_version and not self.fields:
            return 1
        if not self.fields:
            return 2
        return 3

    def field_names(self) -> tuple:
        return tuple(f.name for f in self.fields)

    def get(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(name)

    def is_superset_of(self, other: "DataSchema") -> bool:
        """True if every field of ``other`` is present and compatible here."""
        try:
            return all(self.get(f.name).compatible_with(f) for f in other.fields)
        except KeyError:
            return False


def infer_schema(obj: Any, format_name: str = "inferred", version: str = "1") -> DataSchema:
    """Infer a :class:`DataSchema` from a live Python object.

    Supports mappings of name → array/scalar, numpy structured arrays, and
    plain ndarrays.  This is the low-cost entry ramp the paper insists on:
    black-box data gets a usable schema without the owner writing one.
    """
    fields: list[Field] = []
    if isinstance(obj, np.ndarray) and obj.dtype.names:
        for name in obj.dtype.names:
            sub = obj.dtype[name]
            fields.append(Field(name=name, dtype=sub.base.name, shape=tuple(sub.shape)))
    elif isinstance(obj, np.ndarray):
        fields.append(Field(name="data", dtype=obj.dtype.name, shape=obj.shape))
    elif isinstance(obj, dict):
        for name, value in obj.items():
            arr = np.asarray(value)
            fields.append(Field(name=str(name), dtype=arr.dtype.name, shape=arr.shape))
    else:
        raise TypeError(f"cannot infer schema from {type(obj).__name__}")
    return DataSchema(format_name=format_name, format_version=version, fields=tuple(fields))


class ProjectionError(ValueError):
    """The target schema asks for fields the source cannot supply."""


def project(record: dict, source: DataSchema, target: DataSchema) -> dict:
    """Project a record from ``source`` shape to ``target`` shape.

    The automated piece of "templatized configurations and other similar
    requests" (§III): when the target schema is a compatible subset of the
    source, the conversion is pure field selection — no hand-written
    adapter.  Field type/shape mismatches and missing fields raise
    :class:`ProjectionError` with the offending names.
    """
    problems = []
    out = {}
    for field in target.fields:
        try:
            src_field = source.get(field.name)
        except KeyError:
            problems.append(f"missing field {field.name!r}")
            continue
        if not src_field.compatible_with(field):
            problems.append(
                f"field {field.name!r}: source {src_field.dtype}{src_field.shape} "
                f"!= target {field.dtype}{field.shape}"
            )
            continue
        if field.name not in record:
            problems.append(f"record lacks declared field {field.name!r}")
            continue
        out[field.name] = record[field.name]
    if problems:
        raise ProjectionError(
            f"cannot project {source.format_name!r} -> {target.format_name!r}: "
            + "; ".join(problems)
        )
    return out


@dataclass(frozen=True)
class ConversionPlan:
    """A concrete, executable plan: an ordered chain of converters."""

    source: str
    target: str
    steps: tuple  # tuple[tuple[str, str, Callable], ...]

    @property
    def length(self) -> int:
        return len(self.steps)

    def apply(self, data: Any) -> Any:
        """Run the conversion chain on ``data``."""
        for _src, _dst, fn in self.steps:
            data = fn(data)
        return data

    def describe(self) -> str:
        if not self.steps:
            return f"{self.source} (identity)"
        return " -> ".join([self.source] + [dst for _s, dst, _f in self.steps])


class FormatConverterRegistry:
    """Registry of pairwise format converters with shortest-path planning.

    Formats are graph nodes; a registered converter is a directed edge with
    a cost (default 1).  :meth:`plan` finds the cheapest chain, so adding
    one converter to a hub format (e.g. GFF3) transitively automates many
    conversions — the network effect §II-A's bioinformatics example needs.
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()

    def register(self, source: str, target: str, fn: Callable, cost: float = 1.0) -> None:
        """Register ``fn`` as the converter from ``source`` to ``target``."""
        if cost <= 0:
            raise ValueError(f"cost must be > 0, got {cost}")
        if source == target:
            raise ValueError("source and target formats must differ")
        self._graph.add_edge(source, target, fn=fn, cost=cost)

    @property
    def formats(self) -> set:
        return set(self._graph.nodes)

    def converters_from(self, source: str) -> list:
        """Formats directly reachable from ``source``."""
        if source not in self._graph:
            return []
        return sorted(self._graph.successors(source))

    def can_convert(self, source: str, target: str) -> bool:
        if source == target:
            return True
        return (
            source in self._graph
            and target in self._graph
            and nx.has_path(self._graph, source, target)
        )

    def plan(self, source: str, target: str) -> ConversionPlan:
        """Find the cheapest conversion chain or raise :class:`ConversionError`."""
        if source == target:
            return ConversionPlan(source=source, target=target, steps=())
        if source not in self._graph or target not in self._graph:
            raise ConversionError(f"no converters registered for {source!r} -> {target!r}")
        try:
            path = nx.shortest_path(self._graph, source, target, weight="cost")
        except nx.NetworkXNoPath:
            raise ConversionError(f"no conversion path {source!r} -> {target!r}") from None
        steps = tuple(
            (a, b, self._graph.edges[a, b]["fn"]) for a, b in zip(path, path[1:])
        )
        return ConversionPlan(source=source, target=target, steps=steps)

    def convert(self, data: Any, source: str, target: str) -> Any:
        """Plan and apply in one call."""
        return self.plan(source, target).apply(data)
