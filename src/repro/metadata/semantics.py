"""Data-semantics descriptors.

The semantics gauge (§III, "Data Semantics") captures *intended use* of
data independent of any consumer: ordering constraints, consumption
patterns (element-wise, windowed, "first precious"), format-version
lineage ("format evolution"), and dataset-level element roles (e.g.
designating images as cancerous/healthy for a training workflow).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Ordering(enum.Enum):
    """Whether element order carries meaning for consumers."""

    UNKNOWN = "unknown"
    UNORDERED = "unordered"
    ORDERED = "ordered"
    PARTIALLY_ORDERED = "partially-ordered"


class ConsumptionPattern(enum.Enum):
    """How elements are meant to be consumed (the 'data fusion' tier)."""

    UNKNOWN = "unknown"
    ELEMENT = "element"  # one at a time, independent
    WINDOW = "window"  # sliding/stepping window
    BATCH = "batch"  # whole dataset at once
    FIRST_PRECIOUS = "first-precious"  # first element calibrates the rest (§III)


@dataclass(frozen=True)
class ElementRole:
    """A dataset-semantics annotation: which elements play which role."""

    role: str  # e.g. "cancerous", "healthy", "calibration"
    selector: str  # machine-actionable selector (glob, slice expr, predicate name)
    description: str | None = None


@dataclass(frozen=True)
class FormatLineage:
    """Version lineage for the 'format evolution' tier.

    ``versions`` is ordered oldest → newest; the registry of down/up
    converters between adjacent versions lives in
    :class:`repro.metadata.schema.FormatConverterRegistry` — lineage here
    records *which* versions exist and which one this dataset uses.
    """

    format_name: str
    versions: tuple
    current: str

    def __post_init__(self) -> None:
        if self.current not in self.versions:
            raise ValueError(
                f"current version {self.current!r} not in lineage {self.versions}"
            )

    def predecessors(self) -> tuple:
        """Versions older than ``current`` (newest-old first)."""
        idx = self.versions.index(self.current)
        return tuple(reversed(self.versions[:idx]))


@dataclass(frozen=True)
class DataSemanticsDescriptor:
    """Complete semantics record for one data object/stream.

    Tier ladder: nothing known (0) → consumption/ordering captured, the
    "data fusion" tier (1) → format-evolution lineage (2) → dataset-level
    element roles (3).
    """

    ordering: Ordering = Ordering.UNKNOWN
    consumption: ConsumptionPattern = ConsumptionPattern.UNKNOWN
    lineage: FormatLineage | None = None
    roles: tuple = ()  # tuple[ElementRole, ...]
    notes: str | None = None

    def tier_index(self) -> int:
        if self.roles:
            return 3
        if self.lineage is not None:
            return 2
        if (
            self.ordering is not Ordering.UNKNOWN
            or self.consumption is not ConsumptionPattern.UNKNOWN
        ):
            return 1
        return 0

    def requires_order_preservation(self) -> bool:
        """Machine-actionable check used by the dataflow codegen: may a
        reuse context reorder elements without breaking correctness?"""
        return self.ordering in (Ordering.ORDERED, Ordering.PARTIALLY_ORDERED) or (
            self.consumption is ConsumptionPattern.FIRST_PRECIOUS
        )

    def role_for(self, role: str) -> ElementRole:
        for r in self.roles:
            if r.role == role:
                return r
        raise KeyError(role)
