"""Machine-actionable metadata descriptors (the substrate of the gauges).

The paper's central claim is that reusability metadata must be not just
auditable by humans but *actionable by machines* (§III, §VII).  This
package holds the descriptor vocabulary the six gauges are computed from:

- :mod:`repro.metadata.access` — how data is reached (protocol, library
  interface, query capability).
- :mod:`repro.metadata.schema` — what the data looks like (fields, format,
  version) plus an automated format-conversion planner.
- :mod:`repro.metadata.semantics` — how data is meant to be consumed
  (ordering, windowing, "first precious" elements, dataset-level roles).
- :mod:`repro.metadata.provenance` — execution records, campaign context,
  and export policies for building reusable research objects.

Each descriptor knows how to report the gauge *tier* it supports, so
:func:`repro.gauges.assess` can derive a profile mechanically.
"""

from repro.metadata.access import (
    AccessProtocol,
    AccessInterface,
    QueryCapability,
    DataAccessDescriptor,
)
from repro.metadata.schema import (
    Field,
    DataSchema,
    FormatConverterRegistry,
    ConversionPlan,
    ConversionError,
    ProjectionError,
    infer_schema,
    project,
)
from repro.metadata.semantics import (
    Ordering,
    ConsumptionPattern,
    ElementRole,
    DataSemanticsDescriptor,
    FormatLineage,
)
from repro.metadata.provenance import (
    ProvenanceRecord,
    CampaignContext,
    ExportPolicy,
    ExportClass,
    ProvenanceStore,
)

__all__ = [
    "AccessProtocol",
    "AccessInterface",
    "QueryCapability",
    "DataAccessDescriptor",
    "Field",
    "DataSchema",
    "FormatConverterRegistry",
    "ConversionPlan",
    "ConversionError",
    "ProjectionError",
    "project",
    "infer_schema",
    "Ordering",
    "ConsumptionPattern",
    "ElementRole",
    "DataSemanticsDescriptor",
    "FormatLineage",
    "ProvenanceRecord",
    "CampaignContext",
    "ExportPolicy",
    "ExportClass",
    "ProvenanceStore",
]
