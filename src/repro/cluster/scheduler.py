"""Batch scheduler: FCFS queue, queue-wait model, walltime enforcement.

The paper's workflows interact with the machine through batch jobs
("allocations"): you request N nodes for W seconds, wait in the queue, run,
and get killed at the walltime.  The queue wait matters for Figure 7 — the
original iRF-LOOP workflow pays a queue gap (plus a human re-curation gap)
between successive submissions, while Cheetah/Savanna resubmits a partially
complete SweepGroup mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro._util import as_generator, check_nonnegative
from repro.cluster.engine import Simulator
from repro.cluster.job import Allocation, AllocationRequest
from repro.cluster.node import NodePool
from repro.observability import ALLOC, ALLOC_SUBMITTED, BEGIN, END


@dataclass
class QueueModel:
    """Stochastic queue-wait model.

    Wait time is lognormal with median ``median_wait`` scaled by the
    fraction of the machine requested (big jobs wait longer), as a coarse
    stand-in for backfill dynamics.  Set ``sigma=0`` for deterministic
    waits in tests.
    """

    median_wait: float = 300.0
    sigma: float = 0.5
    size_exponent: float = 0.5

    def sample(self, request: AllocationRequest, machine_nodes: int, rng: np.random.Generator) -> float:
        check_nonnegative("median_wait", self.median_wait)
        frac = min(1.0, request.nodes / machine_nodes)
        scale = self.median_wait * (1.0 + frac) ** self.size_exponent
        if self.sigma == 0:
            return scale
        return float(scale * rng.lognormal(mean=0.0, sigma=self.sigma))


class BatchScheduler:
    """FCFS batch scheduler over a :class:`NodePool`.

    Jobs are granted in submission order once (a) their sampled queue wait
    has elapsed and (b) enough nodes are free.  FCFS without backfill is
    deliberate: the experiments submit one job at a time (the campaign's
    own allocation), so scheduler sophistication beyond queue wait and
    walltime kills would not change any measured quantity.
    """

    def __init__(
        self,
        sim: Simulator,
        pool: NodePool,
        queue_model: QueueModel | None = None,
        backfill: bool = False,
        seed=None,
        bus=None,
    ):
        self.sim = sim
        self.pool = pool
        #: Optional event bus: ``alloc.submitted`` instants plus one
        #: ``alloc`` span per granted allocation (grant -> reclaim).
        self.bus = bus
        self.queue_model = queue_model or QueueModel()
        #: Aggressive backfill: when the head of the queue does not fit,
        #: later eligible jobs that do fit may start.  This can delay the
        #: head (no reservation), which is why it is off by default — the
        #: figure experiments submit one job at a time and never need it.
        self.backfill = backfill
        self._rng = as_generator(seed)
        # (request, eligible_time, on_start, on_end) in FCFS order
        self._queue: list[tuple[AllocationRequest, float, Callable, Callable]] = []
        self.granted: list[Allocation] = []
        self._deadline_handles: dict[int, tuple] = {}
        self._alloc_indices: dict[int, int] = {}

    def submit(
        self,
        request: AllocationRequest,
        on_start: Callable[[Allocation], None],
        on_end: Callable[[Allocation], None] | None = None,
    ) -> None:
        """Queue a batch job.

        ``on_start(allocation)`` fires when nodes are assigned;
        ``on_end(allocation)`` fires at the walltime deadline, after which
        the nodes are reclaimed.
        """
        if request.nodes > len(self.pool):
            raise ValueError(
                f"job '{request.name}' wants {request.nodes} nodes; machine has {len(self.pool)}"
            )
        wait = self.queue_model.sample(request, len(self.pool), self._rng)
        eligible = self.sim.now + wait
        if self.bus is not None:
            self.bus.emit(
                ALLOC_SUBMITTED,
                job=request.name,
                nodes=request.nodes,
                walltime=request.walltime,
                eligible_at=eligible,
            )
        self._queue.append((request, eligible, on_start, on_end))
        self.sim.schedule_at(eligible, self._try_dispatch)

    def _grant(self, entry) -> None:
        request, _eligible, on_start, on_end = entry
        nodes = self.pool.acquire(request.nodes)
        alloc = Allocation(request=request, nodes=nodes, start=self.sim.now)
        index = len(self.granted)
        self.granted.append(alloc)
        self._alloc_indices[id(alloc)] = index
        if self.bus is not None:
            self.bus.emit(
                ALLOC,
                phase=BEGIN,
                alloc=index,
                job=request.name,
                nodes=[n.index for n in nodes],
                deadline=alloc.deadline,
            )
        handle = self.sim.schedule_at(alloc.deadline, self._end_allocation, alloc, on_end)
        self._deadline_handles[id(alloc)] = (handle, on_end)
        on_start(alloc)

    def _try_dispatch(self) -> None:
        """Grant the head of the queue while it is eligible and fits; with
        backfill on, also grant later eligible jobs that fit."""
        while self._queue:
            entry = self._queue[0]
            request, eligible, _on_start, _on_end = entry
            if eligible > self.sim.now or request.nodes > self.pool.free_count:
                break
            self._queue.pop(0)
            self._grant(entry)
        if not self.backfill:
            return
        index = 1  # the head stays blocked; scan behind it
        while index < len(self._queue):
            request, eligible, _on_start, _on_end = self._queue[index]
            if eligible <= self.sim.now and request.nodes <= self.pool.free_count:
                entry = self._queue.pop(index)
                self._grant(entry)
            else:
                index += 1

    def finish(self, alloc: Allocation, reason: str = "finished") -> None:
        """End an allocation early (the job script exited before walltime).

        ``reason`` lands in the ``alloc`` span's end event — the campaign
        layers pass e.g. ``"retry-budget-exhausted"`` so a trace shows
        *why* an allocation gave its nodes back.
        """
        entry = self._deadline_handles.get(id(alloc))
        if entry is None:
            raise RuntimeError(f"allocation {alloc.request.name!r} is not active")
        handle, on_end = entry
        handle.cancel()
        self._end_allocation(alloc, on_end, reason=reason)

    def _end_allocation(
        self, alloc: Allocation, on_end: Callable | None, reason: str = "walltime"
    ) -> None:
        self._deadline_handles.pop(id(alloc), None)
        for node in alloc.nodes:
            node.close(self.sim.now)
        if on_end is not None:
            on_end(alloc)
        if self.bus is not None:
            self.bus.emit(
                ALLOC,
                phase=END,
                alloc=self._alloc_indices.get(id(alloc)),
                job=alloc.request.name,
                reason=reason,
            )
        self.pool.release(alloc.nodes)
        # Freed nodes may unblock the next queued job.
        self._try_dispatch()
