"""Discrete-event simulation core.

A minimal, deterministic event loop: events are ``(time, sequence)``-ordered
callbacks on a binary heap.  The sequence number breaks ties so that events
scheduled earlier fire earlier at equal timestamps, which keeps runs
reproducible regardless of heap internals.

The engine is intentionally tiny — processes, resources, and queues are
modelled by the layers above (scheduler, executors) out of plain callbacks,
which keeps this core easy to reason about and to property-test (clock
monotonicity, cancellation semantics).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro._util import check_nonnegative


@dataclass(order=True)
class _QueuedEvent:
    time: float
    seq: int
    callback: Callable = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`; supports cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: _QueuedEvent):
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    5.0
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._queue: list[_QueuedEvent] = []
        self._now = 0.0
        self._seq = 0
        self._fired = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total callbacks fired so far — the engine's own work metric.

        Observability layers report this alongside the task/allocation
        counters so simulation cost (event volume) is visible next to the
        science quantities it produced.
        """
        return self._fired

    def schedule(self, delay: float, callback: Callable, *args) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        check_nonnegative("delay", delay)
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: time={time} < now={self._now}"
            )
        event = _QueuedEvent(time=float(time), seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def step(self) -> bool:
        """Fire the next pending event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._fired += 1
            event.callback(*event.args)
            return True
        return False

    def peek(self) -> float | None:
        """Time of the next non-cancelled event, or None if queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def run(self, until: float | None = None) -> float:
        """Fire events until the queue drains (or the clock passes ``until``).

        Returns the final simulation time.  With ``until`` set, events
        scheduled after the horizon stay queued and the clock is advanced to
        exactly ``until``.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is before now={self._now}")
        while True:
            nxt = self.peek()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self._now = until
                return self._now
            self.step()
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)
