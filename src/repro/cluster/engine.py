"""Discrete-event simulation core.

A minimal, deterministic event loop: events are ``(time, sequence)``-ordered
callbacks on a binary heap.  The sequence number breaks ties so that events
scheduled earlier fire earlier at equal timestamps, which keeps runs
reproducible regardless of heap internals.

The engine is intentionally tiny — processes, resources, and queues are
modelled by the layers above (scheduler, executors) out of plain callbacks,
which keeps this core easy to reason about and to property-test (clock
monotonicity, cancellation semantics).

Hot-path representation: a queued event is a plain 5-slot ``list``
(``[time, seq, callback, args, cancelled]``) rather than an object with
ordered fields.  List comparison happens entirely in C — ``time`` differs
almost always, and ``seq`` is unique so the comparison never reaches the
callback slot — which removes the per-comparison Python ``__lt__`` dispatch
that previously dominated heap maintenance.  :meth:`Simulator.schedule_batch`
amortizes bulk insertion further (one heapify instead of n pushes when the
batch dwarfs the queue), which is what the vectorized executors and bench
harnesses feed.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Sequence

from repro._util import check_nonnegative

# Slots of a queued-event entry (a plain list; see module docstring).
_TIME, _SEQ, _CALLBACK, _ARGS, _CANCELLED = range(5)


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`; supports cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: list):
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time at which the event fires."""
        return self._event[_TIME]

    @property
    def cancelled(self) -> bool:
        return self._event[_CANCELLED]

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event[_CANCELLED] = True


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    5.0
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._queue: list[list] = []
        self._now = 0.0
        self._seq = 0
        self._fired = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total callbacks fired so far — the engine's own work metric.

        Observability layers report this alongside the task/allocation
        counters so simulation cost (event volume) is visible next to the
        science quantities it produced.
        """
        return self._fired

    def schedule(self, delay: float, callback: Callable, *args) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        check_nonnegative("delay", delay)
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: time={time} < now={self._now}"
            )
        event = [float(time), self._seq, callback, args, False]
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_batch(
        self,
        times: Iterable[float],
        callback: Callable,
        args_seq: Sequence[tuple] | None = None,
    ) -> list[EventHandle]:
        """Bulk-schedule one callback at many absolute times.

        Equivalent to ``[schedule_at(t, callback, *args) for t, args in
        zip(times, args_seq)]`` — handles are returned in input order and
        sequence numbers are assigned in input order, so ties still fire
        first-scheduled-first — but the queue is rebuilt with a single
        ``heapify`` when the batch is large relative to the pending queue,
        which is O(n + m) instead of O(m log(n + m)).  ``times`` accepts
        any iterable (a numpy array included); ``args_seq`` defaults to
        no-argument callbacks.
        """
        entries: list[list] = []
        seq = self._seq
        now = self._now
        if args_seq is None:
            for t in times:
                t = float(t)
                if t < now:
                    raise ValueError(
                        f"cannot schedule in the past: time={t} < now={now}"
                    )
                entries.append([t, seq, callback, (), False])
                seq += 1
        else:
            for t, args in zip(times, args_seq):
                t = float(t)
                if t < now:
                    raise ValueError(
                        f"cannot schedule in the past: time={t} < now={now}"
                    )
                entries.append([t, seq, callback, tuple(args), False])
                seq += 1
        self._seq = seq
        if len(entries) > max(8, len(self._queue)):
            self._queue.extend(entries)
            heapq.heapify(self._queue)
        else:
            for entry in entries:
                heapq.heappush(self._queue, entry)
        return [EventHandle(entry) for entry in entries]

    def step(self) -> bool:
        """Fire the next pending event.  Returns False when the queue is empty."""
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)
            if event[_CANCELLED]:
                continue
            self._now = event[_TIME]
            self._fired += 1
            event[_CALLBACK](*event[_ARGS])
            return True
        return False

    def peek(self) -> float | None:
        """Time of the next non-cancelled event, or None if queue is empty."""
        while self._queue and self._queue[0][_CANCELLED]:
            heapq.heappop(self._queue)
        return self._queue[0][_TIME] if self._queue else None

    def run(self, until: float | None = None) -> float:
        """Fire events until the queue drains (or the clock passes ``until``).

        Returns the final simulation time.  With ``until`` set, events
        scheduled after the horizon stay queued and the clock is advanced to
        exactly ``until``.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is before now={self._now}")
        queue = self._queue
        pop = heapq.heappop
        if until is None:
            # Hot path: drain everything with the loop inlined (no
            # peek/step function-call pair per event).
            fired = 0
            while queue:
                event = pop(queue)
                if event[_CANCELLED]:
                    continue
                self._now = event[_TIME]
                fired += 1
                event[_CALLBACK](*event[_ARGS])
            self._fired += fired
            return self._now
        while True:
            nxt = self.peek()
            if nxt is None:
                break
            if nxt > until:
                self._now = until
                return self._now
            self.step()
        self._now = max(self._now, until)
        return self._now

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for e in self._queue if not e[_CANCELLED])
