"""Simulated HPC substrate (replaces Summit / LSF / GPFS in the paper).

This package provides a deterministic discrete-event simulation of a
leadership-class cluster at the granularity the paper's experiments need:

- :mod:`repro.cluster.engine` — the discrete-event core (clock + event queue).
- :mod:`repro.cluster.node` — compute nodes and busy-interval recording.
- :mod:`repro.cluster.job` — tasks, task attempts, allocation requests.
- :mod:`repro.cluster.scheduler` — a batch scheduler with FCFS queueing,
  queue-wait model, and walltime enforcement.
- :mod:`repro.cluster.filesystem` — a parallel-filesystem model with
  time-correlated load, used by the checkpoint-restart experiments.
- :mod:`repro.cluster.failures` — MTTF-style task failure injection.
- :mod:`repro.cluster.cluster` — :class:`SimulatedCluster`, the façade the
  Savanna executors talk to.
- :mod:`repro.cluster.trace` — utilization traces and timeline extraction
  (Figure 6 data).

Why a simulator: Figures 3, 4, 6, and 7 of the paper measure *scheduling
and I/O dynamics* (barrier stragglers, idle nodes, checkpoint overhead,
queue gaps), not machine-specific constants.  A discrete-event model of
nodes, allocations, filesystem load, and failures reproduces exactly those
dynamics on a laptop.
"""

from repro.cluster.engine import Simulator, EventHandle
from repro.cluster.node import Node, NodePool
from repro.cluster.job import Task, TaskAttempt, TaskState, AllocationRequest, Allocation
from repro.cluster.scheduler import BatchScheduler, QueueModel
from repro.cluster.filesystem import ParallelFilesystem, FilesystemLoadModel
from repro.cluster.failures import FailureModel
from repro.cluster.cluster import SimulatedCluster, ClusterSpec
from repro.cluster.trace import UtilizationTrace, TimelineRow
from repro.cluster.staging import StagingArea, StagingSpec

__all__ = [
    "Simulator",
    "EventHandle",
    "Node",
    "NodePool",
    "Task",
    "TaskAttempt",
    "TaskState",
    "AllocationRequest",
    "Allocation",
    "BatchScheduler",
    "QueueModel",
    "ParallelFilesystem",
    "FilesystemLoadModel",
    "FailureModel",
    "SimulatedCluster",
    "ClusterSpec",
    "UtilizationTrace",
    "TimelineRow",
    "StagingArea",
    "StagingSpec",
]
